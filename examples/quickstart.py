"""Quickstart: the PINT framework in five minutes.

Builds the paper's flagship configuration -- three concurrent telemetry
queries sharing a 16-bit per-packet budget -- on a fat-tree network,
pushes a flow's packets through it, and answers all three queries.

Run:  python examples/quickstart.py
"""

import random

from repro.apps import CongestionRuntime, LatencyRuntime, PathTracingRuntime
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    Query,
    QueryEngine,
)
from repro.net import fat_tree


def main() -> None:
    # 1. A network: K=4 fat-tree, 20 switches, 16 hosts, diameter 5.
    topo = fat_tree(4)
    print(f"topology: {topo.name}, {topo.num_switches} switches, "
          f"{len(topo.hosts)} hosts")

    # 2. Three queries (paper §3.3) under one 16-bit global budget:
    #    - trace every flow's path          (static per-flow, 8 bits)
    #    - per-hop latency quantiles        (dynamic per-flow, 8 bits)
    #    - bottleneck utilisation for HPCC  (per-packet, 8 bits, 1/16)
    path_q = Query("path", MetadataType.SWITCH_ID,
                   AggregationType.STATIC_PER_FLOW, 8, frequency=1.0)
    lat_q = Query("latency", MetadataType.HOP_LATENCY,
                  AggregationType.DYNAMIC_PER_FLOW, 8, frequency=15 / 16)
    cc_q = Query("congestion", MetadataType.EGRESS_TX_UTILIZATION,
                 AggregationType.PER_PACKET, 8, frequency=1 / 16)

    # 3. The Query Engine compiles them into an execution plan:
    #    a hash-selected distribution over query sets (paper Fig. 3).
    plan = QueryEngine(global_budget=16).compile([path_q, lat_q, cc_q])
    print("\nexecution plan:")
    for entry in plan.entries:
        names = "+".join(q.name for q in entry.queries)
        print(f"  {{{names}}}: probability {entry.probability:.4f}, "
              f"{entry.bits()} bits")

    # 4. Wire the runtimes (Encoding/Recording/Inference modules).
    fw = PINTFramework(plan)
    path_rt = PathTracingRuntime(path_q, topo.switch_universe(), d=5)
    lat_rt = LatencyRuntime(lat_q)
    cc_rt = CongestionRuntime(cc_q)
    for rt in (path_rt, lat_rt, cc_rt):
        fw.register(rt)

    # 5. A flow sends packets across the fabric.  Every switch runs the
    #    same per-hop logic; the sink records the extracted digests.
    rng = random.Random(0)
    src, dst = topo.hosts[0], topo.hosts[-1]
    path = topo.switch_path(src, dst)
    print(f"\nflow {src} -> {dst}, true path: {path}")
    for pid in range(1, 501):
        hops = [
            HopView(
                switch_id=sid,
                hop_number=i + 1,
                hop_latency=rng.expovariate(1.0 / (20e-6 * (i + 1))),
                egress_tx_utilization=0.3 + 0.15 * i,
            )
            for i, sid in enumerate(path)
        ]
        fw.process_packet(PacketContext(pid, flow_id=1, path_len=len(path)),
                          hops)

    # 6. Ask the Inference Modules.
    print(f"\nafter 500 packets (overhead: "
          f"{fw.overhead_bytes_per_packet():.0f} bytes/packet):")
    print(f"  decoded path:        {path_rt.flow_path(1)}")
    med = lat_rt.quantile(1, hop=3, phi=0.5)
    p99 = lat_rt.quantile(1, hop=3, phi=0.99)
    print(f"  hop-3 latency:       median {med * 1e6:.1f}us, "
          f"p99 {p99 * 1e6:.1f}us")
    print(f"  bottleneck util:     {cc_rt.bottleneck(1):.2f} "
          f"(true max: {0.3 + 0.15 * (len(path) - 1):.2f})")
    print(f"  HPCC feedbacks seen: {cc_rt.feedback_count} "
          f"(~1/16 of packets)")


if __name__ == "__main__":
    main()

"""Scaling the sink across cores: the parallel sharded collector.

The sink's flow state is partitionable by construction -- every flow's
records hash-route to one shard -- so the collector can scatter whole
columnar batches across worker *processes* and decode on every core.
This example shows the two promises of
:class:`repro.collector.ParallelCollector`:

1. **Drop-in equivalence.**  The same scenario trace replayed into a
   serial collector and a 2-worker parallel collector produces
   identical decode outcomes and an identical merged metrics snapshot
   (per-shard counters and all) -- the ``workers=`` knob moves work,
   never answers.
2. **A service lifecycle.**  Batches scatter fire-and-forget;
   ``drain()`` barriers; ``snapshot()`` merges per-worker partial
   views; ``close()`` (or the context manager) stops the workers.

Run:  PYTHONPATH=src python examples/parallel_collector.py
"""

from __future__ import annotations

import numpy as np

from repro.collector import Collector, ParallelCollector, path_consumer_factory
from repro.replay import ReplayDriver, TraceDataplane, build_trace


def replay_equivalence() -> None:
    print("=== 1. workers= is invisible to the answers ===")
    trace = build_trace("incast", packets=4_000, seed=0)
    serial = ReplayDriver(batch_size=2048, seed=0).replay(trace)
    parallel = ReplayDriver(batch_size=2048, seed=0, workers=2).replay(trace)
    print(f"serial   : {serial.summary()}")
    print(f"2 workers: {parallel.summary()}")
    same = (
        serial.path_decoded == parallel.path_decoded
        and serial.path_correct == parallel.path_correct
        and serial.path_resets == parallel.path_resets
    )
    print(f"decode outcomes identical  : {same}")


def service_lifecycle() -> None:
    print("\n=== 2. scatter / drain / merged snapshot ===")
    trace = build_trace("elephant-mice", packets=4_000, seed=1)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=1)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))
    hops = trace.hop_counts

    factory = lambda: path_consumer_factory(
        trace.universe, digest_bits=8, num_hashes=1, seed=1
    )
    serial = Collector(factory(), num_shards=8, seed=1)
    with ParallelCollector(
        factory(), workers=2, num_shards=8, seed=1
    ) as par:
        for lo, hi in trace.batches(1024):
            now = float(trace.ts[hi - 1])
            for sink in (serial, par):
                sink.ingest_batch(
                    trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
                    digests[lo:hi], now=now,
                )
        par.drain()
        s_snap, p_snap = serial.snapshot(), par.snapshot()
        print(f"records ingested           : {p_snap.records} "
              f"(serial saw {s_snap.records})")
        print(f"per-shard flows            : "
              f"{[s.flows for s in p_snap.shards]}")
        print(f"decode completion          : {p_snap.completion_rate:.0%}")
        print(f"merged snapshot identical  : "
              f"{s_snap.as_dict() == p_snap.as_dict()}")
        fid = int(trace.flow_id[0])
        print(f"flow {fid} path via RPC   : {par.result(fid)}")


def main() -> None:
    replay_equivalence()
    service_lifecycle()


if __name__ == "__main__":
    main()

"""Network troubleshooting with latency quantiles (paper §3.2, §6.2).

Monitors per-(flow, hop) median and tail latency with an 8-bit digest
and a KLL sketch, then injects a latency regression at one hop and
shows the tail quantile exposing the culprit -- the paper's "detect
network events by noticing a change in the hop latency" use case.

Run:  python examples/latency_monitoring.py
"""

import random

from repro.apps import LatencyRuntime
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    PlanEntry,
    Query,
)
from repro.core.plan import ExecutionPlan
from repro.net import fat_tree


def run_phase(fw, path, rng, pids, slow_hop=None):
    for pid in pids:
        hops = []
        for i, sid in enumerate(path):
            scale = 20e-6
            if slow_hop is not None and i + 1 == slow_hop:
                scale = 200e-6  # the regression: 10x hop latency
            hops.append(HopView(switch_id=sid, hop_number=i + 1,
                                hop_latency=rng.expovariate(1.0 / scale)))
        fw.process_packet(PacketContext(pid, flow_id=1, path_len=len(path)),
                          hops)


def main() -> None:
    topo = fat_tree(4)
    path = topo.switch_path(topo.hosts[0], topo.hosts[-1])
    print(f"monitoring flow across switches {path}")

    query = Query("lat", MetadataType.HOP_LATENCY,
                  AggregationType.DYNAMIC_PER_FLOW, 8, space_budget=500)
    plan = ExecutionPlan([PlanEntry((query,), 1.0)], 8)
    rng = random.Random(0)

    # Phase 1: healthy network.
    fw = PINTFramework(plan)
    healthy = LatencyRuntime(query)
    fw.register(healthy)
    run_phase(fw, path, rng, range(1, 4001))

    # Phase 2: hop 3 degrades.
    fw2 = PINTFramework(plan)
    degraded = LatencyRuntime(query)
    fw2.register(degraded)
    run_phase(fw2, path, rng, range(4001, 8001), slow_hop=3)

    print(f"\n{'hop':>4s}  {'healthy p50':>12s}  {'healthy p99':>12s}  "
          f"{'degraded p99':>13s}")
    for hop in range(1, len(path) + 1):
        h50 = healthy.quantile(1, hop, 0.5) * 1e6
        h99 = healthy.quantile(1, hop, 0.99) * 1e6
        d99 = degraded.quantile(1, hop, 0.99) * 1e6
        flag = "  <-- regression detected" if d99 > 3 * h99 else ""
        print(f"{hop:>4d}  {h50:>10.1f}us  {h99:>10.1f}us  "
              f"{d99:>11.1f}us{flag}")

    print("\nall of this used one byte of telemetry per packet; the "
          "Recording\nModule stored only a bounded per-hop KLL sketch.")


if __name__ == "__main__":
    main()

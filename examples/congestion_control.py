"""HPCC congestion control fed by INT vs PINT (paper §6.1).

Runs the packet-level simulator on a fat-tree with a Hadoop-like
workload twice -- once with classic per-hop INT feedback (8B header +
12B/hop on every packet) and once with PINT's fixed 2-byte digest --
and compares slowdowns and bytes spent on telemetry.

Run:  python examples/congestion_control.py
"""

from repro.sim import hadoop_cdf, run_hpcc_experiment


def main() -> None:
    cdf = hadoop_cdf(scale=0.01)
    config = dict(
        load=0.5, cdf=cdf, k=4, link_rate_bps=100e6,
        duration=0.25, max_flows=100, seed=3,
    )

    print("running HPCC with classic INT feedback...")
    int_res = run_hpcc_experiment("int", **config)
    print("running HPCC with PINT feedback (8-bit digest, p=1/16)...")
    pint_res = run_hpcc_experiment("pint", pint_frequency=1 / 16, **config)

    print(f"\n{'metric':28s}  {'HPCC(INT)':>10s}  {'HPCC(PINT)':>10s}")
    rows = [
        ("completed flows", int_res.count, pint_res.count),
        ("mean slowdown", f"{int_res.mean_slowdown():.2f}",
         f"{pint_res.mean_slowdown():.2f}"),
        ("p95 slowdown", f"{int_res.slowdown_p95():.2f}",
         f"{pint_res.slowdown_p95():.2f}"),
    ]
    for name, a, b in rows:
        print(f"{name:28s}  {str(a):>10s}  {str(b):>10s}")

    # Telemetry byte accounting on a 5-hop path, per packet:
    int_bytes = 8 + 12 * 5
    pint_bytes = 2
    print(f"\ntelemetry overhead per data packet (5 hops): "
          f"INT {int_bytes}B vs PINT {pint_bytes}B "
          f"({int_bytes / pint_bytes:.0f}x saving)")
    print("PINT achieves comparable congestion control with a fixed "
          "2-byte digest,\ncarried on only 1 in 16 packets.")


if __name__ == "__main__":
    main()

"""Chaos harness: kill collector workers mid-replay, lose no answers.

The PINT sink's state is pure deterministic fold state, so fault
tolerance can promise something unusual: a worker process SIGKILLed
mid-stream is replaced, restored from its last checkpoint, fed the
journal of everything since, and the merged snapshot comes out
*bit-identical* to a run where nothing died.  This demo makes the
promise visible:

1. replay a scenario on a supervised parallel collector while a seeded
   :class:`repro.faults.FaultPlan` kills a worker mid-replay, and diff
   the scored report against a fault-free serial run,
2. run a randomized (but seeded, so reproducible) chaos schedule,
3. starve the journal on purpose and watch recovery degrade honestly
   -- shards marked, records-lost accounted, no exception.

Run:  PYTHONPATH=src python examples/chaos_recovery.py
"""

from repro.faults import FaultPlan, drop_checkpoint, kill_worker
from repro.replay import ReplayDriver

SCENARIO = "incast"
PACKETS = 8_000
SEED = 7

#: Report fields that measure the run, not the answers: everything
#: else must match bit for bit between a faulted and a clean replay.
TIMING_KEYS = (
    "seconds", "records_per_sec", "stage_seconds", "restarts",
    "replayed_batches", "degraded_shards", "records_lost",
)


def answers(report) -> dict:
    d = report.as_dict()
    for k in TIMING_KEYS:
        d.pop(k, None)
    return d


def main() -> None:
    serial = ReplayDriver(num_shards=8, batch_size=512, seed=SEED)
    clean = serial.run_scenario(SCENARIO, packets=PACKETS, seed=SEED)
    print(f"== fault-free serial baseline ==\n{clean.summary()}")

    print("\n== kill worker 1 mid-replay (supervised recovery) ==")
    plan = FaultPlan([kill_worker(1, at_batch=5)])
    driver = ReplayDriver(
        workers=2, num_shards=8, batch_size=512, seed=SEED,
        checkpoint_every=4, faults=plan,
    )
    faulted = driver.run_scenario(SCENARIO, packets=PACKETS, seed=SEED)
    print(faulted.summary())
    print(f"   fired: {plan.fired}")
    print(f"   restarts={faulted.restarts} "
          f"replayed_batches={faulted.replayed_batches} "
          f"records_lost={faulted.records_lost}")
    assert answers(faulted) == answers(clean)
    print("   every scored answer bit-identical to the no-fault run")

    print("\n== seeded chaos schedule (reproducible randomness) ==")
    chaos = FaultPlan.chaos(workers=2, max_batch=12, seed=SEED, kills=1)
    driver = ReplayDriver(
        workers=2, num_shards=8, batch_size=512, seed=SEED,
        checkpoint_every=4, faults=chaos,
    )
    report = driver.run_scenario(SCENARIO, packets=PACKETS, seed=SEED)
    print(f"   schedule: {[(s.kind, s.worker, s.at) for s in chaos.specs]}")
    print(f"   fired: {chaos.fired}  restarts={report.restarts}")
    assert answers(report) == answers(clean)
    print("   still bit-identical -- same seed, same chaos, same answers")

    print("\n== journal starved on purpose: graceful degradation ==")
    plan = FaultPlan([drop_checkpoint(0), kill_worker(0, at_batch=8)])
    driver = ReplayDriver(
        workers=2, num_shards=8, batch_size=512, seed=SEED,
        checkpoint_every=2, journal_batches=2, faults=plan,
    )
    degraded = driver.run_scenario(SCENARIO, packets=PACKETS, seed=SEED)
    print(f"   completed with {degraded.degraded_shards} degraded "
          f"shard(s), {degraded.records_lost} records lost -- "
          "accounted on the snapshot, not papered over")
    assert degraded.degraded_shards > 0 and degraded.records_lost > 0


if __name__ == "__main__":
    main()

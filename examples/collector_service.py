"""The sink as a service: streaming collector over live and batched feeds.

Demonstrates ``repro.collector`` at its two ingestion surfaces:

1. **DES-fed** -- an HPCC run on a fat-tree where every receiving host
   streams its PINT congestion digests into the collector *while the
   simulation runs* (telemetry ``on_sink`` hook), then a metrics
   snapshot: live flows, per-shard balance, decode completion, bytes.
2. **Batch-fed** -- a path-tracing fleet of flows whose digests arrive
   in columnar batches (the capture-pipeline shape); the collector
   incrementally peels each flow's path and we watch completion climb.

Run:  PYTHONPATH=src python examples/collector_service.py
"""

import numpy as np

from repro.coding import DistributedMessage, PathEncoder, multilayer_scheme
from repro.collector import (
    Collector,
    congestion_consumer_factory,
    path_consumer_factory,
)
from repro.net import fat_tree
from repro.sim.experiment import run_hpcc_experiment
from repro.sim.workload import hadoop_cdf


def des_fed_congestion() -> None:
    print("=== 1. DES-fed: HPCC digests streamed at the sinks ===")
    collector = Collector(
        congestion_consumer_factory(seed=0),
        num_shards=4,
        ttl=0.5,          # sim-seconds: idle flows age out
        seed=0,
    )
    result = run_hpcc_experiment(
        "pint",
        load=0.4,
        cdf=hadoop_cdf(0.05),
        link_rate_bps=50e6,
        duration=0.08,
        max_flows=40,
        seed=1,
        collector=collector,
    )
    snap = collector.snapshot()
    print(f"completed flows in the run : {len(result.flows)}")
    print(f"records streamed to sink   : {snap.records}")
    print(f"live flows at end          : {snap.flows} "
          f"(per shard: {[s.flows for s in snap.shards]})")
    print(f"decode completion          : {snap.completion_rate:.0%}")
    print(f"resident state             : {snap.state_bytes} bytes")
    bottlenecks = sorted(
        entry.consumer.bottleneck()
        for shard in collector.shards
        for _, entry in shard.table.items()
    )
    if bottlenecks:
        print(f"bottleneck utilisation     : min {bottlenecks[0]:.3f}, "
              f"max {bottlenecks[-1]:.3f}")
    print()


def batch_fed_path_tracing() -> None:
    print("=== 2. Batch-fed: columnar path-tracing ingestion ===")
    topo = fat_tree(4)
    universe = topo.switch_universe()
    rng = np.random.default_rng(7)
    seed, bits = 3, 8

    flows, encoders = {}, {}
    for fid in range(1, 17):
        src, dst = (int(h) for h in rng.choice(topo.hosts, 2, replace=False))
        path = topo.switch_path(src, dst)
        flows[fid] = path
        encoders[fid] = PathEncoder(
            DistributedMessage.from_path(path, universe),
            multilayer_scheme(len(path)), bits, "hash", 1, seed,
        )

    collector = Collector(
        path_consumer_factory(universe, digest_bits=bits, seed=seed),
        num_shards=4,
        seed=seed,
    )
    pid = 0
    batch_round = 0
    while True:
        batch_round += 1
        fids, pids, hops, digs = [], [], [], []
        for fid, enc in encoders.items():
            for _ in range(8):     # 8 packets per flow per batch
                pid += 1
                fids.append(fid)
                pids.append(pid)
                hops.append(len(flows[fid]))
                digs.append(enc.encode(pid)[0])
        collector.ingest_batch(fids, pids, hops, digs)
        snap = collector.snapshot()
        print(f"batch {batch_round:2d}: {snap.records:5d} records, "
              f"decoded {snap.completed_flows}/{snap.flows} flows "
              f"({snap.completion_rate:.0%})")
        if snap.completion_rate == 1.0 or batch_round >= 60:
            break

    decoded = sum(collector.result(fid) == path for fid, path in flows.items())
    print(f"\npaths decoded exactly      : {decoded}/{len(flows)}")
    sample = min(flows, key=lambda f: len(flows[f]))
    print(f"e.g. flow {sample}: {collector.result(sample)}")


def main() -> None:
    des_fed_congestion()
    batch_fed_path_tracing()


if __name__ == "__main__":
    main()

"""Real-time routing-loop detection (paper Appendix A.4, Algorithm 2).

Shows the digest-match trick catching a forwarding loop on the fly,
and measures the false-positive rate on loop-free paths for the two
configurations the paper discusses (b=15/T=1 and b=14/T=3).

Run:  python examples/loop_detection.py
"""

from repro.apps import LoopDetector


def main() -> None:
    # A packet caught in a loop: after switch 4 it returns to switch 2.
    loopy_route = [1, 2, 3, 4] + [2, 3, 4] * 10
    clean_route = list(range(1, 33))  # 32 distinct switches

    for bits, threshold in ((15, 1), (14, 3)):
        detector = LoopDetector(digest_bits=bits, threshold=threshold)
        detected = 0
        first_positions = []
        for pid in range(1, 1001):
            pos = detector.run_path(pid, loopy_route)
            if pos is not None:
                detected += 1
                first_positions.append(pos)
        fp_rate = detector.false_positive_rate(clean_route, 20000)
        avg_pos = (sum(first_positions) / len(first_positions)
                   if first_positions else float("nan"))
        print(f"b={bits}, T={threshold} "
              f"({detector.bit_overhead} bits/packet):")
        print(f"  looping packets flagged: {detected / 10:.1f}% "
              f"(avg detection at hop {avg_pos:.0f})")
        print(f"  false positives on a loop-free 32-hop path: "
              f"{fp_rate:.2e} per packet\n")

    print("higher T trades detection latency (more loop cycles) for an\n"
          "exponentially lower false-report rate (paper: 5e-7 -> 5e-13).")


if __name__ == "__main__":
    main()

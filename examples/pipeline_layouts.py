"""Switch pipeline layouts (paper §5, Fig. 6) as checkable programs.

Prints the stage layout of each PINT query and of the three-query
combination, and verifies the paper's claims: path tracing and latency
each fit four stages, HPCC needs eight, and the combination is no
deeper than HPCC alone.

Run:  python examples/pipeline_layouts.py
"""

from repro.pipeline import (
    combined_layout,
    hpcc_layout,
    latency_layout,
    path_tracing_layout,
)


def main() -> None:
    layouts = [
        path_tracing_layout(num_hashes=2),
        latency_layout(),
        hpcc_layout(),
        combined_layout(),
    ]
    for program in layouts:
        program.validate()  # stage budget, no multiply, no same-stage RAW
        print(program.describe())
        print()

    combined = layouts[-1]
    hpcc = layouts[2]
    print(f"combined depth {combined.num_stages} == HPCC-alone depth "
          f"{hpcc.num_stages}: the parallel layout adds queries, "
          "not stages (paper §5).")
    print(f"total parallel operations in the combined layout: "
          f"{combined.total_ops()}")


if __name__ == "__main__":
    main()

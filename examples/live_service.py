"""A live collector service fed over a lossy network, queried as JSON.

Everything earlier in the repo runs in one process; this demo runs the
collector as an actual *service* on loopback sockets:

1. start a :class:`~repro.service.CollectorServer` (UDP data port +
   JSON query port) over a path-tracing collector,
2. replay a scenario trace at it with the reliable seq/ACK/RTO sender
   -- through a simulated 20% per-transmission loss hook, the in-line
   stand-in for the impairment engine's network,
3. watch the sender's retransmit machinery deliver every record
   exactly once (the server dedups and re-ACKs),
4. query the running service over its JSON port the way an operator
   (or ``jq``) would, and
5. shut down gracefully and compare against ground truth.

Run:  PYTHONPATH=src python examples/live_service.py
"""

import numpy as np

from repro.collector import Collector, path_consumer_factory
from repro.replay import TraceDataplane, build_trace
from repro.service import CollectorServer, QueryClient, ReliableUDPSender

PACKETS = 4_000
SEED = 11
LOSS = 0.20


def main() -> None:
    trace = build_trace("hadoop", packets=PACKETS, seed=SEED)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1,
                               mode="hash", seed=SEED)
    collector = Collector(
        path_consumer_factory(
            trace.universe, digest_bits=8, num_hashes=1, seed=SEED,
            mode="hash", value_bits=dataplane.value_bits,
        ),
        num_shards=4, seed=SEED,
    )

    print("== serving ==")
    with CollectorServer(collector, tcp_port=None, query_port=0) as server:
        print(f"   udp data port {server.udp_port}, "
              f"json query port {server.query_port}")

        print(f"\n== sending through {LOSS * 100:.0f}% simulated loss ==")
        rng = np.random.default_rng(SEED)
        sender = ReliableUDPSender(
            "127.0.0.1", server.udp_port, max_records=256,
            drop_fn=lambda seq, attempt: bool(rng.random() < LOSS),
            min_rto=0.01, initial_rto=0.05,
        )
        hop_counts = trace.hop_counts
        with sender:
            for lo in range(0, len(trace), 1024):
                hi = min(lo + 1024, len(trace))
                rows = np.arange(lo, hi, dtype=np.int64)
                sender.send_batch(
                    trace.flow_id[rows], trace.pid[rows], hop_counts[rows],
                    dataplane.encode_rows(rows), now=float(trace.ts[hi - 1]),
                )
            sender.flush()
        server.wait_for_records(len(trace))
        stats = server.service_stats()
        print(f"   {sender.frames_sent} frames sent "
              f"({sender.retransmits} retransmits), "
              f"{stats.duplicate_frames} duplicates deduped server-side")
        # Karn's rule only samples RTT from never-retransmitted frames:
        # on a loaded machine every frame can hit its RTO, leaving no
        # estimate at all -- report that honestly instead of crashing.
        srtt = (f"{sender.srtt * 1e3:.2f} ms" if sender.srtt is not None
                else "n/a, every frame retransmitted")
        print(f"   delivered {stats.records_ingested}/{len(trace)} records "
              f"exactly once (srtt {srtt})")

        print("\n== querying the live service ==")
        with QueryClient("127.0.0.1", server.query_port) as client:
            snap = client.snapshot()
            print(f"   snapshot: {snap['records']} records, "
                  f"{snap['flows']} flows, "
                  f"{snap['completed_flows']} decoded")
            fid = next(
                int(f) for f in np.unique(trace.flow_id).tolist()
                if (c := collector.flow(int(f))) and c.result() is not None
            )
            flow = client.flow(fid)
            print(f"   flow {fid}: complete={flow['complete']} "
                  f"path={flow['result']}")

        print("\n== ground truth check ==")
        truth = trace.flow_paths()
        correct = total = 0
        for fid in np.unique(trace.flow_id).tolist():
            consumer = collector.flow(int(fid))
            if consumer is None or consumer.result() is None:
                continue
            total += 1
            traversed = {trace.paths[pid] for pid in truth[int(fid)]}
            correct += tuple(consumer.result()) in traversed
        print(f"   {correct}/{total} decoded paths correct "
              "despite the lossy wire")


if __name__ == "__main__":
    main()

"""Observe the pipeline observing the network: metrics, stages, watch.

PINT instruments the network; ``repro.obs`` instruments the
reproduction's own pipeline.  This demo shows all three export paths
against one instrumented replay:

1. run a scenario replay with a live :class:`MetricsRegistry` and
   print the per-stage wall-time breakdown every report now carries,
2. render the registry as Prometheus text exposition (the same body
   ``--metrics-port`` serves to a scraper, here over a real HTTP
   scrape),
3. stand a query server over an instrumented collector and drive a
   short ``repro.obs watch`` session against it -- the live terminal
   view operators run.

Run:  PYTHONPATH=src python examples/obs_watch.py
"""

import io
import threading
import urllib.request

from repro.collector import Collector, path_consumer_factory
from repro.obs import MetricsHTTPServer, MetricsRegistry, Watcher, render_prometheus
from repro.replay import ReplayDriver, build_trace
from repro.service.query import QueryServer

PACKETS = 5_000
SEED = 11


def main() -> None:
    # -- 1: an instrumented replay and its stage breakdown ------------
    obs = MetricsRegistry()
    trace = build_trace("incast", packets=PACKETS, seed=SEED)
    report = ReplayDriver(batch_size=1024, seed=SEED, obs=obs).replay(trace)
    print("== instrumented replay ==")
    print(report.summary())
    print(report.stage_summary())

    # -- 2: the same registry as a Prometheus scrape -------------------
    print("\n== prometheus exposition (scraped over HTTP) ==")
    with MetricsHTTPServer(obs) as scrape:
        url = f"http://127.0.0.1:{scrape.port}/metrics"
        with urllib.request.urlopen(url, timeout=5) as resp:
            body = resp.read().decode()
    shown = 0
    for line in body.splitlines():
        if line.startswith("pint_replay_stage_seconds_sum"):
            print(f"  {line}")
            shown += 1
    print(f"  ... {len(body.splitlines())} exposition lines total "
          f"({shown} stage sums shown)")

    # -- 3: a live watch session over the query port -------------------
    print("\n== watch session (3 frames against a live query port) ==")
    watch_obs = MetricsRegistry()
    coll = Collector(
        path_consumer_factory(trace.universe, digest_bits=8, num_hashes=1,
                              seed=SEED),
        num_shards=4, seed=SEED, obs=watch_obs,
    )
    from repro.replay import TraceDataplane
    import numpy as np
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=SEED)
    rows = np.arange(len(trace), dtype=np.int64)
    coll.ingest_batch(trace.flow_id, trace.pid, trace.hop_counts,
                      dataplane.encode_rows(rows), now=1.0)
    server = QueryServer(
        coll, threading.Lock(), metrics_fn=watch_obs.as_dict,
    ).start()
    try:
        frame_buffer = io.StringIO()
        frames = Watcher(
            "127.0.0.1", server.port, interval=0.05, history=16,
            out=frame_buffer, clear=False,
        ).run(iterations=3)
    finally:
        server.close()
    print(frame_buffer.getvalue().rstrip())
    print(f"\ndrew {frames} frames; the metrics verb fed the stage digest")


if __name__ == "__main__":
    main()

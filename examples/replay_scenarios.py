"""Replay engine tour: scenarios -> vectorized dataplane -> collector.

Builds every registered traffic scenario from a seed, streams each
through the vectorized PINT dataplane into a sink-side Collector, and
prints per-scenario throughput and decode outcomes -- the batch-rate
counterpart of the event-driven ``collector_service`` example.  Also
round-trips one trace through ``.npz`` to show the capture format.

Run:  PYTHONPATH=src python examples/replay_scenarios.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.replay import ReplayDriver, Trace, build_trace


def main() -> None:
    packets = 6_000
    driver = ReplayDriver(batch_size=4096, seed=0)
    print(f"replaying every scenario ({packets} records each, batch=4096)\n")
    for report in driver.run_all(packets=packets, seed=0):
        print("  " + report.summary())

    # Traces are plain columnar files: save, reload, replay identically.
    trace = build_trace("incast", packets=2_000, seed=0)
    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        trace.save(path)
        reloaded = Trace.load(path)
        same = (
            np.array_equal(reloaded.pid, trace.pid)
            and reloaded.paths == trace.paths
        )
        print(f"\ntrace round-trip through {os.path.basename(path)}: "
              f"{'exact' if same else 'MISMATCH'} "
              f"({len(reloaded)} records, {len(reloaded.paths)} paths)")
        before = driver.replay(trace)
        after = driver.replay(reloaded)
        print(f"replayed reloaded trace: "
              f"{after.path_decoded}/{after.path_flows} paths decoded "
              f"(identical to original: "
              f"{after.path_decoded == before.path_decoded})")
    finally:
        os.unlink(path)


if __name__ == "__main__":
    main()

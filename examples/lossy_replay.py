"""Replay under an unreliable network: loss, bursts, reorder, duplicates.

PINT's headline robustness claim is that any subset of delivered
packets still decodes (every packet re-draws its role by a hash of its
own id), so accuracy degrades *gracefully* with loss instead of
falling off a cliff.  This demo makes the claim visible:

1. replay one scenario over a perfect network,
2. replay the same trace through composed impairment models -- bursty
   Gilbert-Elliott loss, bounded reordering, duplication,
3. sweep i.i.d. loss 0..50% and print the degradation curve,
4. show a per-flow partial decode (coverage + known hops) under loss.

Run:  PYTHONPATH=src python examples/lossy_replay.py
"""

from repro.replay import (
    Duplicate,
    GilbertElliott,
    IIDLoss,
    ReplayDriver,
    Reorder,
    build_trace,
)

PACKETS = 6_000
SEED = 7


def main() -> None:
    trace = build_trace("web-search", packets=PACKETS, seed=SEED)
    driver = ReplayDriver(batch_size=2048, seed=SEED)

    print("== perfect network ==")
    print(driver.replay(trace).summary())

    print("\n== impaired network (burst loss + reorder + duplicates) ==")
    impaired = driver.replay(trace, impairments=[
        GilbertElliott(p_bad=0.02, p_good=0.2, seed=SEED + 1),
        Reorder(depth=48, prob=0.5, seed=SEED + 2),
        Duplicate(0.03, lag=16, seed=SEED + 3),
    ])
    print(impaired.summary())
    print(f"   models: {', '.join(impaired.impairments)}")
    print(f"   {impaired.path_completed_under_loss} flows decoded fully "
          "despite losing packets")

    print("\n== graceful degradation: i.i.d. loss sweep ==")
    print(f"{'loss':>6} {'delivered':>10} {'decoded':>10} {'coverage':>9}")
    for rate in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        models = [IIDLoss(rate, seed=SEED + 4)] if rate else []
        r = driver.replay(trace, impairments=models)
        print(f"{rate * 100:5.0f}% {r.records:>10} "
              f"{r.path_decoded:>5}/{r.path_flows:<4} "
              f"{r.path_coverage_mean * 100:8.1f}%")

    print("\n== partial decode under heavy loss ==")
    # The lossy variant scenarios ("<name>-lossy" / "-reordered" /
    # "-bursty") bake impairment into the trace itself; here we keep
    # the clean trace and push loss through the driver instead, then
    # inspect one flow's partial answer via the collector consumer API.
    from repro.collector import Collector, path_consumer_factory
    from repro.replay import TraceDataplane, plan_delivery
    import numpy as np

    heavy = plan_delivery([IIDLoss(0.9, seed=SEED + 5)], len(trace),
                          trace.flow_id)
    dataplane = TraceDataplane(trace, seed=SEED)
    digests = dataplane.encode_rows(np.arange(len(trace)))
    sink = Collector(path_consumer_factory(trace.universe, seed=SEED),
                     num_shards=4, seed=SEED)
    sink.ingest_batch(trace.flow_id[heavy], trace.pid[heavy],
                      trace.hop_counts[heavy], digests[heavy])
    snap = sink.snapshot()
    print(f"90% loss: {snap.flows} flows alive, mean coverage "
          f"{snap.mean_coverage * 100:.1f}%")
    shown = 0
    for shard in sink.shards:
        for fid, entry in shard.table.items():
            partial = entry.consumer.partial_path()
            if partial and 0.0 < entry.consumer.coverage < 1.0:
                print(f"  flow {fid}: coverage "
                      f"{entry.consumer.coverage * 100:.0f}% "
                      f"partial path {partial}")
                shown += 1
                if shown == 3:
                    return


if __name__ == "__main__":
    main()

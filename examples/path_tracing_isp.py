"""Path tracing on ISP topologies: PINT vs PPM vs AMS2 (paper §6.3).

Traces flows across the US Carrier stand-in topology (157 switches,
diameter 36) with a 1-bit, 4-bit, and 2x8-bit PINT and compares the
packets needed against the IP-traceback baselines.

Run:  python examples/path_tracing_isp.py
"""

import random

from repro.apps import PathTracer
from repro.baselines import AMSTraceback, PPMTraceback
from repro.net import us_carrier


def main() -> None:
    topo = us_carrier()
    print(f"topology: {topo.name}, {topo.num_switches} switches, "
          f"diameter {topo.diameter()}")

    rng = random.Random(7)
    lengths = [6, 16, 26, 36]
    trials = 10

    print(f"\npackets to trace a flow's path (mean over {trials} flows):")
    header = ["scheme/bits"] + [f"k={k}" for k in lengths]
    print("  ".join(h.ljust(14) for h in header))

    paths = {}
    for k in lengths:
        src, dst = topo.pair_at_distance(k, rng)
        paths[k] = topo.switch_path(src, dst)

    for label, kwargs in [
        ("PINT 2x(b=8)", dict(digest_bits=8, num_hashes=2)),
        ("PINT b=4", dict(digest_bits=4)),
        ("PINT b=1", dict(digest_bits=1)),
    ]:
        tracer = PathTracer(topo, d=10, **kwargs)
        cells = []
        for k in lengths:
            stats = tracer.packets_for_path(paths[k], trials=trials)
            cells.append(f"{stats.mean:.0f}")
        print("  ".join(c.ljust(14) for c in [label] + cells))

    ppm = PPMTraceback()
    cells = [f"{ppm.trial_stats(k, trials=trials).mean:.0f}" for k in lengths]
    print("  ".join(c.ljust(14) for c in ["PPM (16b)"] + cells))

    for m in (5, 6):
        ams = AMSTraceback(topo.switch_universe(), m=m)
        cells = [
            f"{ams.trial_stats(paths[k], trials=trials).mean:.0f}"
            for k in lengths
        ]
        print("  ".join(c.ljust(14) for c in [f"AMS2 m={m} (16b)"] + cells))

    print("\nPINT with two 8-bit hashes uses the same 16-bit overhead as "
          "PPM/AMS2\nbut needs 1-2 orders of magnitude fewer packets.")


if __name__ == "__main__":
    main()

"""Figure 7: HPCC(INT) vs HPCC(PINT) -- 95th-pct slowdown and goodput gain.

(a) relative goodput improvement of PINT over INT at rising load;
(b)/(c) per-size-decile p95 slowdown on web-search / Hadoop at 50% load.
Shape to hold: PINT matches INT overall, wins on long flows (overhead
saving), at most slightly loses on short ones; the gain grows with load.
"""

from conftest import print_table

from repro.sim import (
    hadoop_cdf,
    run_hpcc_experiment,
    web_search_cdf,
)

SCALE = 0.01
_SIM = dict(duration=0.3, max_flows=120, link_rate_bps=100e6, k=4)


def _buckets(deciles):
    return sorted({max(1, int(s * SCALE)) for s, _ in deciles})


def generate_figure():
    from repro.sim.workload import HADOOP_DECILES, WEB_SEARCH_DECILES

    workloads = {
        "web-search": (web_search_cdf(SCALE), _buckets(WEB_SEARCH_DECILES)),
        "hadoop": (hadoop_cdf(SCALE), _buckets(HADOOP_DECILES)),
    }
    out = {"slowdown": {}, "goodput_gain": []}
    for name, (cdf, buckets) in workloads.items():
        per_mode = {}
        for mode in ("int", "pint"):
            res = run_hpcc_experiment(mode, load=0.5, cdf=cdf, seed=11, **_SIM)
            per_mode[mode] = {
                "p95_by_bucket": res.slowdown_p95_by_bucket(buckets),
                "mean_slowdown": res.mean_slowdown(),
                "count": res.count,
            }
        out["slowdown"][name] = per_mode
    # (a) goodput gain of large flows vs load (web-search).
    cdf, _ = workloads["web-search"]
    long_cut = int(10_000_000 * SCALE)
    for load in (0.3, 0.5, 0.7):
        gp = {}
        for mode in ("int", "pint"):
            res = run_hpcc_experiment(mode, load=load, cdf=cdf, seed=13, **_SIM)
            try:
                gp[mode] = res.goodput_of_large(long_cut)
            except ValueError:
                gp[mode] = float("nan")
        gain = (gp["pint"] - gp["int"]) / gp["int"] * 100.0
        out["goodput_gain"].append((load, gain))
    return out


def test_fig7_hpcc_int_vs_pint(figure):
    data = figure(generate_figure)
    for name, per_mode in data["slowdown"].items():
        rows = []
        for mode, stats in per_mode.items():
            for edge, p95 in stats["p95_by_bucket"]:
                rows.append((mode, edge, "-" if p95 is None else f"{p95:.2f}"))
        print_table(
            f"Fig 7 ({name}): p95 slowdown by flow-size decile",
            ["telemetry", "size<=B", "p95_slowdown"],
            rows,
        )
    print_table(
        "Fig 7(a): PINT goodput gain over INT (large flows)",
        ["load", "gain_%"],
        [(f"{l:.0%}", f"{g:.1f}") for l, g in data["goodput_gain"]],
    )
    for name, per_mode in data["slowdown"].items():
        int_mean = per_mode["int"]["mean_slowdown"]
        pint_mean = per_mode["pint"]["mean_slowdown"]
        # PINT must be comparable overall (within 25%) -- the headline.
        assert pint_mean < int_mean * 1.25, (
            f"{name}: PINT slowdown {pint_mean:.2f} vs INT {int_mean:.2f}"
        )
    # Goodput gain should be positive at high load (PINT saves bytes).
    gains = dict(data["goodput_gain"])
    assert gains[0.7] > -5.0

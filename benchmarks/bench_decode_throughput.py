"""Sink decode throughput: scalar consumer ingest vs columnar batch decode.

The last scalar stage of the replay→collector pipeline was the sink's
per-packet ``observe()`` loop.  This benchmark measures records/sec
through :class:`repro.collector.Collector` for the two decode-heavy
queries on a synthetic heavy-traffic workload (a fixed population of
concurrent flows with Zipf-skewed packet counts):

* **path** -- the §4.2 peeling decode (hash mode, real digests from a
  per-flow :class:`PathEncoder`), comparing one-record
  :meth:`~repro.collector.Collector.ingest` against columnar
  :meth:`~repro.collector.Collector.ingest_batch` feeding the
  batch-decode engine (``observe_batch`` + vectorised consistency
  scans);
* **latency** -- the §6.2 reservoir-carrier attribution into per-hop
  KLL sketches, scalar per-sample updates vs vectorised carrier
  replay + ``extend_array``.

Also times one end-to-end replay (scenario trace → vectorised encode →
batched ingest → decoded paths) so the whole-pipeline number rides
along.  Writes machine-readable ``BENCH_decode.json`` and asserts the
headline claim: batched decode at batch >= 1024 sustains >= 5x the
scalar consumer rate for both queries.

Run:  PYTHONPATH=src python benchmarks/bench_decode_throughput.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import math
import time

import numpy as np

from benchlib import make_path_workload, write_bench_json, zipf_flow_ids
from repro.collector import (
    Collector,
    latency_consumer_factory,
    path_consumer_factory,
)
from repro.replay import ReplayDriver, build_trace


def make_latency_workload(records: int, flows: int, seed: int):
    """Columnar latency-query stream (codes on an 8-bit grid)."""
    rng = np.random.default_rng(seed)
    fids = zipf_flow_ids(records, flows, rng)
    pids = np.arange(1, records + 1, dtype=np.int64)
    hops = rng.integers(3, 8, size=records, dtype=np.int64)
    digests = rng.integers(0, 256, size=records, dtype=np.int64)
    return fids, pids, hops, digests


def time_scalar(make_collector, cols, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one-record-at-a-time ingest."""
    fids, pids, hops, digs = (c.tolist() for c in cols)
    best = float("inf")
    for _ in range(repeats):
        col = make_collector()
        ingest = col.ingest
        start = time.perf_counter()
        for i in range(len(fids)):
            ingest(fids[i], pids[i], hops[i], digs[i])
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == len(fids)
    return best


def time_batched(make_collector, cols, batch: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for columnar batched ingest."""
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        col = make_collector()
        start = time.perf_counter()
        for lo in range(0, n, batch):
            hi = lo + batch
            col.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi], digs[lo:hi])
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == n
    return best


def bench_query(name, make_collector, cols, batches, repeats):
    """Measure one query kind; returns its JSON-ready result row."""
    records = len(cols[0])
    scalar_s = time_scalar(make_collector, cols, repeats)
    scalar_rate = records / scalar_s
    result = {
        "records": records,
        "scalar_rps": round(scalar_rate),
        "batched_rps": {},
        "big_batch_speedup": 0.0,
    }
    for batch in batches:
        batched_s = time_batched(make_collector, cols, batch, repeats)
        rate = records / batched_s
        result["batched_rps"][str(batch)] = round(rate)
        if batch >= 1024:
            result["big_batch_speedup"] = max(
                result["big_batch_speedup"], rate / scalar_rate
            )
    result["big_batch_speedup"] = round(result["big_batch_speedup"], 1)
    print(f"{name:<8} scalar {scalar_rate:>10,.0f} rec/s   " + "  ".join(
        f"batch={b} {result['batched_rps'][str(b)]:,} rec/s" for b in batches
    ) + f"   best(>=1024) {result['big_batch_speedup']}x")
    return result


def bench_end_to_end(packets: int, batch: int, seed: int):
    """One replay→collector→decoded-paths run; the pipeline number."""
    trace = build_trace("web-search", packets=packets, seed=seed)
    driver = ReplayDriver(batch_size=batch, seed=seed)
    report = driver.replay(trace)
    err = report.congestion_median_rel_err
    print(
        f"e2e      replay {report.records:,} rec at "
        f"{report.records_per_sec:,.0f} rec/s -> "
        f"{report.path_decoded}/{report.path_flows} paths decoded "
        f"({report.path_accuracy * 100:.0f}% correct)"
    )
    return {
        "scenario": "web-search",
        "records": report.records,
        "e2e_rps": round(report.records_per_sec),
        "path_flows": report.path_flows,
        "path_decoded": report.path_decoded,
        "path_accuracy": round(report.path_accuracy, 3),
        "congestion_median_rel_err": (
            None if math.isnan(err) else round(err, 4)
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=120_000,
                        help="records per query workload")
    parser.add_argument("--flows", type=int, default=48,
                        help="concurrent flow population")
    parser.add_argument("--shards", type=int, default=4,
                        help="collector shard count")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=[256, 1024, 4096],
                        help="batch sizes to sweep")
    parser.add_argument("--e2e-packets", type=int, default=30_000,
                        help="records in the end-to-end replay")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of-N)")
    parser.add_argument("--json", default="BENCH_decode.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.records = min(args.records, 40_000)
        args.e2e_packets = min(args.e2e_packets, 12_000)
        args.repeats = min(args.repeats, 2)

    print(f"decode throughput: {args.records} records over {args.flows} "
          f"flows (Zipf-skewed), {args.shards} shards\n")
    path_cols, universe, path_kwargs = make_path_workload(
        args.records, args.flows, args.seed
    )
    results = {
        "path": bench_query(
            "path",
            lambda: Collector(
                path_consumer_factory(universe, **path_kwargs),
                num_shards=args.shards, seed=args.seed,
            ),
            path_cols, args.batches, args.repeats,
        ),
        "latency": bench_query(
            "latency",
            lambda: Collector(
                latency_consumer_factory(bits=8, seed=args.seed,
                                         sketch_size=128),
                num_shards=args.shards, seed=args.seed,
            ),
            make_latency_workload(args.records, args.flows, args.seed),
            args.batches, args.repeats,
        ),
        "end_to_end": bench_end_to_end(
            args.e2e_packets, max(args.batches), args.seed
        ),
    }

    payload = {
        "benchmark": "decode_throughput",
        "records": args.records,
        "flows": args.flows,
        "shards": args.shards,
        "batches": args.batches,
        "seed": args.seed,
        "queries": results,
    }
    write_bench_json(args.json, payload)

    floor = min(
        results["path"]["big_batch_speedup"],
        results["latency"]["big_batch_speedup"],
    )
    print(f"batched decode (batch >= 1024) vs scalar consumer ingest: "
          f">= {floor}x on every query kind")
    assert floor >= 5.0, (
        f"batched decode speedup {floor}x < 5x "
        "(batch >= 1024 must amortise the per-record observe() loop)"
    )
    print("OK: columnar batch decode sustains >= 5x scalar consumer ingest")


if __name__ == "__main__":
    main()

"""Shared helpers for the benchmark scripts.

Two concerns every ``BENCH_*.json`` writer has in common:

* **Finite JSON.**  Timing code divides by measured seconds, decode
  scoring medians over possibly-empty sets -- ``inf`` and ``nan`` are
  one degenerate measurement away, and ``json.dump`` happily emits
  them as the non-standard ``Infinity`` / ``NaN`` tokens that break
  strict parsers downstream (CI artifact consumers, ``jq``).
  :func:`write_bench_json` sanitises non-finite floats to ``None``
  recursively and then dumps with ``allow_nan=False``, so a regression
  fails loudly at write time instead of corrupting the artifact.
* **Workloads.**  The ingest-side benches share the synthetic
  heavy-traffic shape (a fixed population of concurrent flows with
  Zipf-skewed packet counts) and the path-query stream with *real*
  per-flow digests; they live here so the serial and parallel benches
  measure the same bytes.

Import style: benchmark scripts run as ``python benchmarks/bench_*.py``,
so ``benchmarks/`` is ``sys.path[0]`` and ``import benchlib`` resolves
as a sibling.
"""

from __future__ import annotations

import json

import numpy as np

from repro.coding import (
    DistributedMessage,
    PathEncoder,
    multilayer_scheme,
    pack_reps_array,
)
from repro.jsonutil import jsonable
from repro.net import fat_tree


# -- finite JSON -----------------------------------------------------------

#: Non-finite -> null, NumPy -> native, recursively.  The bench
#: writers and the query port used to carry separate copies of this
#: walk; both now share :func:`repro.jsonutil.jsonable` (this alias
#: keeps the benchmarks' historical name).
sanitize = jsonable


def write_bench_json(path: str, payload: dict) -> None:
    """Write a bench artifact as strictly-standard JSON.

    ``allow_nan=False`` backstops the sanitiser: if a non-finite value
    ever slips through a container type :func:`sanitize` does not
    know, the bench fails at write time rather than shipping an
    artifact no strict parser can read.
    """
    with open(path, "w") as fh:
        json.dump(sanitize(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    print(f"\nwrote {path}")


# -- bench-regression gate -------------------------------------------------

def resolve_metric(payload: dict, dotted: str):
    """Walk ``a.b.c`` into a nested payload dict.

    Raises ``KeyError`` naming the missing segment -- a baseline that
    points at a metric the bench no longer emits must fail the gate
    loudly (silent skips are how floors rot).
    """
    cur = payload
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            raise KeyError(
                f"metric path {dotted!r}: segment {part!r} not found"
            )
        cur = cur[part]
    return cur


def compare_bench(payloads: dict, baseline: dict):
    """Check bench artifacts against the committed floors.

    ``payloads`` maps artifact filename -> parsed JSON; ``baseline``
    is the committed ``BENCH_baseline.json``: a ``tolerance`` (how far
    below its floor a metric may regress before the gate fails; 0.4
    means fail at >40% below) and per-file ``floors`` of dotted metric
    path -> floor value.  Floors are records/sec numbers recorded from
    a known-good ``--quick`` run, deliberately set *well below*
    typical so runner-to-runner variance never trips the gate -- only
    a real regression does.

    Returns ``(failures, checked)``: human-readable failure strings
    (empty when the gate passes) and one ``(file, path, value, floor,
    gate)`` tuple per metric checked.
    """
    tolerance = float(baseline.get("tolerance", 0.4))
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures = []
    checked = []
    for fname, floors in baseline.get("floors", {}).items():
        if fname not in payloads:
            failures.append(f"{fname}: artifact missing (bench not run?)")
            continue
        payload = payloads[fname]
        for dotted, floor in floors.items():
            try:
                value = resolve_metric(payload, dotted)
            except KeyError as err:
                failures.append(f"{fname}: {err.args[0]}")
                continue
            if not isinstance(value, (int, float)) or value is None:
                failures.append(
                    f"{fname}: {dotted} is not numeric (got {value!r})"
                )
                continue
            gate = floor * (1.0 - tolerance)
            checked.append((fname, dotted, float(value), float(floor), gate))
            if value < gate:
                failures.append(
                    f"{fname}: {dotted} = {value:,.0f} regressed more "
                    f"than {tolerance:.0%} below its floor {floor:,.0f} "
                    f"(gate {gate:,.0f})"
                )
    return failures, checked


# -- shared workloads ------------------------------------------------------

def zipf_flow_ids(records: int, flows: int, rng) -> np.ndarray:
    """Zipf-skewed flow activity: few heavy flows, a long tail."""
    weights = 1.0 / np.arange(1, flows + 1) ** 0.9
    weights /= weights.sum()
    return rng.choice(np.arange(1, flows + 1), size=records, p=weights).astype(
        np.int64
    )


def make_path_workload(records: int, flows: int, seed: int):
    """Columnar path-query stream with *real* per-flow digests.

    Each flow gets a k-hop path sampled from the fat-tree switch
    universe; digests come from the flow's own encoder (vectorised
    ``encode_many`` -- encoding speed is the replay bench's concern,
    not the ingest benches'), so the sink does genuine peeling work
    before it settles into the steady-state consistency scans.
    Returns ``(columns, universe, consumer_factory_kwargs)``.
    """
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    universe = topo.switch_universe()
    k, bits, seed_enc = 6, 8, seed + 1
    scheme = multilayer_scheme(k)
    fids = zipf_flow_ids(records, flows, rng)
    pids = np.arange(1, records + 1, dtype=np.int64)
    hops = np.full(records, k, dtype=np.int64)
    digests = np.empty(records, dtype=np.int64)
    for fid in range(1, flows + 1):
        lane = fids == fid
        if not lane.any():
            continue
        path = rng.choice(universe, size=k, replace=False).tolist()
        enc = PathEncoder(
            DistributedMessage.from_path(path, universe),
            scheme, bits, "hash", 1, seed_enc,
        )
        digests[lane] = pack_reps_array(enc.encode_many(pids[lane]), bits)
    factory_kwargs = dict(digest_bits=bits, num_hashes=1, seed=seed_enc)
    return (fids, pids, hops, digests), universe, factory_kwargs

"""Ablation: value-approximation error vs bit budget (§4.3 knobs).

Sweeps multiplicative / additive compressors across budgets and checks
the measured error against each codec's analytic bound, plus the Morris
randomized counter's accuracy-vs-bits trade-off.
"""

import random

from conftest import print_table

from repro.approx import (
    AdditiveCompressor,
    MorrisCounter,
    MultiplicativeCompressor,
    delta_for_bits,
    epsilon_for_bits,
)
from repro.hashing import GlobalHash

BITS_GRID = [4, 6, 8, 12, 16]
MAX_VALUE = float(2**32 - 1)
SAMPLES = 400


def generate_figure():
    rng = random.Random(0)
    values = [10 ** rng.uniform(0, 9.6) for _ in range(SAMPLES)]
    out = {"multiplicative": [], "additive": [], "morris": []}
    for bits in BITS_GRID:
        eps = epsilon_for_bits(bits, MAX_VALUE) * 1.0001
        comp = MultiplicativeCompressor(eps, bits=bits, max_value=MAX_VALUE)
        errs = [comp.relative_error(v) for v in values]
        out["multiplicative"].append(
            (bits, eps, max(errs), sum(errs) / len(errs))
        )
        delta = delta_for_bits(bits, MAX_VALUE)
        add = AdditiveCompressor(delta, bits=bits, max_value=MAX_VALUE)
        aerrs = [add.absolute_error(v) for v in values]
        out["additive"].append((bits, delta, max(aerrs)))
    for a in (1.0, 0.5, 0.1):
        counts = []
        for seed in range(30):
            counter = MorrisCounter(a=a, grid=GlobalHash(seed, "ablation"))
            for _ in range(2000):
                counter.increment()
            counts.append(counter.estimate())
        mean = sum(counts) / len(counts)
        out["morris"].append((a, mean, counter.bits_needed(2000)))
    return out


def test_ablation_value_approximation(figure):
    data = figure(generate_figure)
    print_table(
        "Ablation: multiplicative compression error vs bits",
        ["bits", "epsilon", "max_rel_err", "mean_rel_err"],
        [(b, f"{e:.4f}", f"{mx:.4f}", f"{mn:.4f}")
         for b, e, mx, mn in data["multiplicative"]],
    )
    print_table(
        "Ablation: additive compression error vs bits",
        ["bits", "delta", "max_abs_err"],
        [(b, f"{d:.3e}", f"{mx:.3e}") for b, d, mx in data["additive"]],
    )
    print_table(
        "Ablation: Morris counter (2000 increments)",
        ["a", "mean_estimate", "bits"],
        [(a, f"{m:.0f}", bits) for a, m, bits in data["morris"]],
    )
    # Error strictly decreases with budget.
    mult_errs = [mx for _, _, mx, _ in data["multiplicative"]]
    assert mult_errs == sorted(mult_errs, reverse=True)
    # Measured error never exceeds the (one-step) analytic bound.
    for bits, eps, mx, _ in data["multiplicative"]:
        assert mx <= (1 + eps) ** 2 - 1 + 1e-9
    for bits, delta, mx in data["additive"]:
        assert mx <= delta + 1e-6
    # Morris stays within 25% of the truth on average, in ~4-6 bits.
    for a, mean, bits in data["morris"]:
        assert 1500 < mean < 2500
        assert bits <= 8

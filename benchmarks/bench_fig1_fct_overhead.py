"""Figure 1: normalized average FCT vs per-packet overhead, 30%/70% load.

Paper setup: 5-hop fat-tree, web-search workload, TCP Reno with ECMP,
overheads 28B..108B (1..5 INT values on 5 hops).  Ours: scaled-down
fat-tree/link rates per DESIGN.md substitution 1; shape to reproduce:
FCT grows with overhead, and the high-load curve grows faster.
"""

from conftest import print_table

from repro.baselines import int_overhead_bytes
from repro.sim import run_overhead_experiment, web_search_cdf

#: 1..5 INT values per hop on 5 hops (plus the zero-overhead baseline).
OVERHEADS = [0] + [int_overhead_bytes(v, 5) for v in range(1, 6)]
LOADS = [0.30, 0.70]

_SIM = dict(duration=0.25, max_flows=120, link_rate_bps=100e6, k=4)


SEEDS = [42, 43, 44]


def generate_figure():
    cdf = web_search_cdf(scale=0.01)
    data = {}
    for load in LOADS:
        # Accumulate normalised FCT over seeds; within one seed the
        # arrivals are identical across overheads, and we average FCT
        # over the flows that completed under *every* overhead so the
        # comparison is apples-to-apples.
        sums = [0.0] * len(OVERHEADS)
        flows_seen = 0
        for seed in SEEDS:
            results = [
                run_overhead_experiment(
                    overhead_bytes=ov, load=load, cdf=cdf, seed=seed, **_SIM
                )
                for ov in OVERHEADS
            ]
            common = set.intersection(
                *[{f.flow_id for f in r.flows} for r in results]
            )
            flows_seen += len(common)
            means = [
                sum(f.fct for f in r.flows if f.flow_id in common) / len(common)
                for r in results
            ]
            for i, m in enumerate(means):
                sums[i] += m / means[0]
        data[load] = [
            (ov, sums[i] / len(SEEDS), flows_seen)
            for i, ov in enumerate(OVERHEADS)
        ]
    return data


def test_fig1_fct_vs_overhead(figure):
    data = figure(generate_figure)
    rows = []
    for load, series in data.items():
        for overhead, norm_fct, flows in series:
            rows.append((f"{load:.0%}", overhead, f"{norm_fct:.3f}", flows))
    print_table(
        "Fig 1: normalized avg FCT vs overhead (bytes)",
        ["load", "overhead_B", "norm_FCT", "flows"],
        rows,
    )
    for load, series in data.items():
        norm = [s[1] for s in series]
        # Shape: max-overhead FCT must exceed the zero-overhead baseline.
        assert norm[-1] > 1.0, f"load {load}: overhead did not hurt FCT"
        # And the trend must be broadly increasing (allow local noise).
        assert norm[-1] >= max(norm[:2]) - 0.02
    # High load must also show a clear penalty at max overhead.
    assert data[0.70][-1][1] > 1.0

"""Figure 10: packets needed for path decoding vs path length.

Three topologies (Kentucky Datalink D=59, US Carrier D=36, fat-tree
D=5); PINT at 1 bit, 4 bits, and 2x8 bits vs PPM and AMS2 (m=5, 6).
Shapes to hold: PINT grows ~linearly in path length and beats PPM/AMS
by 1-2 orders of magnitude; more budget => fewer packets; at D=59,
PINT 2x(b=8) needs ~tens of packets while PPM/AMS need thousands.
"""

import random

from conftest import print_table

from repro.apps import PathTracer
from repro.baselines import AMSTraceback, PPMTraceback
from repro.net import fat_tree, kentucky_datalink, us_carrier

TRIALS = 12

TOPOLOGIES = [
    ("kentucky", kentucky_datalink, [6, 18, 30, 42, 54], 10),
    ("us-carrier", us_carrier, [4, 12, 20, 28, 36], 10),
    ("fat-tree", lambda: fat_tree(8), [2, 3, 4, 5], 5),
]

PINT_VARIANTS = [
    ("PINT 2x(b=8)", dict(digest_bits=8, num_hashes=2)),
    ("PINT (b=4)", dict(digest_bits=4, num_hashes=1)),
    ("PINT (b=1)", dict(digest_bits=1, num_hashes=1)),
]


def generate_figure():
    out = {}
    for topo_name, factory, lengths, d in TOPOLOGIES:
        topo = factory()
        rng = random.Random(1)
        paths = {}
        for hops in lengths:
            src, dst = topo.pair_at_distance(hops, rng)
            paths[hops] = topo.switch_path(src, dst)
        series = {}
        for label, cfg in PINT_VARIANTS:
            tracer = PathTracer(topo, d=d, **cfg)
            series[label] = {
                hops: tracer.packets_for_path(paths[hops], trials=TRIALS)
                for hops in lengths
            }
        ppm = PPMTraceback()
        series["PPM"] = {
            hops: ppm.trial_stats(hops, trials=TRIALS) for hops in lengths
        }
        for m in (5, 6):
            ams = AMSTraceback(topo.switch_universe(), m=m)
            series[f"AMS2 (m={m})"] = {
                hops: ams.trial_stats(paths[hops], trials=TRIALS)
                for hops in lengths
            }
        out[topo_name] = (lengths, series)
    return out


def test_fig10_path_tracing(figure):
    data = figure(generate_figure)
    for topo_name, (lengths, series) in data.items():
        rows = [
            (label,
             *[f"{stats[h].mean:.0f}/{stats[h].percentile(99)}" for h in lengths])
            for label, stats in series.items()
        ]
        print_table(
            f"Fig 10 ({topo_name}): packets to decode, mean/p99, by path length",
            ["scheme", *[f"k={h}" for h in lengths]],
            rows,
        )

    lengths, kentucky = data["kentucky"]
    longest = lengths[-1]
    pint_best = kentucky["PINT 2x(b=8)"][longest].mean
    pint_1bit = kentucky["PINT (b=1)"][longest].mean
    ppm = kentucky["PPM"][longest].mean
    ams5 = kentucky["AMS2 (m=5)"][longest].mean
    # Headline: PINT 2x(b=8) needs 20-40x fewer packets than PPM/AMS.
    assert ppm / pint_best > 10
    assert ams5 / pint_best > 10
    # Even 1-bit PINT wins by a multiple (paper: 7-10x vs PPM; our
    # peeling-only decoder achieves ~4x -- see EXPERIMENTS.md).
    assert ppm / pint_1bit > 2
    # Monotone growth with path length for PINT.
    means = [kentucky["PINT 2x(b=8)"][h].mean for h in lengths]
    assert means[-1] > means[0]
    # More budget -> fewer packets.
    assert pint_best < pint_1bit

"""Parallel collector ingest: N worker processes vs one, plus equivalence.

Two claims ride in this benchmark:

* **Throughput.**  For the decode-heavy path query (real per-flow
  digests, §4.2 peeling at the sink), a
  :class:`repro.collector.ParallelCollector` with 4 workers sustains
  >= 2x the single-process :meth:`Collector.ingest_batch` rate on the
  same columnar workload.  Timing covers scatter + transport + worker
  decode + the final ``drain()`` barrier (worker startup is excluded:
  a collector is a long-lived service).  The assertion only arms when
  the machine actually has >= 4 usable cores -- parallel speedup on a
  1-core container is physics, not a regression -- and the JSON
  records both the core count and whether the bar was enforced.

* **Transport.**  At the same worker count, the shared-memory ring
  scatter (``transport="shm"``, the default) sustains >= 2x the
  pickled-pipe scatter on a transport-bound workload (cheap
  congestion consumers, large batches).  Gated on usable cores like
  the throughput bar, with the same ``speedup_asserted`` /
  ``speedup_skip_reason`` bookkeeping.

* **Equivalence.**  For every registered replay scenario, a serial
  collector and a 4-worker parallel collector fed the identical
  encoded batches produce a bit-identical merged snapshot (every
  per-shard counter, byte estimate and clock stamp) and bit-identical
  per-flow query answers -- for the path query and for the congestion
  max-aggregation.  This always runs, on any machine.

Writes machine-readable ``BENCH_parallel.json`` (uploaded by CI next
to the other bench artifacts; merged into ``BENCH_pipeline.json`` by
``bench_pipeline.py``).

Run:  PYTHONPATH=src python benchmarks/bench_parallel_ingest.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from benchlib import make_path_workload, write_bench_json
from repro.collector import (
    Collector,
    ParallelCollector,
    congestion_consumer_factory,
    path_consumer_factory,
)
from repro.replay import TraceDataplane, build_trace, scenario_names


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def time_serial(make_collector, cols, batch: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for single-process batched ingest."""
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        col = make_collector()
        start = time.perf_counter()
        for lo in range(0, n, batch):
            hi = lo + batch
            col.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                             digs[lo:hi])
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == n
    return best


def time_parallel(
    make_collector, cols, batch: int, repeats: int
) -> float:
    """Best-of-``repeats`` seconds for scatter + worker ingest + drain.

    Workers are started before the clock (a collector is a long-lived
    service; fork cost is not an ingest cost) and the clock stops only
    after ``drain()`` confirms every scattered record was applied --
    anything less would time the pipe write, not the work.
    """
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        with make_collector() as col:
            start = time.perf_counter()
            for lo in range(0, n, batch):
                hi = lo + batch
                col.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                 digs[lo:hi])
            col.drain()
            best = min(best, time.perf_counter() - start)
            assert col.snapshot().records == n
    return best


def bench_transport(args, cores: int) -> dict:
    """Shm ring vs pipe scatter at max workers, transport-bound.

    Congestion consumers do trivial per-record work, so the scatter
    transport dominates the measured rate -- exactly the cost the
    shared-memory ring replaces.  The >=2x bar only arms with enough
    usable cores (on fewer, both transports context-switch thrash and
    the ratio measures the scheduler); the JSON carries the uniform
    ``speedup_asserted``/``speedup_skip_reason`` pair either way so
    the CI gate can tell "passed" from "never ran".
    """
    rng = np.random.default_rng(args.seed)
    workers = max(args.workers)
    batch = max(args.batch, 16384)
    # Enough batches that steady-state scatter, not the final drain
    # barrier, dominates the clock (cheap records: ~0.5s/leg).
    n = max(args.records, 48 * batch)
    cols = (
        rng.integers(1, args.flows, n),
        np.arange(1, n + 1),
        rng.integers(2, 7, n),
        rng.integers(0, 256, n),
    )
    factory = lambda: congestion_consumer_factory(seed=args.seed)
    print(f"\ntransport: shm ring vs pipe, {n} cheap records, "
          f"{workers} workers, batch={batch}")
    rates = {}
    for transport in ("pipe", "shm"):
        secs = time_parallel(
            lambda transport=transport: ParallelCollector(
                factory(), workers=workers, num_shards=args.num_shards,
                seed=args.seed, transport=transport,
            ),
            cols, batch, args.repeats,
        )
        rates[transport] = n / secs
        print(f"  {transport:<5} {rates[transport]:>12,.0f} rec/s")
    ratio = rates["shm"] / rates["pipe"]
    enforce = cores >= workers
    print(f"  shm/pipe ratio {ratio:.2f}x"
          + ("" if enforce else "  (assertion skipped: too few cores)"))
    if enforce:
        assert ratio >= 2.0, (
            f"shm transport only {ratio:.2f}x pipe at {workers} workers "
            f"on {cores} cores (the ring must beat pickling + pipe "
            "syscalls on a transport-bound workload)"
        )
    return {
        "workers": workers,
        "batch": batch,
        "pipe_rps": round(rates["pipe"]),
        "shm_rps": round(rates["shm"]),
        "shm_over_pipe": round(ratio, 2),
        "speedup_asserted": enforce,
        "speedup_skip_reason": (
            None if enforce else
            f"only {cores} usable core(s) < {workers} workers"
        ),
    }


def bench_throughput(args) -> dict:
    """Serial vs N-worker ingest on the decode-heavy path workload."""
    cols, universe, factory_kwargs = make_path_workload(
        args.records, args.flows, args.seed
    )
    factory = lambda: path_consumer_factory(universe, **factory_kwargs)
    print(f"\nworkload: {args.records} path-query records over "
          f"{args.flows} flows, batch={args.batch}, "
          f"{args.num_shards} shards")
    serial_s = time_serial(
        lambda: Collector(factory(), num_shards=args.num_shards,
                          seed=args.seed),
        cols, args.batch, args.repeats,
    )
    serial_rate = args.records / serial_s
    print(f"serial    1 process   {serial_rate:>12,.0f} rec/s")
    results = {}
    for workers in args.workers:
        par_s = time_parallel(
            # workers bound as a default: the lambda runs inside this
            # iteration, but late-binding closures are the B023 trap.
            lambda workers=workers: ParallelCollector(
                factory(), workers=workers, num_shards=args.num_shards,
                seed=args.seed,
            ),
            cols, args.batch, args.repeats,
        )
        rate = args.records / par_s
        speedup = rate / serial_rate
        results[str(workers)] = {
            "rps": round(rate),
            "speedup": round(speedup, 2),
        }
        print(f"parallel  {workers} workers   {rate:>12,.0f} rec/s   "
              f"{speedup:.2f}x")
    return {"serial_rps": round(serial_rate), "workers": results}


def check_scenario_equivalence(
    name: str, packets: int, batch: int, workers: int, num_shards: int,
    seed: int,
) -> dict:
    """Serial vs parallel on one scenario trace: must be bit-identical.

    Feeds both collectors the same encoded columns batch by batch
    (trace timestamps as the clock), then compares the merged snapshot
    dict -- every per-shard counter, the byte estimates, the clock
    stamp -- and every flow's query answer, for the path query and the
    congestion max-aggregation.
    """
    trace = build_trace(name, packets=packets, seed=seed)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=seed)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))
    hops = trace.hop_counts
    rng = np.random.default_rng(seed)
    cong_codes = rng.integers(0, 256, size=len(trace), dtype=np.int64)
    flows = np.unique(trace.flow_id).tolist()

    def path_factory():
        return path_consumer_factory(
            trace.universe, digest_bits=8, num_hashes=1, seed=seed
        )

    checked = {}
    for kind, factory, digs in (
        ("path", path_factory, digests),
        ("congestion",
         lambda: congestion_consumer_factory(seed=seed), cong_codes),
    ):
        serial = Collector(factory(), num_shards=num_shards, seed=seed)
        with ParallelCollector(
            factory(), workers=workers, num_shards=num_shards, seed=seed,
        ) as par:
            for lo, hi in trace.batches(batch):
                now = float(trace.ts[hi - 1])
                serial.ingest_batch(
                    trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
                    digs[lo:hi], now=now,
                )
                par.ingest_batch(
                    trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
                    digs[lo:hi], now=now,
                )
            par.drain()
            s_snap = serial.snapshot().as_dict()
            p_snap = par.snapshot().as_dict()
            assert s_snap == p_snap, (
                f"{name}/{kind}: merged snapshot diverges from serial: "
                + str({k: (s_snap[k], p_snap[k]) for k in s_snap
                       if s_snap[k] != p_snap[k]})
            )
            mismatches = [
                fid for fid in flows
                if serial.result(fid) != par.result(fid)
            ]
            assert not mismatches, (
                f"{name}/{kind}: per-flow results diverge for flows "
                f"{mismatches[:5]}..."
            )
        checked[kind] = {"flows": len(flows), "records": len(trace)}
    return checked


def bench_equivalence(args) -> dict:
    """Run the bit-identity check on every registered scenario."""
    workers = max(args.workers)
    print(f"\nequivalence: serial vs {workers}-worker collector, "
          f"{args.eq_packets} records/scenario, both query kinds")
    scenarios = {}
    for name in scenario_names():
        scenarios[name] = check_scenario_equivalence(
            name, args.eq_packets, args.batch, workers, args.num_shards,
            args.seed,
        )
        print(f"  {name:<15} snapshot + per-flow results bit-identical")
    return {"workers": workers, "packets": args.eq_packets,
            "scenarios": scenarios, "ok": True}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=200_000,
                        help="records in the throughput workload")
    parser.add_argument("--flows", type=int, default=256,
                        help="concurrent flow population (a larger "
                        "population spreads Zipf skew across shards, so "
                        "worker load stays balanced)")
    parser.add_argument("--num-shards", type=int, default=8,
                        help="collector shard count")
    parser.add_argument("--batch", type=int, default=8192,
                        help="columnar batch size")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4],
                        help="worker counts to sweep")
    parser.add_argument("--eq-packets", type=int, default=12_000,
                        help="records per scenario in the equivalence check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of-N)")
    parser.add_argument("--json", default="BENCH_parallel.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.records = min(args.records, 80_000)
        args.eq_packets = min(args.eq_packets, 4_000)
        args.repeats = min(args.repeats, 2)

    cores = usable_cores()
    print(f"parallel ingest: {cores} usable cores, "
          f"workers sweep {args.workers}")

    throughput = bench_throughput(args)
    transport = bench_transport(args, cores)
    equivalence = bench_equivalence(args)

    target_workers = max(args.workers)
    speedup = throughput["workers"][str(target_workers)]["speedup"]
    enforce = cores >= target_workers
    payload = {
        "benchmark": "parallel_ingest_throughput",
        "records": args.records,
        "flows": args.flows,
        "num_shards": args.num_shards,
        "batch": args.batch,
        "seed": args.seed,
        "cores": cores,
        "serial_rps": throughput["serial_rps"],
        "workers": throughput["workers"],
        #: The worker count the >=2x assertion targets, whether it ran
        #: (self-gated on usable cores), and -- when it did not -- why:
        #: a CI reader must be able to tell "passed" from "never ran".
        "target_workers": target_workers,
        "speedup_asserted": enforce,
        "speedup_skip_reason": (
            None if enforce else
            f"only {cores} usable core(s) < {target_workers} workers"
        ),
        "transport": transport,
        "equivalence": equivalence,
    }
    write_bench_json(args.json, payload)

    if enforce:
        print(f"\n{target_workers}-worker ingest vs single process: "
              f"{speedup:.2f}x")
        assert speedup >= 2.0, (
            f"parallel ingest speedup {speedup:.2f}x < 2x at "
            f"{target_workers} workers on {cores} cores (shard scatter "
            "must buy real parallelism)"
        )
        print("OK: parallel collector sustains >= 2x single-process "
              "ingest")
    else:
        print(f"\nonly {cores} usable core(s) < {target_workers} workers: "
              f"measured {speedup:.2f}x, >=2x assertion skipped "
              "(needs real cores to mean anything)")
    print("OK: merged snapshots and per-flow results bit-identical to "
          "serial on every scenario")


if __name__ == "__main__":
    main()

"""Accuracy degradation under network impairment: the loss sweep.

Two claims ride in this benchmark:

* **Zero-impairment bit-identity.**  A pipeline of zero-rate
  impairment models (0% loss, depth-0 reorder, 0% duplication, a
  never-entered Gilbert-Elliott bad state) is the *exact* identity:
  for every registered base scenario, a collector fed through the
  impairment engine's delivery schedule produces a bit-identical
  snapshot (every per-shard counter, byte estimate, coverage sum and
  clock stamp) and bit-identical per-flow answers to one fed the raw
  trace -- and a :class:`ReplayDriver` carrying the zero models
  reports the same decode outcome field for field.  This always runs.

* **Graceful degradation.**  Sweeping i.i.d. loss from 0% to 50%
  across the three digest representations ({raw, hash, fragment},
  paper §4.2) reproduces the headline robustness property: any subset
  of delivered packets still decodes, so decode success falls
  *smoothly* with delivery rate -- monotone-ish, with no
  cliff-to-zero before 50% loss for the hash/fragment digests.

The full run also charts bursty (Gilbert-Elliott) loss and a
reorder+duplication pipeline next to the i.i.d. rows, so the trend
data covers every model the engine ships.

Writes machine-readable ``BENCH_impair.json`` (uploaded by CI next to
the other bench artifacts; floors enforced by
``check_bench_regression.py``).

Run:  PYTHONPATH=src python benchmarks/bench_impairment_sweep.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import math

import numpy as np

from benchlib import write_bench_json
from repro.collector import Collector, path_consumer_factory
from repro.replay import (
    Duplicate,
    GilbertElliott,
    IIDLoss,
    ReplayDriver,
    Reorder,
    TraceDataplane,
    build_trace,
    plan_delivery,
    scenario_names,
)

#: Digest-width configuration per representation: fragment uses b=4 so
#: switch IDs split into >= 2 fragments (b=8 would make fragmentation
#: degenerate into raw on these universes).
MODES = {"hash": 8, "raw": 8, "fragment": 4}


def zero_models(seed: int) -> list:
    """One of each model, parameterised to be an exact no-op."""
    return [
        IIDLoss(0.0, seed=seed),
        GilbertElliott(p_bad=0.0, p_good=1.0, seed=seed + 1),
        Reorder(depth=0, seed=seed + 2),
        Duplicate(0.0, seed=seed + 3),
    ]


def check_zero_identity(name: str, packets: int, batch: int, seed: int) -> dict:
    """Zero-rate impairment vs raw trace: must be bit-identical.

    Collector level: every record carries the path query (the
    decode-stateful sink), one collector fed ``trace.batches`` row
    ranges, one fed the zero pipeline's delivery schedule; snapshots
    and per-flow answers must match exactly.  Driver level: a
    :class:`ReplayDriver` with the zero models must reproduce every
    deterministic report field of the plain driver.
    """
    trace = build_trace(name, packets=packets, seed=seed)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=seed)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))
    hops = trace.hop_counts
    factory = lambda: path_consumer_factory(
        trace.universe, digest_bits=8, num_hashes=1, seed=seed
    )

    def feed(delivery) -> Collector:
        col = Collector(factory(), num_shards=4, seed=seed)
        for lo in range(0, len(delivery), batch):
            rows = delivery[lo : lo + batch]
            col.ingest_batch(
                trace.flow_id[rows], trace.pid[rows], hops[rows],
                digests[rows], now=float(trace.ts[rows].max()),
            )
        return col

    plain = feed(np.arange(len(trace), dtype=np.int64))
    zeroed = feed(plan_delivery(zero_models(seed), len(trace), trace.flow_id))
    p_snap = plain.snapshot().as_dict()
    z_snap = zeroed.snapshot().as_dict()
    assert p_snap == z_snap, (
        f"{name}: zero-impairment snapshot diverges: "
        + str({k: (p_snap[k], z_snap[k]) for k in p_snap
               if p_snap[k] != z_snap[k]})
    )
    flows = np.unique(trace.flow_id).tolist()
    mismatch = [f for f in flows if plain.result(f) != zeroed.result(f)]
    assert not mismatch, (
        f"{name}: per-flow answers diverge under zero impairment for "
        f"flows {mismatch[:5]}..."
    )

    plain_r = ReplayDriver(batch_size=batch, seed=seed).replay(trace)
    zero_r = ReplayDriver(
        batch_size=batch, seed=seed, impairments=zero_models(seed)
    ).replay(trace)
    for field in (
        "records", "flows", "batches", "path_records", "path_flows",
        "path_decoded", "path_correct", "path_resets",
        "congestion_records", "congestion_flows", "dropped_records",
        "duplicated_records", "reordered_records",
        "path_completed_under_loss",
    ):
        assert getattr(plain_r, field) == getattr(zero_r, field), (
            f"{name}: driver report field {field!r} diverges under "
            "zero impairment"
        )
    s_err, z_err = (
        plain_r.congestion_median_rel_err, zero_r.congestion_median_rel_err
    )
    assert s_err == z_err or (math.isnan(s_err) and math.isnan(z_err))
    s_cov, z_cov = plain_r.path_coverage_mean, zero_r.path_coverage_mean
    assert s_cov == z_cov or (math.isnan(s_cov) and math.isnan(z_cov))
    return {"records": len(trace), "flows": len(flows)}


def sweep_cell(
    scenario: str,
    mode: str,
    models: list,
    packets: int,
    batch: int,
    seed: int,
) -> dict:
    """One (scenario, mode, impairment) replay; JSON-ready row."""
    driver = ReplayDriver(
        batch_size=batch, seed=seed, mode=mode,
        digest_bits=MODES[mode], impairments=models,
    )
    report = driver.run_scenario(scenario, packets=packets, seed=seed)
    d = report.as_dict()
    return {
        k: d[k] for k in (
            "records", "offered_records", "dropped_records",
            "duplicated_records", "reordered_records", "delivery_rate",
            "path_flows", "path_decoded", "path_correct",
            "path_completed_under_loss", "path_coverage_mean",
            "path_coverage", "path_accuracy", "records_per_sec",
            "impairments",
        )
    }


def decoded_fraction(cell: dict) -> float:
    """Decode success: fully-decoded path flows over offered ones."""
    return cell["path_decoded"] / cell["path_flows"] if cell["path_flows"] else 0.0


def run_sweep(args) -> dict:
    """Loss sweep x modes x scenarios, with the degradation gates."""
    results: dict = {}
    for scenario in args.scenarios:
        results[scenario] = {}
        for mode in MODES:
            rows = {}
            print(f"\n{scenario} / {mode} (b={MODES[mode]}):")
            for rate in args.rates:
                models = (
                    [IIDLoss(rate, seed=args.seed + 11)] if rate else []
                )
                cell = sweep_cell(
                    scenario, mode, models, args.packets, args.batch,
                    args.seed,
                )
                rows[f"loss_{int(round(rate * 100)):02d}"] = cell
                cov = cell["path_coverage_mean"]
                cov_s = f"{cov:.3f}" if cov is not None else "n/a"
                print(
                    f"  loss {rate * 100:4.0f}%  delivered "
                    f"{cell['records']:>6}  decoded "
                    f"{cell['path_decoded']:>4}/{cell['path_flows']:<4}"
                    f"  coverage {cov_s}  "
                    f"{cell['records_per_sec']:>10,.0f} rec/s"
                )
            results[scenario][mode] = rows

            # Gate 1: monotone-ish -- decode success never *rises* by
            # more than the noise slack as delivery drops.
            fracs = [
                decoded_fraction(rows[f"loss_{int(round(r * 100)):02d}"])
                for r in args.rates
            ]
            for i in range(1, len(fracs)):
                assert fracs[i] <= max(fracs[:i]) + 0.1, (
                    f"{scenario}/{mode}: decode success not monotone-ish "
                    f"in delivery rate: {fracs}"
                )
            # Gate 2: graceful, not a cliff -- hash/fragment digests
            # keep decoding real path state all the way to 50% loss.
            if mode in ("hash", "fragment"):
                for r in args.rates:
                    cell = rows[f"loss_{int(round(r * 100)):02d}"]
                    cov = cell["path_coverage_mean"]
                    assert cell["path_decoded"] > 0 and (
                        cov is not None and cov > 0.25
                    ), (
                        f"{scenario}/{mode}: decode cliff at "
                        f"{r * 100:.0f}% loss (decoded "
                        f"{cell['path_decoded']}, coverage {cov})"
                    )
    return results


def run_extra_models(args) -> dict:
    """Bursty loss and reorder+duplication rows (trend data, no gate)."""
    extras = {
        "bursty_ge": [
            GilbertElliott(p_bad=0.015, p_good=0.125, loss_bad=0.9,
                           seed=args.seed + 21),
        ],
        "reorder_dup": [
            Reorder(depth=64, prob=0.5, seed=args.seed + 22),
            Duplicate(0.05, lag=16, seed=args.seed + 23),
        ],
        "burst_reorder_dup": [
            GilbertElliott(p_bad=0.01, p_good=0.2, seed=args.seed + 24),
            Reorder(depth=32, seed=args.seed + 25),
            Duplicate(0.02, seed=args.seed + 26),
        ],
    }
    out = {}
    scenario = args.scenarios[0]
    print(f"\ncomposed pipelines on {scenario} (hash):")
    for label, models in extras.items():
        cell = sweep_cell(
            scenario, "hash", models, args.packets, args.batch, args.seed
        )
        out[label] = cell
        print(
            f"  {label:<18} delivered {cell['records']:>6} "
            f"(-{cell['dropped_records']} +{cell['duplicated_records']} "
            f"~{cell['reordered_records']})  decoded "
            f"{cell['path_decoded']}/{cell['path_flows']}"
        )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=40_000,
                        help="records per scenario trace")
    parser.add_argument("--batch", type=int, default=8192,
                        help="columnar batch size")
    parser.add_argument("--scenarios", nargs="+",
                        default=["web-search", "incast", "isp-long-paths"],
                        help="scenarios swept (first also runs the "
                        "composed pipelines)")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
                        help="i.i.d. loss rates swept (0..0.5)")
    parser.add_argument("--identity-packets", type=int, default=6_000,
                        help="records per scenario in the zero-identity "
                        "check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="BENCH_impair.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.packets = min(args.packets, 8_000)
        args.identity_packets = min(args.identity_packets, 3_000)
        args.scenarios = args.scenarios[:2]
        args.rates = [0.0, 0.25, 0.5]

    print(f"zero-impairment identity: {args.identity_packets} "
          f"records/scenario, all base scenarios")
    identity = {}
    for name in scenario_names():
        identity[name] = check_zero_identity(
            name, args.identity_packets, args.batch, args.seed
        )
        print(f"  {name:<15} snapshot + per-flow answers bit-identical")

    sweep = run_sweep(args)
    extras = run_extra_models(args)

    payload = {
        "benchmark": "impairment_sweep",
        "packets": args.packets,
        "batch": args.batch,
        "seed": args.seed,
        "rates": args.rates,
        "modes": {m: {"digest_bits": b} for m, b in MODES.items()},
        "zero_identity": {"scenarios": identity, "ok": True},
        "sweep": sweep,
        "composed": extras,
    }
    write_bench_json(args.json, payload)

    print("\nOK: zero impairment is bit-identical on every scenario")
    print("OK: decode success degrades gracefully to 50% loss "
          "(no cliff for hash/fragment)")


if __name__ == "__main__":
    main()

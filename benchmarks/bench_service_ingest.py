"""Wire-path ingest: the network front door vs in-process, plus equivalence.

Three claims ride in this benchmark:

* **Bit-identity.**  For every registered replay scenario, a collector
  fed over the loopback wire -- reliable UDP (seq/ACK/RTO, fragment
  reassembly) and a TCP stream alike -- ends bit-identical to one fed
  the same columnar batches in-process: every per-shard snapshot
  counter and every per-flow query answer.  The wire may fragment,
  retransmit and reorder; ``FLAG_MORE`` reassembly plus in-order
  exactly-once delivery must hide all of it.  Always runs.

* **Reliability.**  Under a 10% per-transmission simulated-loss hook
  the reliable sender still delivers 100% of the records, exactly
  once (retransmits observed, duplicates deduped server-side).

* **Throughput.**  The full wire path -- encode frames, loopback
  socket, decode, admission queue, ingest thread -- is measured in
  records/sec for both transports and gated in CI against committed
  floors (``BENCH_baseline.json``), so the service layer cannot
  quietly decay.

Writes machine-readable ``BENCH_service.json``.

Run:  PYTHONPATH=src python benchmarks/bench_service_ingest.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from benchlib import make_path_workload, write_bench_json
from repro.collector import Collector, path_consumer_factory
from repro.replay import ReplayDriver, TraceDataplane, build_trace, scenario_names
from repro.service import CollectorServer, ReliableUDPSender, TCPSender


def make_sender(transport: str, server: CollectorServer, **kw):
    if transport == "udp":
        return ReliableUDPSender("127.0.0.1", server.udp_port, **kw)
    return TCPSender("127.0.0.1", server.tcp_port, **kw)


def server_ports(transport: str) -> dict:
    return {"udp_port": 0, "tcp_port": None} if transport == "udp" else \
           {"udp_port": None, "tcp_port": 0}


def time_in_process(factory, cols, batch: int, repeats: int,
                    num_shards: int, seed: int) -> float:
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        col = Collector(factory(), num_shards=num_shards, seed=seed)
        start = time.perf_counter()
        for lo in range(0, n, batch):
            hi = lo + batch
            col.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                             digs[lo:hi])
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == n
    return best


def time_wire(transport: str, factory, cols, batch: int, repeats: int,
              num_shards: int, seed: int) -> float:
    """Best-of-``repeats`` seconds for the full wire path.

    The server is started before the clock (a sink is a long-lived
    service); the clock stops only after ``wait_for_records`` confirms
    the last frame cleared socket, queue and ingest thread -- anything
    less would time the sendto, not the work.
    """
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        col = Collector(factory(), num_shards=num_shards, seed=seed)
        with CollectorServer(col, **server_ports(transport)) as srv:
            with make_sender(transport, srv) as tx:
                start = time.perf_counter()
                for lo in range(0, n, batch):
                    hi = lo + batch
                    tx.send_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                  digs[lo:hi])
                tx.flush()
                srv.wait_for_records(n, timeout=120)
                best = min(best, time.perf_counter() - start)
            assert srv.snapshot().records == n
    return best


def bench_throughput(args) -> dict:
    cols, universe, factory_kwargs = make_path_workload(
        args.records, args.flows, args.seed
    )
    factory = lambda: path_consumer_factory(universe, **factory_kwargs)
    print(f"\nworkload: {args.records} path-query records over "
          f"{args.flows} flows, batch={args.batch}, "
          f"{args.num_shards} shards")
    base_s = time_in_process(factory, cols, args.batch, args.repeats,
                             args.num_shards, args.seed)
    base_rate = args.records / base_s
    print(f"in-process            {base_rate:>12,.0f} rec/s")
    out = {"in_process_rps": round(base_rate)}
    for transport in ("udp", "tcp"):
        wire_s = time_wire(transport, factory, cols, args.batch,
                           args.repeats, args.num_shards, args.seed)
        rate = args.records / wire_s
        out[f"{transport}_rps"] = round(rate)
        print(f"wire ({transport:<3})            {rate:>12,.0f} rec/s   "
              f"{rate / base_rate:.2f}x of in-process")
    return out


def check_scenario_equivalence(
    name: str, packets: int, batch: int, num_shards: int, seed: int,
) -> dict:
    """In-process vs behind-the-wire on one scenario: bit-identical.

    Feeds a direct collector and two served collectors (reliable UDP
    with a small frame size -- forcing fragmentation + reassembly --
    and a TCP stream) the identical encoded columns with identical
    clock stamps, then compares snapshot dicts and per-flow answers.
    """
    trace = build_trace(name, packets=packets, seed=seed)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=seed)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))
    hops = trace.hop_counts
    flows = np.unique(trace.flow_id).tolist()

    def factory():
        return path_consumer_factory(
            trace.universe, digest_bits=8, num_hashes=1, seed=seed
        )

    direct = Collector(factory(), num_shards=num_shards, seed=seed)
    served = {
        t: Collector(factory(), num_shards=num_shards, seed=seed)
        for t in ("udp", "tcp")
    }
    servers = {
        t: CollectorServer(served[t], **server_ports(t)).start()
        for t in served
    }
    # max_records=256 on UDP: every 1000-record batch fragments into
    # FLAG_MORE runs, so reassembly is exercised on every scenario.
    senders = {
        "udp": make_sender("udp", servers["udp"], max_records=256),
        "tcp": make_sender("tcp", servers["tcp"]),
    }
    try:
        sent = 0
        for lo, hi in trace.batches(batch):
            now = float(trace.ts[hi - 1])
            cols = (trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
                    digests[lo:hi])
            direct.ingest_batch(*cols, now=now)
            for tx in senders.values():
                tx.send_batch(*cols, now=now)
            sent += hi - lo
        d_snap = direct.snapshot().as_dict()
        for t in ("udp", "tcp"):
            senders[t].flush()
            servers[t].wait_for_records(sent, timeout=120)
            servers[t].drain()
            w_snap = served[t].snapshot().as_dict()
            assert w_snap == d_snap, (
                f"{name}/{t}: wire-fed snapshot diverges: "
                + str({k: (d_snap[k], w_snap[k]) for k in d_snap
                       if d_snap[k] != w_snap[k]})
            )
            mismatches = [
                fid for fid in flows
                if direct.result(fid) != served[t].result(fid)
            ]
            assert not mismatches, (
                f"{name}/{t}: per-flow results diverge for flows "
                f"{mismatches[:5]}..."
            )
    finally:
        for tx in senders.values():
            tx.sock.close()
        for srv in servers.values():
            srv.close()
    return {"flows": len(flows), "records": len(trace)}


def bench_equivalence(args) -> dict:
    print(f"\nequivalence: in-process vs wire (udp fragmenting + tcp), "
          f"{args.eq_packets} records/scenario")
    scenarios = {}
    for name in scenario_names():
        scenarios[name] = check_scenario_equivalence(
            name, args.eq_packets, args.batch, args.num_shards, args.seed,
        )
        print(f"  {name:<15} snapshot + per-flow results bit-identical")
    # Belt and braces: the driver's own transport knob, whole pipeline.
    trace = build_trace("incast", packets=args.eq_packets, seed=args.seed)
    base = ReplayDriver(batch_size=args.batch, seed=args.seed).replay(trace)
    for transport in ("udp", "tcp"):
        over = ReplayDriver(batch_size=args.batch, seed=args.seed,
                            transport=transport).replay(trace)
        for f in ("records", "batches", "path_decoded", "path_correct",
                  "path_resets", "congestion_flows"):
            assert getattr(base, f) == getattr(over, f), (transport, f)
    print("  driver transport=udp/tcp reports match in-process")
    return {"packets": args.eq_packets, "scenarios": scenarios, "ok": True}


def bench_reliability(args) -> dict:
    """100% delivery, exactly once, under 10% simulated loss."""
    records = min(args.records, 20_000)
    cols, universe, factory_kwargs = make_path_workload(
        records, args.flows, args.seed
    )
    rng = np.random.default_rng(args.seed)
    col = Collector(path_consumer_factory(universe, **factory_kwargs),
                    num_shards=args.num_shards, seed=args.seed)
    with CollectorServer(col, tcp_port=None) as srv:
        tx = ReliableUDPSender(
            "127.0.0.1", srv.udp_port, max_records=512,
            drop_fn=lambda seq, attempt: bool(rng.random() < 0.10),
            min_rto=0.01, initial_rto=0.05,
        )
        fids, pids, hops, digs = cols
        with tx:
            for lo in range(0, records, args.batch):
                hi = lo + args.batch
                tx.send_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                              digs[lo:hi])
            tx.flush()
        srv.wait_for_records(records, timeout=120)
        stats = srv.service_stats()
        assert stats.records_ingested == records, (
            f"reliable sender lost records: {stats.records_ingested} "
            f"of {records} under 10% loss"
        )
        assert tx.retransmits > 0, "10% loss produced no retransmits?"
        delivered = {
            "records": records,
            "frames_sent": tx.frames_sent,
            "retransmits": tx.retransmits,
            "duplicates_deduped": stats.duplicate_frames,
        }
    print(f"\nreliability: {records} records through 10% loss -- "
          f"{delivered['retransmits']} retransmits, "
          f"{delivered['duplicates_deduped']} dups deduped, 0 lost")
    return delivered


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=120_000,
                        help="records in the throughput workload")
    parser.add_argument("--flows", type=int, default=256)
    parser.add_argument("--num-shards", type=int, default=4)
    parser.add_argument("--batch", type=int, default=4096,
                        help="columnar batch size (one logical wire batch)")
    parser.add_argument("--eq-packets", type=int, default=8_000,
                        help="records per scenario in the equivalence check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", default="BENCH_service.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.records = min(args.records, 40_000)
        args.eq_packets = min(args.eq_packets, 3_000)
        args.repeats = min(args.repeats, 2)

    throughput = bench_throughput(args)
    equivalence = bench_equivalence(args)
    reliability = bench_reliability(args)

    write_bench_json(args.json, {
        "benchmark": "service_wire_ingest",
        "records": args.records,
        "flows": args.flows,
        "num_shards": args.num_shards,
        "batch": args.batch,
        "seed": args.seed,
        **throughput,
        "reliability": reliability,
        "equivalence": equivalence,
    })
    print("OK: wire-fed collectors bit-identical to in-process on every "
          "scenario; reliable delivery 100% under loss")


if __name__ == "__main__":
    main()

"""Figure 5: Baseline vs XOR vs Hybrid decoding, k = d = 25 hops.

(a) E[missing hops] vs packets received; (b) P[full decode] vs packets.
Paper landmarks: Baseline median ~89 / p99 ~189 packets; Hybrid median
~41 / p99 ~68; XOR(p=1/d) decodes slowly at first but finishes near
Baseline; Hybrid strictly dominates both.
"""

from conftest import print_table

from repro.coding import (
    DistributedMessage,
    average_progress,
    baseline_scheme,
    hybrid_scheme,
    packet_count_distribution,
    xor_scheme,
)

K = 25
MESSAGE = DistributedMessage(tuple(range(1, K + 1)))
SCHEMES = [
    ("Baseline", baseline_scheme()),
    ("XOR", xor_scheme(1.0 / K)),
    ("Hybrid", hybrid_scheme(K)),
]
CHECKPOINTS = [25, 50, 75, 100, 150, 200]
TRIALS = 40


def generate_figure():
    out = {}
    for name, scheme in SCHEMES:
        progress = average_progress(
            MESSAGE, scheme, packets=max(CHECKPOINTS), trials=15,
            digest_bits=8, mode="raw",
        )
        stats = packet_count_distribution(
            MESSAGE, scheme, trials=TRIALS, digest_bits=8, mode="raw"
        )
        out[name] = {
            "progress": {n: progress[n - 1] for n in CHECKPOINTS},
            "median": stats.median,
            "p99": stats.percentile(99),
            "mean": stats.mean,
        }
    return out


def test_fig5_decoding_schemes(figure):
    data = figure(generate_figure)
    rows = [
        (name,
         *[f"{d['progress'][n]:.1f}" for n in CHECKPOINTS],
         d["median"], d["p99"])
        for name, d in data.items()
    ]
    print_table(
        "Fig 5: E[missing hops] at packet checkpoints; decode median/p99",
        ["scheme", *[f"n={n}" for n in CHECKPOINTS], "median", "p99"],
        rows,
    )
    base, xor, hybrid = data["Baseline"], data["XOR"], data["Hybrid"]
    # (a) XOR decodes fewer hops early on...
    assert xor["progress"][25] > base["progress"][25]
    # ...but finishes within a similar number of packets as Baseline.
    assert xor["p99"] < base["p99"] * 2.5
    # Hybrid beats both on median and tail (the headline result).
    assert hybrid["median"] < base["median"]
    assert hybrid["p99"] < base["p99"]
    # Paper landmarks, loose bands: Baseline median ~89, Hybrid ~41.
    assert 60 < base["median"] < 130
    assert 30 < hybrid["median"] < 75

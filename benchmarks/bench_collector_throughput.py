"""Collector ingestion throughput: scalar vs batched, across shards.

Measures records/sec into :class:`repro.collector.Collector` for the
congestion (max-aggregation) query on a synthetic heavy-traffic
workload -- a fixed population of concurrent flows with Zipf-skewed
packet counts, the shape a sink serving many users sees.  Compares:

* one-record-at-a-time :meth:`~repro.collector.Collector.ingest`
  (per-record routing hash + table touch + consumer dispatch), vs
* columnar :meth:`~repro.collector.Collector.ingest_batch` at several
  batch sizes (vectorised routing, C lexsort grouping, one
  ``consume_batch`` per flow per batch),

across shard counts.  Asserts the headline claim: batched ingest at
batch >= 1024 sustains >= 5x the scalar rate on the same workload.
Writes machine-readable ``BENCH_ingest.json`` (merged with the encode
and decode rows into ``BENCH_pipeline.json`` by ``bench_pipeline.py``).

Run:  PYTHONPATH=src python benchmarks/bench_collector_throughput.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from benchlib import write_bench_json, zipf_flow_ids
from repro.collector import Collector, congestion_consumer_factory


def make_workload(records: int, flows: int, seed: int = 0):
    """Columnar record stream: Zipf-skewed flow activity, random digests."""
    rng = np.random.default_rng(seed)
    flow_ids = zipf_flow_ids(records, flows, rng)
    pids = np.arange(1, records + 1, dtype=np.int64)
    hops = rng.integers(2, 8, size=records, dtype=np.int64)
    digests = rng.integers(0, 256, size=records, dtype=np.int64)
    return flow_ids, pids, hops, digests


def new_collector(num_shards: int) -> Collector:
    return Collector(
        congestion_consumer_factory(seed=1), num_shards=num_shards, seed=1
    )


def run_scalar(num_shards: int, cols, repeats: int = 3) -> float:
    """Best-of-``repeats`` seconds to ingest one record at a time.

    Best-of-N filters one-off scheduler stalls so the CI smoke run
    measures the code, not the runner's noisy neighbours.
    """
    fids, pids, hops, digs = (c.tolist() for c in cols)
    best = float("inf")
    for _ in range(repeats):
        col = new_collector(num_shards)
        ingest = col.ingest
        start = time.perf_counter()
        for i in range(len(fids)):
            ingest(fids[i], pids[i], hops[i], digs[i])
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == len(fids)
    return best


def run_batched(num_shards: int, cols, batch: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` seconds to ingest in columnar batches."""
    fids, pids, hops, digs = cols
    n = len(fids)
    best = float("inf")
    for _ in range(repeats):
        col = new_collector(num_shards)
        start = time.perf_counter()
        for lo in range(0, n, batch):
            hi = lo + batch
            col.ingest_batch(
                fids[lo:hi], pids[lo:hi], hops[lo:hi], digs[lo:hi]
            )
        best = min(best, time.perf_counter() - start)
        assert col.snapshot().records == n
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=200_000,
                        help="records in the workload")
    parser.add_argument("--flows", type=int, default=512,
                        help="concurrent flow population")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 4, 16],
                        help="shard counts to sweep")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=[64, 256, 1024, 4096],
                        help="batch sizes to sweep")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of-N)")
    parser.add_argument("--json", default="BENCH_ingest.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.records = min(args.records, 60_000)
        args.shards = args.shards[:2]
        args.batches = [256, 1024, 4096]

    cols = make_workload(args.records, args.flows, args.seed)
    print(f"workload: {args.records} records over {args.flows} flows "
          f"(Zipf-skewed), congestion max-aggregation query\n")
    header = ["shards", "scalar rec/s"] + [
        f"batch={b} rec/s" for b in args.batches
    ] + ["best speedup"]
    rows = []
    big_batch_speedups = []
    results = {}
    for shards in args.shards:
        scalar_s = run_scalar(shards, cols, args.repeats)
        scalar_rate = args.records / scalar_s
        cells = [str(shards), f"{scalar_rate:,.0f}"]
        shard_result = {
            "scalar_rps": round(scalar_rate),
            "batched_rps": {},
            "big_batch_speedup": 0.0,
        }
        best = 0.0
        shard_big_best = 0.0
        for batch in args.batches:
            batched_s = run_batched(shards, cols, batch, args.repeats)
            rate = args.records / batched_s
            cells.append(f"{rate:,.0f}")
            shard_result["batched_rps"][str(batch)] = round(rate)
            speedup = rate / scalar_rate
            best = max(best, speedup)
            if batch >= 1024:
                shard_big_best = max(shard_big_best, speedup)
        if shard_big_best:
            big_batch_speedups.append(shard_big_best)
        shard_result["big_batch_speedup"] = round(shard_big_best, 1)
        results[str(shards)] = shard_result
        cells.append(f"{best:.1f}x")
        rows.append(cells)

    widths = [max(len(header[i]), max(len(r[i]) for r in rows))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))

    payload = {
        "benchmark": "collector_ingest_throughput",
        "records": args.records,
        "flows": args.flows,
        "batches": args.batches,
        "seed": args.seed,
        "shards": results,
    }
    write_bench_json(args.json, payload)

    if not big_batch_speedups:
        print("\nno batch size >= 1024 swept: skipping the 5x assertion")
        return
    # Per shard count, the best batch size >= 1024 must clear 5x; the
    # minimum over shard counts is the claim's weakest configuration.
    floor = min(big_batch_speedups)
    print(f"\nbatched ingest (batch >= 1024) vs scalar: >= "
          f"{floor:.1f}x at every shard count")
    assert floor >= 5.0, (
        f"batched ingest speedup {floor:.1f}x < 5x "
        "(batch >= 1024 must amortise per-record overhead)"
    )
    print("OK: batching sustains >= 5x scalar ingest on this workload")


if __name__ == "__main__":
    main()

"""Merge per-stage bench results into one pipeline trajectory file.

The replay→collector pipeline is measured in four places:

* ``bench_replay_throughput.py``   -> ``BENCH_replay.json``   (encode)
* ``bench_collector_throughput.py``-> ``BENCH_ingest.json``   (ingest)
* ``bench_decode_throughput.py``   -> ``BENCH_decode.json``   (decode)
* ``bench_parallel_ingest.py``     -> ``BENCH_parallel.json`` (scale-out)
* ``bench_shm_transport.py``       -> ``BENCH_shm.json``      (transport)

Each file speaks its own schema; this tool flattens them into one
``BENCH_pipeline.json`` with uniform rows::

    {"stage": "encode|ingest|decode|end_to_end|parallel|transport",
     "config": "...",
     "scalar_rps": ..., "vector_rps": ..., "speedup": ...}

so the bench trajectory accumulates comparable numbers per PR (the CI
uploads all five files as one artifact).  Missing inputs are skipped
with a note -- run the stage benches first.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import argparse
import json
import os

from benchlib import write_bench_json


def _load(path: str):
    if not os.path.exists(path):
        print(f"note: {path} not found, skipping its rows")
        return None
    with open(path) as fh:
        return json.load(fh)


def _row(stage, config, scalar_rps, vector_rps, **extra):
    speedup = (
        round(vector_rps / scalar_rps, 1) if scalar_rps else None
    )
    return {
        "stage": stage,
        "config": config,
        "scalar_rps": scalar_rps,
        "vector_rps": vector_rps,
        "speedup": speedup,
        **extra,
    }


def encode_rows(replay: dict):
    """Per-scenario encode rows from the replay bench."""
    for name, r in sorted(replay.get("scenarios", {}).items()):
        yield _row(
            "encode", f"scenario={name}", r["scalar_rps"], r["vector_rps"],
        )


def ingest_rows(ingest: dict):
    """Per-shard-count ingest rows from the collector bench."""
    for shards, r in sorted(ingest.get("shards", {}).items(), key=lambda kv: int(kv[0])):
        best = max(r["batched_rps"].values()) if r["batched_rps"] else 0
        yield _row(
            "ingest", f"shards={shards}", r["scalar_rps"], best,
        )


def decode_rows(decode: dict):
    """Per-query decode rows plus the end-to-end number."""
    queries = decode.get("queries", {})
    for kind in ("path", "latency"):
        r = queries.get(kind)
        if r is None:
            continue
        best = max(r["batched_rps"].values()) if r["batched_rps"] else 0
        yield _row(
            "decode", f"query={kind}", r["scalar_rps"], best,
        )
    e2e = queries.get("end_to_end")
    if e2e is not None:
        yield _row(
            "end_to_end", f"scenario={e2e['scenario']}", None,
            e2e["e2e_rps"],
            path_decoded=e2e["path_decoded"], path_flows=e2e["path_flows"],
        )


def parallel_rows(par: dict):
    """Per-worker-count scale-out rows from the parallel bench.

    ``scalar`` here is the single-*process* batched rate (itself the
    vectorised winner of the ingest rows) -- the speedup column reads
    as cores bought, not vectorisation bought.
    """
    serial = par.get("serial_rps")
    for workers, r in sorted(
        par.get("workers", {}).items(), key=lambda kv: int(kv[0])
    ):
        yield _row(
            "parallel", f"workers={workers}", serial, r["rps"],
            cores=par.get("cores"),
        )
    transport = par.get("transport")
    if transport is not None:
        # scalar = the pipe scatter, vector = the shm ring: the
        # speedup column reads as what the ring bought over pickling.
        yield _row(
            "transport", f"shm-vs-pipe workers={transport['workers']}",
            transport["pipe_rps"], transport["shm_rps"],
            cores=par.get("cores"),
        )


def shm_rows(shm: dict):
    """Ring micro-rate and overlapped-replay rows from the shm bench."""
    ring = shm.get("ring")
    if ring is not None:
        yield _row(
            "transport", f"ring-micro slot={ring['slot_records']}",
            None, ring["rps"],
        )
    overlap = shm.get("overlap")
    if overlap is not None:
        yield _row(
            "end_to_end", "overlap=True", None, overlap["rps"],
            wall_over_busiest=overlap.get("wall_over_busiest"),
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replay", default="BENCH_replay.json")
    parser.add_argument("--ingest", default="BENCH_ingest.json")
    parser.add_argument("--decode", default="BENCH_decode.json")
    parser.add_argument("--parallel", default="BENCH_parallel.json")
    parser.add_argument("--shm", default="BENCH_shm.json")
    parser.add_argument("--json", default="BENCH_pipeline.json",
                        help="output path for the merged rows")
    args = parser.parse_args()

    rows = []
    replay = _load(args.replay)
    if replay is not None:
        rows.extend(encode_rows(replay))
    ingest = _load(args.ingest)
    if ingest is not None:
        rows.extend(ingest_rows(ingest))
    decode = _load(args.decode)
    if decode is not None:
        rows.extend(decode_rows(decode))
    parallel = _load(args.parallel)
    if parallel is not None:
        rows.extend(parallel_rows(parallel))
    shm = _load(args.shm)
    if shm is not None:
        rows.extend(shm_rows(shm))

    payload = {"benchmark": "pipeline", "rows": rows}
    width = max((len(r["config"]) for r in rows), default=10)
    for r in rows:
        scalar = f"{r['scalar_rps']:,}" if r["scalar_rps"] else "-"
        speedup = f"{r['speedup']}x" if r["speedup"] else "-"
        print(f"{r['stage']:<11} {r['config']:<{width}}  "
              f"scalar {scalar:>12} rec/s  vector {r['vector_rps']:>12,} rec/s  "
              f"{speedup}")
    write_bench_json(args.json, payload)
    print(f"({len(rows)} rows)")


if __name__ == "__main__":
    main()

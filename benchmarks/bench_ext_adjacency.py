"""Extension benchmark: topology-aware inference (beyond the paper).

The paper's Inference Module treats every hop's candidate set as the
full switch universe.  Ours can additionally exploit the network map:
consecutive path switches must be graph-adjacent, so decoding one hop
narrows its neighbours.  This bench quantifies the saving on the
Kentucky Datalink stand-in and explains most of the gap between our
plain decoder and the paper's reported Fig. 10 numbers (EXPERIMENTS.md).
"""

import random

from conftest import print_table

from repro.apps import PathTracer
from repro.net import kentucky_datalink

LENGTHS = [6, 18, 30, 42, 54]
TRIALS = 10


def generate_figure():
    topo = kentucky_datalink()
    rng = random.Random(1)
    paths = {}
    for hops in LENGTHS:
        src, dst = topo.pair_at_distance(hops, rng)
        paths[hops] = topo.switch_path(src, dst)
    out = {}
    for label, kwargs in [
        ("plain 2x(b=8)", dict(digest_bits=8, num_hashes=2)),
        ("adjacency 2x(b=8)", dict(digest_bits=8, num_hashes=2,
                                   use_adjacency=True)),
        ("plain (b=1)", dict(digest_bits=1)),
        ("adjacency (b=1)", dict(digest_bits=1, use_adjacency=True)),
    ]:
        tracer = PathTracer(topo, d=10, **kwargs)
        out[label] = {
            hops: tracer.packets_for_path(paths[hops], trials=TRIALS)
            for hops in LENGTHS
        }
    return out


def test_ext_adjacency_inference(figure):
    data = figure(generate_figure)
    rows = [
        (label, *[f"{stats[h].mean:.0f}" for h in LENGTHS])
        for label, stats in data.items()
    ]
    print_table(
        "Extension: packets to decode with/without topology adjacency",
        ["decoder", *[f"k={h}" for h in LENGTHS]],
        rows,
    )
    for bits in ("2x(b=8)", "(b=1)"):
        plain = data[f"plain {bits}"][LENGTHS[-1]].mean
        aware = data[f"adjacency {bits}"][LENGTHS[-1]].mean
        assert aware < plain, f"{bits}: adjacency did not help"
    # The 16-bit adjacency decoder approaches the paper's ~42 packets.
    assert data["adjacency 2x(b=8)"][54].mean < 80

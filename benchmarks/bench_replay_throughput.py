"""Replay throughput: scalar vs vectorized dataplane, per scenario.

For every registered replay scenario, measures:

* scalar encode -- one record at a time through the per-path
  :class:`repro.coding.PathEncoder` (the per-packet reference);
* vectorized encode -- :meth:`TraceDataplane.encode_rows` in columnar
  batches (signature-grouped array passes);
* end-to-end replay -- :class:`ReplayDriver` streaming encoded batches
  into a :class:`repro.collector.Collector`, with decode outcomes.

Writes the results as machine-readable ``BENCH_replay.json`` (consumed
by CI as an artifact) and asserts the headline claim: at batch >= 4096
the vectorized encode sustains >= 10x the scalar rate on every
scenario.

Run:  PYTHONPATH=src python benchmarks/bench_replay_throughput.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import math
import time

import numpy as np

from benchlib import write_bench_json
from repro.replay import ReplayDriver, TraceDataplane, build_trace, scenario_names


def bench_scenario(
    name: str,
    packets: int,
    batch: int,
    scalar_cap: int,
    seed: int,
    repeats: int,
) -> dict:
    """Measure one scenario; returns its JSON-ready result row."""
    trace = build_trace(name, packets=packets, seed=seed)
    rows = np.arange(len(trace), dtype=np.int64)

    # Scalar reference on a capped prefix (it is the slow side by two
    # orders of magnitude; the rate estimate converges quickly).
    dataplane = TraceDataplane(trace, seed=seed)
    scalar_rows = rows[: min(len(rows), scalar_cap)]
    scalar_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scalar_digests = dataplane.encode_scalar_rows(scalar_rows)
        scalar_s = min(scalar_s, time.perf_counter() - start)
    scalar_rate = len(scalar_rows) / scalar_s

    # Vectorized encode over the whole trace in batches.  A fresh
    # dataplane per repeat re-pays program compilation, like a fresh
    # collector per repeat in the collector bench.
    vector_s = float("inf")
    for _ in range(repeats):
        dp = TraceDataplane(trace, seed=seed)
        start = time.perf_counter()
        outs = [dp.encode_rows(rows[lo:hi]) for lo, hi in trace.batches(batch)]
        vector_s = min(vector_s, time.perf_counter() - start)
    vector_rate = len(rows) / vector_s
    # Bit-identity spot check rides along with every bench run.
    assert np.array_equal(
        np.concatenate(outs)[: len(scalar_rows)], scalar_digests
    ), f"{name}: vectorized digests diverge from scalar"

    # End-to-end: select + encode + ingest + decode bookkeeping.
    driver = ReplayDriver(batch_size=batch, seed=seed)
    report = driver.replay(trace)
    err = report.congestion_median_rel_err
    return {
        "records": len(trace),
        "flows": trace.num_flows,
        "paths": len(trace.paths),
        "scalar_rps": round(scalar_rate),
        "vector_rps": round(vector_rate),
        "speedup": round(vector_rate / scalar_rate, 1),
        "e2e_rps": round(report.records_per_sec),
        "path_flows": report.path_flows,
        "path_decoded": report.path_decoded,
        "path_accuracy": round(report.path_accuracy, 3),
        "congestion_median_rel_err": (
            None if math.isnan(err) else round(err, 4)
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=60_000,
                        help="records per scenario trace")
    parser.add_argument("--batch", type=int, default=8192,
                        help="columnar batch size (>= 4096 for the claim)")
    parser.add_argument("--scalar-cap", type=int, default=6_000,
                        help="records timed through the scalar encoder")
    parser.add_argument("--scenarios", nargs="+", default=None,
                        help="subset of scenarios (default: all registered)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of-N)")
    parser.add_argument("--json", default="BENCH_replay.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.packets = min(args.packets, 20_000)
        args.scalar_cap = min(args.scalar_cap, 2_000)
        args.repeats = min(args.repeats, 2)

    names = args.scenarios if args.scenarios else scenario_names()
    results = {}
    print(f"replay throughput: {args.packets} records/scenario, "
          f"batch={args.batch}\n")
    header = ["scenario", "scalar rec/s", "vector rec/s", "speedup",
              "e2e rec/s", "decoded", "accuracy"]
    rows = []
    for name in names:
        r = bench_scenario(name, args.packets, args.batch,
                           args.scalar_cap, args.seed, args.repeats)
        results[name] = r
        rows.append([
            name, f"{r['scalar_rps']:,}", f"{r['vector_rps']:,}",
            f"{r['speedup']}x", f"{r['e2e_rps']:,}",
            f"{r['path_decoded']}/{r['path_flows']}",
            f"{r['path_accuracy'] * 100:.0f}%",
        ])
    widths = [max(len(header[i]), max(len(r[i]) for r in rows))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))

    payload = {
        "benchmark": "replay_throughput",
        "packets": args.packets,
        "batch": args.batch,
        "seed": args.seed,
        "scenarios": results,
    }
    write_bench_json(args.json, payload)

    if args.batch >= 4096:
        floor = min(r["speedup"] for r in results.values())
        print(f"vectorized vs scalar encode: >= {floor}x on every scenario")
        assert floor >= 10.0, (
            f"vectorized speedup {floor}x < 10x at batch {args.batch}"
        )
        print("OK: vectorized dataplane sustains >= 10x scalar encode")
    else:
        print(f"batch {args.batch} < 4096: skipping the 10x assertion")


if __name__ == "__main__":
    main()

"""Fault recovery: kill a worker mid-replay, demand bit-identical answers.

Three claims ride in this benchmark:

* **Recovery is exact.**  For every registered replay scenario, a
  supervised :class:`repro.collector.ParallelCollector` whose worker 1
  is SIGKILLed mid-stream (a seeded :class:`repro.faults.FaultPlan`)
  produces a merged snapshot and per-flow query answers bit-identical
  to a serial collector fed the same batches -- checkpoint restore +
  journal replay reconstructs, it does not approximate.  The fault is
  asserted to have actually fired (``plan.fired``), so a scheduling
  change can never silently turn this into a no-fault run.

* **Degradation is graceful and honest.**  With checkpointing forced
  to fail and an undersized journal, the same kill completes without
  an exception, marks exactly the starved shards ``degraded``, and
  accounts the lost records on the snapshot.

* **Recovery costs what it costs.**  The faulted run's end-to-end
  records/sec (restore + replay included) is recorded per scenario and
  floored by ``BENCH_baseline.json`` -- a recovery path that suddenly
  dominates ingest is a regression even when it stays correct.

Writes machine-readable ``BENCH_faults.json``.

Run:  PYTHONPATH=src python benchmarks/bench_fault_recovery.py
      (--quick for the CI chaos smoke: 2 scenarios)
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from benchlib import write_bench_json
from repro.collector import Collector, ParallelCollector, path_consumer_factory
from repro.faults import FaultPlan, drop_checkpoint, kill_worker
from repro.replay import TraceDataplane, build_trace, scenario_names

WORKERS = 2
NUM_SHARDS = 8


def scenario_workload(name: str, packets: int, seed: int):
    """One scenario's encoded columns + the factory both sides share."""
    trace = build_trace(name, packets=packets, seed=seed)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=seed)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))

    def factory():
        return path_consumer_factory(
            trace.universe, digest_bits=8, num_hashes=1, seed=seed
        )

    return trace, digests, factory


def feed(col, trace, digests, batch: int) -> None:
    hops = trace.hop_counts
    for lo, hi in trace.batches(batch):
        col.ingest_batch(
            trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
            digests[lo:hi], now=float(trace.ts[hi - 1]),
        )


def check_kill_recovery(name: str, packets: int, batch: int,
                        seed: int) -> dict:
    """Kill worker 1 mid-replay; the answers must not notice."""
    trace, digests, factory = scenario_workload(name, packets, seed)
    flows = np.unique(trace.flow_id).tolist()
    serial = Collector(factory(), num_shards=NUM_SHARDS, seed=seed)
    feed(serial, trace, digests, batch)

    kill_at = max(2, (len(trace) // batch) // 2)  # mid-replay
    plan = FaultPlan([kill_worker(1, at_batch=kill_at)])
    start = time.perf_counter()
    with ParallelCollector(
        factory(), workers=WORKERS, num_shards=NUM_SHARDS, seed=seed,
        checkpoint_every=4, faults=plan,
    ) as par:
        feed(par, trace, digests, batch)
        par.drain()
        seconds = time.perf_counter() - start
        snap = par.snapshot()
        assert plan.fired, (
            f"{name}: the kill never fired (kill_at={kill_at} beyond "
            "the replay?) -- this run proves nothing"
        )
        rec = snap.recovery
        assert rec.restarts == 1, rec
        assert rec.records_lost == 0 and not snap.degraded_shards
        s_dict = serial.snapshot().as_dict()
        p_dict = snap.as_dict()
        assert s_dict == p_dict, (
            f"{name}: recovered snapshot diverges from serial: "
            + str({k: (s_dict[k], p_dict[k]) for k in s_dict
                   if s_dict[k] != p_dict[k]})
        )
        mismatches = [
            fid for fid in flows if serial.result(fid) != par.result(fid)
        ]
        assert not mismatches, (
            f"{name}: per-flow answers diverge after recovery for "
            f"flows {mismatches[:5]}..."
        )
    rate = len(trace) / seconds
    print(f"  {name:<15} {len(trace):>7} rec  kill@batch {kill_at:<3} "
          f"replayed {rec.replayed_records:>6} rec  "
          f"{rate:>10,.0f} rec/s  bit-identical")
    return {
        "records": len(trace),
        "flows": len(flows),
        "kill_at_batch": kill_at,
        "restarts": rec.restarts,
        "checkpoints_taken": rec.checkpoints_taken,
        "replayed_batches": rec.replayed_batches,
        "replayed_records": rec.replayed_records,
        "seconds": round(seconds, 4),
        "records_per_sec": round(rate),
        "fired": [list(f) for f in plan.fired],
    }


def check_degraded(name: str, packets: int, batch: int, seed: int) -> dict:
    """Undersized journal + failing checkpoints + a kill: the shard
    degrades with honest accounting instead of raising."""
    trace, digests, factory = scenario_workload(name, packets, seed)
    plan = FaultPlan([drop_checkpoint(0), kill_worker(0, at_batch=8)])
    with ParallelCollector(
        factory(), workers=WORKERS, num_shards=NUM_SHARDS, seed=seed,
        checkpoint_every=2, journal_batches=2, faults=plan,
    ) as par:
        feed(par, trace, digests, batch)
        par.drain()
        snap = par.snapshot()
        degraded = snap.degraded_shards
        assert degraded, "journal overrun produced no degraded marks"
        assert all(s % WORKERS == 0 for s in degraded), (
            "degradation leaked beyond the killed worker's shards"
        )
        assert snap.records_lost > 0
        assert snap.recovery.checkpoints_rejected > 0
        d = snap.as_dict()
        assert d["degraded_shards"] == degraded
        assert d["records_lost"] == snap.records_lost
    print(f"  {name:<15} degraded shards {degraded} "
          f"lost {snap.records_lost} records (accounted, no exception)")
    return {
        "degraded_shards": degraded,
        "records_lost": snap.records_lost,
        "checkpoints_rejected": snap.recovery.checkpoints_rejected,
        "journal_dropped_records":
            snap.recovery.journal_dropped_records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=12_000,
                        help="records per scenario")
    parser.add_argument("--batch", type=int, default=512,
                        help="columnar batch size (small on purpose: "
                        "more batches = more supervision touchpoints)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="BENCH_faults.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="CI chaos smoke: 2 scenarios, fewer records")
    args = parser.parse_args()
    names = scenario_names()
    if args.quick:
        args.packets = min(args.packets, 4_000)
        names = ["incast", "web-search"]

    print(f"fault recovery: kill worker 1 mid-replay on "
          f"{len(names)} scenario(s), {args.packets} records each, "
          f"{WORKERS} workers / {NUM_SHARDS} shards")
    scenarios = {}
    for name in names:
        scenarios[name] = check_kill_recovery(
            name, args.packets, args.batch, args.seed
        )

    print("\ndegraded recovery: failing checkpoints + journal window 2")
    degraded = check_degraded("incast", args.packets, args.batch, args.seed)

    payload = {
        "benchmark": "fault_recovery",
        "packets": args.packets,
        "batch": args.batch,
        "seed": args.seed,
        "workers": WORKERS,
        "num_shards": NUM_SHARDS,
        "quick": args.quick,
        "scenarios": scenarios,
        "degraded": degraded,
        "ok": True,
    }
    write_bench_json(args.json, payload)
    print("\nOK: recovered snapshots and per-flow answers bit-identical "
          "to serial on every scenario; journal overrun degrades with "
          "honest accounting")


if __name__ == "__main__":
    main()

"""Ablation: coding-scheme layer structures (DESIGN.md tab-coding).

Compares every scheme the paper discusses in §4.2 -- Baseline, pure
XOR, Hybrid interleave, Multi-layer (Algorithm 1), the Appendix A.3
revision, and Linear Network Coding -- on raw k-block messages, against
the Appendix A reference formulas.
"""

from conftest import print_table

from repro.analysis import (
    baseline_packets,
    lnc_packets,
    theorem3_packets,
)
from repro.coding import (
    DistributedMessage,
    LNCDecoder,
    LNCEncoder,
    baseline_scheme,
    hybrid_scheme,
    improved_multilayer_scheme,
    multilayer_scheme,
    packet_count_distribution,
    xor_scheme,
)

KS = [10, 25, 59]
TRIALS = 25


def _lnc_mean(k, trials=TRIALS):
    msg = DistributedMessage(tuple(range(1, k + 1)))
    counts = []
    for t in range(trials):
        enc, dec = LNCEncoder(msg, seed=t), LNCDecoder(k, seed=t)
        pid = 0
        while not dec.is_complete:
            pid += 1
            dec.observe(pid, enc.encode(pid))
        counts.append(pid)
    return sum(counts) / trials


def generate_figure():
    out = {}
    for k in KS:
        msg = DistributedMessage(tuple(range(1, k + 1)))
        schemes = {
            "baseline": baseline_scheme(),
            "xor(1/k)": xor_scheme(1.0 / k),
            "hybrid": hybrid_scheme(k),
            "multilayer": multilayer_scheme(k),
            "multilayer+": improved_multilayer_scheme(k),
        }
        row = {}
        for name, scheme in schemes.items():
            stats = packet_count_distribution(
                msg, scheme, trials=TRIALS, digest_bits=8, mode="raw"
            )
            row[name] = (stats.mean, stats.percentile(99))
        row["LNC"] = (_lnc_mean(k), None)
        row["theory:baseline"] = (baseline_packets(k), None)
        row["theory:thm3"] = (theorem3_packets(k), None)
        row["theory:LNC"] = (lnc_packets(k), None)
        out[k] = row
    return out


def test_ablation_layer_structures(figure):
    data = figure(generate_figure)
    for k, row in data.items():
        rows = [
            (name, f"{mean:.1f}", "-" if p99 is None else p99)
            for name, (mean, p99) in row.items()
        ]
        print_table(
            f"Ablation (k={k}): packets to decode by scheme",
            ["scheme", "mean", "p99"],
            rows,
        )
    for k, row in data.items():
        # LNC is the information-theoretic-ish floor.
        assert row["LNC"][0] <= row["baseline"][0]
        # Hybrid interleaving beats pure Baseline at k >= 25 (§4.2).
        if k >= 25:
            assert row["hybrid"][0] < row["baseline"][0]
        # Baseline simulation tracks the k*H_k coupon formula.
        theory = row["theory:baseline"][0]
        assert 0.6 * theory < row["baseline"][0] < 1.6 * theory

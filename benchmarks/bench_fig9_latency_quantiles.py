"""Figure 9: latency-quantile relative error, with and without sketches.

Row 1: error vs sample size (packets), sketch fixed at 100 digests.
Row 2: error vs sketch size (bytes), sample fixed at 500 packets.
Series: PINT / PINT_S at b = 8 and b = 4.  Shapes: error falls with
samples then plateaus at the compression floor; b = 4 plateaus higher
than b = 8; sketching costs little accuracy even at ~100B.
"""

import random

from conftest import print_table

from repro.apps import simulate_latency_estimation
from repro.sketch import relative_value_error

K = 5  # hops
SAMPLE_GRID = [200, 400, 600, 800, 1000]
SKETCH_BYTES_GRID = [100, 200, 300]
BYTES_PER_DIGEST = 4
PHI_TAIL = 0.95
PHI_MEDIAN = 0.5
TRIALS = 8


def _streams(num_packets, seed, heavy_tail=True):
    rng = random.Random(seed)
    streams = []
    for hop in range(K):
        scale = 2e-5 * (hop + 1)
        if heavy_tail:
            streams.append(
                [rng.expovariate(1.0 / scale) for _ in range(num_packets)]
            )
        else:
            streams.append(
                [abs(rng.gauss(scale, scale / 4)) for _ in range(num_packets)]
            )
    return streams


def _mean_error(bits, num_packets, phi, sketch_items, trials=TRIALS):
    errs = []
    for trial in range(trials):
        streams = _streams(num_packets, seed=trial * 71 + 3)
        out = simulate_latency_estimation(
            streams, bits=bits, num_packets=num_packets, phi=phi,
            sketch_size=sketch_items, seed=trial,
        )
        for est, truth in out.values():
            if est == est:  # skip NaN (hop with zero samples)
                errs.append(relative_value_error(truth, est))
    return 100.0 * sum(errs) / len(errs)


def generate_figure():
    out = {"vs_samples": {}, "vs_sketch": {}}
    sketch_100 = 100
    for bits in (8, 4):
        for sketched in (False, True):
            label = f"PINT{'S' if sketched else ''}(b={bits})"
            series = [
                (
                    n,
                    _mean_error(
                        bits, n, PHI_TAIL, sketch_100 if sketched else None
                    ),
                )
                for n in SAMPLE_GRID
            ]
            out["vs_samples"][label] = series
    for bits in (8, 4):
        series = [
            (
                nbytes,
                _mean_error(
                    bits, 500, PHI_TAIL, max(8, nbytes // BYTES_PER_DIGEST)
                ),
            )
            for nbytes in SKETCH_BYTES_GRID
        ]
        out["vs_sketch"][f"PINTS(b={bits})"] = series
    out["median_b8"] = _mean_error(8, 1000, PHI_MEDIAN, None)
    return out


def test_fig9_latency_quantiles(figure):
    data = figure(generate_figure)
    rows = [
        (label, *[f"{err:.1f}" for _, err in series])
        for label, series in data["vs_samples"].items()
    ]
    print_table(
        "Fig 9 row 1: tail-latency relative error [%] vs sample size",
        ["series", *[str(n) for n in SAMPLE_GRID]],
        rows,
    )
    rows = [
        (label, *[f"{err:.1f}" for _, err in series])
        for label, series in data["vs_sketch"].items()
    ]
    print_table(
        "Fig 9 row 2: tail-latency relative error [%] vs sketch bytes",
        ["series", *[str(b) + "B" for b in SKETCH_BYTES_GRID]],
        rows,
    )
    print(f"median (b=8, 1000 pkts) error: {data['median_b8']:.1f}%")

    vs = data["vs_samples"]
    # Error shrinks (or plateaus) as samples grow.
    for label, series in vs.items():
        assert series[-1][1] <= series[0][1] * 1.3, label
    # b=4 floors higher than b=8 at large sample counts.
    assert vs["PINT(b=4)"][-1][1] >= vs["PINT(b=8)"][-1][1] * 0.9
    # Sketching at 100 digests costs little vs unsketched.
    assert vs["PINTS(b=8)"][-1][1] <= vs["PINT(b=8)"][-1][1] + 15.0
    # Converged b=8 error is small (paper: converges near compression floor).
    assert vs["PINT(b=8)"][-1][1] < 25.0

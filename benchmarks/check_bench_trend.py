"""CI perf-trend tracker: compare against the previous run, keep history.

The regression gate (``check_bench_regression.py``) answers "did we
fall below the committed floor?"; this tool answers the question the
floor cannot: "which way are we drifting, run over run?".  It loads
the same ``BENCH_*.json`` artifacts and committed floors, then

* prints a PR-comment-style table per gated metric -- current value,
  floor, and the *previous* run's value with the delta -- so a perf
  change is visible in the job log long before it erodes down to the
  floor, and
* appends one JSON line to ``BENCH_history.jsonl`` (sha, ref,
  timestamp, all gated metrics), which CI persists across runs via
  ``actions/cache`` and uploads as an artifact: the trend file is the
  raw material for "when did ingest get 20% slower?" archaeology.

The trend itself never fails the job (runner-to-runner variance would
make it flaky); only the floor gate fails builds.  Exit is non-zero
solely for operational errors (missing baseline, malformed history).

Run:  PYTHONPATH=src python benchmarks/check_bench_trend.py
      (after the --quick smokes; typically followed by committing or
      caching BENCH_history.jsonl)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from benchlib import compare_bench


def load_history(path: str) -> list:
    """Parse the history file, skipping lines that do not parse.

    A half-written line (cache restored mid-append, disk full) must
    not wedge every future run; bad lines are reported and dropped.
    """
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                print(f"note: {path}:{lineno} is not valid JSON, skipping")
                continue
            if isinstance(entry, dict) and "metrics" in entry:
                entries.append(entry)
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed floors file")
    parser.add_argument("--artifacts-dir", default=".",
                        help="directory the BENCH_*.json artifacts are in")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="append-only trend file (cached across CI runs)")
    parser.add_argument("--no-append", action="store_true",
                        help="report only; leave the history file untouched")
    args = parser.parse_args()

    with open(args.baseline) as fh:
        baseline = json.load(fh)

    payloads = {}
    for fname in baseline.get("floors", {}):
        path = os.path.join(args.artifacts_dir, fname)
        if os.path.exists(path):
            with open(path) as fh:
                payloads[fname] = json.load(fh)

    _, checked = compare_bench(payloads, baseline)
    if not checked:
        print("no gated metrics found -- run the --quick smokes first")
        return 1

    history = load_history(args.history)
    previous = history[-1] if history else None
    prev_metrics = previous["metrics"] if previous else {}
    prev_sha = previous.get("sha", "?")[:12] if previous else None

    if previous is None:
        print("perf trend: no previous run on record "
              f"(empty or missing {args.history})\n")
    else:
        print(f"perf trend: comparing against previous run {prev_sha} "
              f"({len(history)} run(s) on record)\n")

    width = max(len(f"{f}:{p}") for f, p, *_ in checked)
    header = (f"  {'metric':<{width}}  {'current':>14}  {'floor':>12}  "
              f"{'previous':>14}  {'delta':>8}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    metrics = {}
    for fname, dotted, value, floor, _gate in checked:
        key = f"{fname}:{dotted}"
        metrics[key] = value
        prev = prev_metrics.get(key)
        if prev:
            delta = (value - prev) / prev
            prev_s, delta_s = f"{prev:>14,.0f}", f"{delta:>+7.1%}"
        else:
            prev_s, delta_s = f"{'-':>14}", f"{'-':>8}"
        print(f"  {key:<{width}}  {value:>14,.0f}  {floor:>12,.0f}  "
              f"{prev_s}  {delta_s}")

    if args.no_append:
        print("\n--no-append: history file left untouched")
        return 0

    entry = {
        "sha": os.environ.get("GITHUB_SHA", "local"),
        "ref": os.environ.get("GITHUB_REF_NAME", ""),
        "ts": int(time.time()),
        "metrics": metrics,
    }
    with open(args.history, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"\nappended run {entry['sha'][:12]} to {args.history} "
          f"({len(history) + 1} run(s) on record)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

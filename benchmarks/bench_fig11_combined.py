"""Figure 11: three concurrent queries under one 16-bit global budget.

The paper's §6.4 configuration: path tracing on every packet (8 bits),
latency on 15/16 of packets (8 bits), HPCC on 1/16 (8 bits) -- packed
two-per-packet by the Query Engine.  Baseline: each query alone with the
full 16 bits.  Shapes: combined path tracing needs only slightly more
packets than alone; latency error grows marginally; HPCC at p = 1/16
stays close to running alone.
"""

import random

from conftest import print_table

from repro.apps import LatencyRuntime, PathTracingRuntime
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    PlanEntry,
    Query,
    QueryEngine,
)
from repro.core.plan import ExecutionPlan
from repro.net import fat_tree
from repro.sim import hadoop_cdf, run_hpcc_experiment
from repro.sketch import exact_quantile, relative_value_error

FLOWS = 12
MAX_PACKETS = 3000
PHI = 0.95


def _queries():
    path_q = Query("path", MetadataType.SWITCH_ID,
                   AggregationType.STATIC_PER_FLOW, 8, frequency=1.0)
    lat_q = Query("lat", MetadataType.HOP_LATENCY,
                  AggregationType.DYNAMIC_PER_FLOW, 8, frequency=15 / 16)
    cc_q = Query("cc", MetadataType.EGRESS_TX_UTILIZATION,
                 AggregationType.PER_PACKET, 8, frequency=1 / 16)
    return path_q, lat_q, cc_q


def _drive(framework, path_rt, lat_rt, topo, seed):
    """Push packets for FLOWS flows; return per-flow decode counts and
    per-(flow, hop) latency truth streams."""
    rng = random.Random(seed)
    decode_at = {}
    truths = {}
    pid = 0
    for flow_id in range(1, FLOWS + 1):
        src, dst = topo.random_host_pair(rng)
        path = topo.switch_path(src, dst)
        scales = [rng.uniform(1e-5, 1e-4) for _ in path]
        stream = {h: [] for h in range(1, len(path) + 1)}
        done = None
        for n in range(1, MAX_PACKETS + 1):
            pid += 1
            hops = []
            for i, sid in enumerate(path):
                lat = rng.expovariate(1.0 / scales[i])
                stream[i + 1].append(lat)
                hops.append(HopView(switch_id=sid, hop_number=i + 1,
                                    hop_latency=lat))
            framework.process_packet(
                PacketContext(pid, flow_id, len(path)), hops
            )
            if done is None and path_rt.flow_path(flow_id) == path:
                done = n
        decode_at[flow_id] = done
        truths[flow_id] = stream
    return decode_at, truths


def _latency_errors(lat_rt, truths):
    errs = []
    for flow_id, stream in truths.items():
        for hop, values in stream.items():
            try:
                est = lat_rt.quantile(flow_id, hop, PHI)
            except KeyError:
                continue
            errs.append(relative_value_error(exact_quantile(values, PHI), est))
    return 100.0 * sum(errs) / len(errs)


def generate_figure():
    topo = fat_tree(4)
    universe = topo.switch_universe()
    path_q, lat_q, cc_q = _queries()

    # Combined: the paper's manual plan under a 16-bit global budget.
    plan = QueryEngine(16).compile([path_q, lat_q, cc_q])
    combined_fw = PINTFramework(plan)
    path_rt = PathTracingRuntime(path_q, universe, d=5)
    lat_rt = LatencyRuntime(lat_q)
    from repro.apps import CongestionRuntime
    combined_fw.register(path_rt)
    combined_fw.register(lat_rt)
    combined_fw.register(CongestionRuntime(cc_q))
    decode_combined, truths = _drive(combined_fw, path_rt, lat_rt, topo, seed=5)
    lat_err_combined = _latency_errors(lat_rt, truths)

    # Baselines: each query alone with the full 16 bits.
    path16 = Query("path", MetadataType.SWITCH_ID,
                   AggregationType.STATIC_PER_FLOW, 16, frequency=1.0)
    alone_fw = PINTFramework(ExecutionPlan([PlanEntry((path16,), 1.0)], 16))
    path_alone = PathTracingRuntime(path16, universe, d=5, num_hashes=2)
    lat16 = Query("lat", MetadataType.HOP_LATENCY,
                  AggregationType.DYNAMIC_PER_FLOW, 16, frequency=1.0)
    lat_alone_fw = PINTFramework(ExecutionPlan([PlanEntry((lat16,), 1.0)], 16))
    lat_alone = LatencyRuntime(lat16)
    alone_fw.register(path_alone)
    lat_alone_fw.register(lat_alone)
    decode_alone, _ = _drive(alone_fw, path_alone,
                             LatencyRuntime(Query("x", MetadataType.HOP_LATENCY,
                                                  AggregationType.DYNAMIC_PER_FLOW, 8)),
                             topo, seed=5)
    _, truths_alone = (None, None)
    # latency alone on the same traffic:
    decode_dummy, truths2 = _drive(lat_alone_fw,
                                   _NullPath(), lat_alone, topo, seed=5)
    lat_err_alone = _latency_errors(lat_alone, truths2)

    # HPCC: alone (16-bit digest, p=1/16) vs combined (8-bit, p=1/16).
    cdf = hadoop_cdf(0.01)
    sim = dict(duration=0.25, max_flows=80, link_rate_bps=100e6, k=4)
    hpcc = {}
    for label, bits in (("alone", 16), ("combined", 8)):
        res = run_hpcc_experiment(
            "pint", load=0.5, cdf=cdf, pint_frequency=1 / 16, seed=19, **sim
        )
        hpcc[label] = res.mean_slowdown()

    mean_combined = sum(v for v in decode_combined.values() if v) / FLOWS
    mean_alone = sum(v for v in decode_alone.values() if v) / FLOWS
    return {
        "path": {"alone": mean_alone, "combined": mean_combined},
        "latency_err": {"alone": lat_err_alone, "combined": lat_err_combined},
        "hpcc_slowdown": hpcc,
    }


class _NullPath:
    """Stand-in path runtime when only latency is measured."""

    def flow_path(self, flow_id):
        return None


def test_fig11_combined(figure):
    data = figure(generate_figure)
    print_table(
        "Fig 11: each query alone (16b) vs combined (16b shared)",
        ["metric", "alone", "combined"],
        [
            ("path packets (mean)",
             f"{data['path']['alone']:.1f}", f"{data['path']['combined']:.1f}"),
            ("tail latency err [%]",
             f"{data['latency_err']['alone']:.1f}",
             f"{data['latency_err']['combined']:.1f}"),
            ("HPCC mean slowdown",
             f"{data['hpcc_slowdown']['alone']:.2f}",
             f"{data['hpcc_slowdown']['combined']:.2f}"),
        ],
    )
    # All flows' paths decoded in both settings.
    assert data["path"]["alone"] > 0 and data["path"]["combined"] > 0
    # Combined path tracing needs no more than ~2.5x the alone packets
    # (paper: +0.5%; we allow the full budget-halving penalty band).
    assert data["path"]["combined"] < data["path"]["alone"] * 2.5
    # Latency error increases only modestly (paper: +0.7 points).
    assert data["latency_err"]["combined"] < data["latency_err"]["alone"] + 15.0
    # HPCC stays comparable.
    ratio = data["hpcc_slowdown"]["combined"] / data["hpcc_slowdown"]["alone"]
    assert 0.8 < ratio < 1.3

"""CI bench-regression gate: fail when a smoke regresses below floor.

Loads the committed ``BENCH_baseline.json`` (records/sec floors per
pipeline stage, recorded from a known-good ``--quick`` run) and the
``BENCH_*.json`` artifacts the preceding smoke steps just wrote, then
fails the job when any gated metric fell more than ``tolerance``
(default 40%) below its floor.  This replaces "assert a fixed speedup
ratio" as the only throughput guard: ratios catch a stage falling
behind its scalar twin, floors catch the whole pipeline quietly
getting slower release over release.

The baseline schema::

    {"tolerance": 0.4,
     "floors": {"BENCH_replay.json": {"scenarios.web-search.vector_rps": 120000,
                                      ...},
                ...}}

Floors are intentionally far below typical rates (roughly known-good /
5) so hosted-runner variance never trips the gate; re-record them only
when a deliberate change moves a stage's floor.

Run:  PYTHONPATH=src python benchmarks/check_bench_regression.py
      (after running the --quick smokes that produce the artifacts)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchlib import compare_bench


def find_speedup_legs(payload, prefix=""):
    """Yield ``(dotted_path, asserted, skip_reason)`` for every
    speedup-bearing sub-dict, however deeply nested.

    The benches self-gate their speedup assertions on usable cores and
    record the outcome as a uniform ``speedup_asserted`` /
    ``speedup_skip_reason`` pair; this walk finds them all so the gate
    can refuse a "green" run whose speedup bars never actually armed
    (e.g. a misconfigured runner with 1 visible core).
    """
    if not isinstance(payload, dict):
        return
    if "speedup_asserted" in payload:
        yield (prefix or ".", bool(payload["speedup_asserted"]),
               payload.get("speedup_skip_reason"))
    for key, value in payload.items():
        sub = f"{prefix}.{key}" if prefix else key
        yield from find_speedup_legs(value, sub)


def check_speedup_legs(payloads: dict):
    """Failure strings for skipped/absent speedup legs (for --require-speedup)."""
    failures, found = [], 0
    for fname, payload in sorted(payloads.items()):
        for path, asserted, reason in find_speedup_legs(payload):
            found += 1
            status = "asserted" if asserted else f"SKIPPED ({reason})"
            print(f"  speedup leg {fname}:{path}  {status}")
            if not asserted:
                failures.append(
                    f"{fname}: speedup leg {path} skipped: {reason}"
                )
    if found == 0:
        failures.append(
            "no speedup legs found in any artifact -- the benches no "
            "longer emit speedup_asserted, or none were run"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed floors file")
    parser.add_argument("--artifacts-dir", default=".",
                        help="directory the BENCH_*.json artifacts are in")
    parser.add_argument("--require-speedup", action="store_true",
                        help="fail when any speedup assertion was skipped "
                        "(CI runners have the cores; a skip there means "
                        "the leg silently stopped measuring)")
    args = parser.parse_args()

    with open(args.baseline) as fh:
        baseline = json.load(fh)

    payloads = {}
    for fname in baseline.get("floors", {}):
        path = os.path.join(args.artifacts_dir, fname)
        if os.path.exists(path):
            with open(path) as fh:
                payloads[fname] = json.load(fh)

    failures, checked = compare_bench(payloads, baseline)

    tolerance = baseline.get("tolerance", 0.4)
    print(f"bench-regression gate: {len(checked)} metrics, "
          f"tolerance {tolerance:.0%} below floor\n")
    width = max((len(f"{f}:{p}") for f, p, *_ in checked), default=20)
    for fname, dotted, value, floor, gate in checked:
        status = "ok  " if value >= gate else "FAIL"
        print(f"  {status} {f'{fname}:{dotted}':<{width}}  "
              f"value {value:>12,.0f}  floor {floor:>12,.0f}  "
              f"gate {gate:>12,.0f}")

    if args.require_speedup:
        print()
        failures += check_speedup_legs(payloads)

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nOK: no gated metric regressed below its floor"
          + (" and every speedup leg armed" if args.require_speedup else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI bench-regression gate: fail when a smoke regresses below floor.

Loads the committed ``BENCH_baseline.json`` (records/sec floors per
pipeline stage, recorded from a known-good ``--quick`` run) and the
``BENCH_*.json`` artifacts the preceding smoke steps just wrote, then
fails the job when any gated metric fell more than ``tolerance``
(default 40%) below its floor.  This replaces "assert a fixed speedup
ratio" as the only throughput guard: ratios catch a stage falling
behind its scalar twin, floors catch the whole pipeline quietly
getting slower release over release.

The baseline schema::

    {"tolerance": 0.4,
     "floors": {"BENCH_replay.json": {"scenarios.web-search.vector_rps": 120000,
                                      ...},
                ...}}

Floors are intentionally far below typical rates (roughly known-good /
5) so hosted-runner variance never trips the gate; re-record them only
when a deliberate change moves a stage's floor.

Run:  PYTHONPATH=src python benchmarks/check_bench_regression.py
      (after running the --quick smokes that produce the artifacts)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchlib import compare_bench


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed floors file")
    parser.add_argument("--artifacts-dir", default=".",
                        help="directory the BENCH_*.json artifacts are in")
    args = parser.parse_args()

    with open(args.baseline) as fh:
        baseline = json.load(fh)

    payloads = {}
    for fname in baseline.get("floors", {}):
        path = os.path.join(args.artifacts_dir, fname)
        if os.path.exists(path):
            with open(path) as fh:
                payloads[fname] = json.load(fh)

    failures, checked = compare_bench(payloads, baseline)

    tolerance = baseline.get("tolerance", 0.4)
    print(f"bench-regression gate: {len(checked)} metrics, "
          f"tolerance {tolerance:.0%} below floor\n")
    width = max((len(f"{f}:{p}") for f, p, *_ in checked), default=20)
    for fname, dotted, value, floor, gate in checked:
        status = "ok  " if value >= gate else "FAIL"
        print(f"  {status} {f'{fname}:{dotted}':<{width}}  "
              f"value {value:>12,.0f}  floor {floor:>12,.0f}  "
              f"gate {gate:>12,.0f}")

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nOK: no gated metric regressed below its floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())

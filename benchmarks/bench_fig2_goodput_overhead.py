"""Figure 2: normalized goodput of long flows vs per-packet overhead.

Paper: goodput of >10MB web-search flows degrades as overhead grows,
especially at 70% load (~20% loss at 108B).  Scaled workload: the
"long flow" threshold scales with the size scale.
"""

from conftest import print_table

from repro.sim import run_overhead_experiment, web_search_cdf

OVERHEADS = [0, 28, 68, 108]
LOADS = [0.30, 0.70]
SCALE = 0.01
LONG_FLOW_BYTES = int(10_000_000 * SCALE)

_SIM = dict(duration=0.4, max_flows=150, link_rate_bps=100e6, k=4)


def generate_figure():
    cdf = web_search_cdf(scale=SCALE)
    data = {}
    for load in LOADS:
        base = None
        series = []
        for overhead in OVERHEADS:
            res = run_overhead_experiment(
                overhead_bytes=overhead, load=load, cdf=cdf, seed=7, **_SIM
            )
            goodput = res.goodput_of_large(LONG_FLOW_BYTES)
            if base is None:
                base = goodput
            series.append((overhead, goodput / base))
        data[load] = series
    return data


def test_fig2_goodput_vs_overhead(figure):
    data = figure(generate_figure)
    rows = [
        (f"{load:.0%}", overhead, f"{norm:.3f}")
        for load, series in data.items()
        for overhead, norm in series
    ]
    print_table(
        "Fig 2: normalized long-flow goodput vs overhead (bytes)",
        ["load", "overhead_B", "norm_goodput"],
        rows,
    )
    for load, series in data.items():
        # Shape: goodput at max overhead must not exceed the baseline.
        assert series[-1][1] <= 1.02, f"load {load}: goodput rose with overhead"

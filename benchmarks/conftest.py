"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one paper figure: it runs the experiment
once (rounds=1 -- these are simulations, not microbenchmarks), prints
the same rows/series the paper plots, and asserts the qualitative
shape (who wins, direction of trends).  See EXPERIMENTS.md for the
paper-vs-measured record.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def figure(benchmark):
    """Fixture: call ``figure(fn, *args)`` to time one figure build."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def print_table(title, header, rows):
    """Render one figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

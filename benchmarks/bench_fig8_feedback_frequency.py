"""Figure 8: PINT-HPCC with query frequency p = 1, 1/16, 1/256.

Paper shape: p = 1/16 performs nearly identically to p = 1 (there are
still several feedback packets per RTT); p = 1/256 degrades short flows
noticeably (feedback slower than an RTT).
"""

from conftest import print_table

from repro.sim import hadoop_cdf, run_hpcc_experiment, web_search_cdf
from repro.sim.workload import HADOOP_DECILES, WEB_SEARCH_DECILES

SCALE = 0.01
FREQUENCIES = [1.0, 1.0 / 16, 1.0 / 256]
_SIM = dict(duration=0.3, max_flows=120, link_rate_bps=100e6, k=4)


def generate_figure():
    workloads = {
        "web-search": (web_search_cdf(SCALE), WEB_SEARCH_DECILES),
        "hadoop": (hadoop_cdf(SCALE), HADOOP_DECILES),
    }
    out = {}
    for name, (cdf, deciles) in workloads.items():
        buckets = sorted({max(1, int(s * SCALE)) for s, _ in deciles})
        per_p = {}
        for freq in FREQUENCIES:
            res = run_hpcc_experiment(
                "pint", load=0.5, cdf=cdf, pint_frequency=freq, seed=17, **_SIM
            )
            per_p[freq] = {
                "p95_by_bucket": res.slowdown_p95_by_bucket(buckets),
                "mean": res.mean_slowdown(),
                "p95": res.slowdown_p95(),
            }
        out[name] = per_p
    return out


def test_fig8_feedback_frequency(figure):
    data = figure(generate_figure)
    for name, per_p in data.items():
        rows = [
            (f"1/{round(1/freq)}" if freq < 1 else "1",
             f"{stats['mean']:.2f}", f"{stats['p95']:.2f}")
            for freq, stats in per_p.items()
        ]
        print_table(
            f"Fig 8 ({name}): slowdown vs PINT query frequency p",
            ["p", "mean_slowdown", "p95_slowdown"],
            rows,
        )
    for name, per_p in data.items():
        full, sixteenth, tiny = (per_p[f] for f in FREQUENCIES)
        # p = 1/16 stays close to p = 1.
        assert sixteenth["mean"] < full["mean"] * 1.3, name
        # p = 1/256 must not be better than p = 1/16 (degradation shape).
        assert tiny["mean"] >= sixteenth["mean"] * 0.9, name

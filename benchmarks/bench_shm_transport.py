"""Shared-memory ring transport: slot micro-rate, fallback identity,
overlapped replay.

Three legs, one artifact (``BENCH_shm.json``):

* **Ring micro.**  Raw :class:`repro.collector.shm.ShmRing` slot
  throughput, producer and consumer in one process: push a batch,
  peek/advance it, repeat.  No pickling, no syscalls -- this is the
  ceiling the parallel scatter converges to and the floor the
  regression gate watches.
* **Fallback identity.**  A ring sized *below* every batch forces the
  whole stream through the pipe fallback (_SIDE + tombstone
  ordering); the merged snapshot must stay bit-identical to serial.
  Runs on any machine -- it is a correctness leg, not a timing leg.
* **Overlapped replay.**  :class:`repro.replay.ReplayDriver` with
  ``overlap=True``: encode of batch k+1 concurrent with ingest of
  batch k.  With >= 2 usable cores the wall clock must land within
  4x the busiest stage's busy time (the staged pipeline's "no stage
  waits for the whole loop" bar); on fewer cores the leg still runs
  and records ``speedup_skip_reason`` so the CI gate can tell
  "passed" from "never ran".

Run:  PYTHONPATH=src python benchmarks/bench_shm_transport.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from benchlib import write_bench_json
from repro.collector import (
    Collector,
    ParallelCollector,
    congestion_consumer_factory,
)
from repro.collector.shm import ShmRing
from repro.replay import ReplayDriver, build_trace


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def bench_ring_micro(args) -> dict:
    """Single-process push -> peek -> advance rate over one ring."""
    ring = ShmRing.create(slots=args.ring_slots,
                          slot_records=args.ring_records)
    try:
        rng = np.random.default_rng(args.seed)
        n = args.ring_records
        fids = rng.integers(1, 64, n).astype(np.int64)
        pids = np.arange(1, n + 1, dtype=np.int64)
        hops = rng.integers(2, 7, n).astype(np.int64)
        digs = rng.integers(0, 256, n).astype(np.int64)
        best = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            for i in range(args.ring_batches):
                ring.try_push(fids, pids, hops, digs, t=float(i))
                slot = ring.peek()
                assert slot is not None
                ring.advance()
                # Views must not outlive the loop: close() cannot
                # unmap while any slot view is still referenced.
                slot = None
            best = min(best, time.perf_counter() - start)
        records = args.ring_batches * n
        rate = records / best
        print(f"ring micro: {args.ring_batches} x {n}-record slots   "
              f"{rate:>14,.0f} rec/s")
        return {
            "slots": args.ring_slots,
            "slot_records": n,
            "batches": args.ring_batches,
            "rps": round(rate),
        }
    finally:
        ring.close()
        ring.unlink()


def bench_fallback_identity(args) -> dict:
    """Tiny ring -> every batch takes the pipe fallback; must match serial."""
    rng = np.random.default_rng(args.seed)
    n = args.fallback_records
    cols = (
        rng.integers(1, 50, n),
        np.arange(1, n + 1),
        rng.integers(2, 7, n),
        rng.integers(0, 256, n),
    )
    factory = lambda: congestion_consumer_factory(seed=args.seed)
    serial = Collector(factory(), num_shards=8, seed=args.seed)
    batch = 500
    with ParallelCollector(
        factory(), workers=2, num_shards=8, seed=args.seed,
        transport="shm", ring_records=16,  # < batch: all fallback
    ) as par:
        now = 0.0
        for lo in range(0, n, batch):
            hi = min(lo + batch, n)
            now += 1.0
            for col in (serial, par):
                col.ingest_batch(cols[0][lo:hi], cols[1][lo:hi],
                                 cols[2][lo:hi], cols[3][lo:hi], now=now)
        par.drain()
        identical = par.snapshot().as_dict() == serial.snapshot().as_dict()
    assert identical, (
        "pipe-fallback stream diverged from serial (the _SIDE/tombstone "
        "ordering protocol is broken)"
    )
    print(f"fallback identity: {n} records, ring_records=16 < batch={batch} "
          "-- bit-identical to serial")
    return {"records": n, "batch": batch, "ring_records": 16, "ok": True}


def bench_overlapped_replay(args, cores: int) -> dict:
    """Overlap=True replay: wall clock within 4x the busiest stage."""
    trace = build_trace("incast", packets=args.packets, seed=args.seed)
    driver = ReplayDriver(batch_size=args.batch, seed=args.seed,
                          overlap=True)
    report = driver.replay(trace)
    stages = dict(report.stage_seconds)
    busiest_stage, busiest = max(stages.items(), key=lambda kv: kv[1])
    ratio = report.seconds / busiest if busiest > 0 else float("inf")
    enforce = cores >= 2
    rate = report.records_per_sec
    print(f"overlapped replay: {report.records} records  "
          f"{rate:>12,.0f} rec/s  wall {report.seconds:.3f}s  "
          f"busiest stage {busiest_stage} {busiest:.3f}s  "
          f"ratio {ratio:.2f}x"
          + ("" if enforce else "  (assertion skipped: too few cores)"))
    if enforce:
        assert ratio <= 4.0, (
            f"overlapped replay wall clock {report.seconds:.3f}s is "
            f"{ratio:.2f}x the busiest stage ({busiest_stage}, "
            f"{busiest:.3f}s); the staged pipeline should keep the wall "
            "clock within 4x of its slowest stage"
        )
    return {
        "packets": args.packets,
        "batch": args.batch,
        "rps": round(rate),
        "seconds": report.seconds,
        "busiest_stage": busiest_stage,
        "busiest_stage_seconds": busiest,
        "wall_over_busiest": None if busiest <= 0 else round(ratio, 2),
        "stage_seconds": stages,
        "speedup_asserted": enforce,
        "speedup_skip_reason": (
            None if enforce else
            f"only {cores} usable core(s) < 2 (overlap needs a second "
            "core to mean anything)"
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ring-slots", type=int, default=8)
    parser.add_argument("--ring-records", type=int, default=16384,
                        help="records per ring slot in the micro leg")
    parser.add_argument("--ring-batches", type=int, default=200,
                        help="slots pushed+consumed per micro repeat")
    parser.add_argument("--fallback-records", type=int, default=20_000,
                        help="records in the fallback-identity leg")
    parser.add_argument("--packets", type=int, default=60_000,
                        help="trace packets in the overlapped-replay leg")
    parser.add_argument("--batch", type=int, default=2048,
                        help="replay batch size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of-N)")
    parser.add_argument("--json", default="BENCH_shm.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.ring_batches = min(args.ring_batches, 60)
        args.fallback_records = min(args.fallback_records, 8_000)
        args.packets = min(args.packets, 20_000)
        args.repeats = min(args.repeats, 2)

    cores = usable_cores()
    print(f"shm transport bench: {cores} usable cores\n")

    ring = bench_ring_micro(args)
    fallback = bench_fallback_identity(args)
    overlap = bench_overlapped_replay(args, cores)

    payload = {
        "benchmark": "shm_transport",
        "seed": args.seed,
        "cores": cores,
        "ring": ring,
        "fallback": fallback,
        "overlap": overlap,
    }
    write_bench_json(args.json, payload)
    print("\nOK: ring micro measured, fallback bit-identical, overlapped "
          "replay "
          + ("within 4x of its busiest stage"
             if overlap["speedup_asserted"] else "measured (bar skipped)"))


if __name__ == "__main__":
    main()

"""Observability overhead: instrumented collectors must be free-ish.

Two claims ride in this benchmark:

* **Identity.**  For every registered replay scenario, a collector
  carrying a live :class:`repro.obs.MetricsRegistry` and a bare one
  fed the identical encoded batches produce a bit-identical snapshot
  (``Snapshot.as_dict()`` -- metrics ride outside the comparable
  payload by design) and bit-identical per-flow query answers.  A
  :class:`ReplayDriver` with ``obs=`` must likewise reproduce every
  deterministic report field of the plain driver, and its report must
  carry a non-empty per-stage time breakdown that accounts for the
  replay wall clock.  Observation must never change the observed.

* **Overhead.**  On the decode-heavy path workload the instrumented
  ``ingest_batch`` path stays within ``--ceiling`` (default 5%) of
  the uninstrumented rate.  Timing is interleaved (bare, instrumented,
  bare, ...) and best-of-N so the gate measures instrumentation, not
  scheduler luck.  The registry is *enabled* during the timed runs --
  a null-registry run would gate the fast path we do not ship.

Writes machine-readable ``BENCH_obs.json`` (uploaded by CI next to
the other bench artifacts).

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py
      (--quick for the CI smoke run)
"""

from __future__ import annotations

import argparse
import math
import time

import numpy as np

from benchlib import make_path_workload, write_bench_json
from repro.collector import Collector, path_consumer_factory
from repro.obs import MetricsRegistry, render_prometheus
from repro.replay import ReplayDriver, TraceDataplane, build_trace, scenario_names

#: ScenarioReport fields that must not move when a registry is attached.
DETERMINISTIC_FIELDS = (
    "records", "flows", "batches", "path_records", "path_flows",
    "path_decoded", "path_correct", "path_resets",
    "congestion_records", "congestion_flows", "dropped_records",
    "duplicated_records", "reordered_records",
    "path_completed_under_loss",
)


def check_scenario_identity(
    name: str, packets: int, batch: int, seed: int
) -> dict:
    """Instrumented vs bare on one scenario trace: must be bit-identical."""
    trace = build_trace(name, packets=packets, seed=seed)
    dataplane = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=seed)
    digests = dataplane.encode_rows(np.arange(len(trace), dtype=np.int64))
    hops = trace.hop_counts
    factory = lambda: path_consumer_factory(
        trace.universe, digest_bits=8, num_hashes=1, seed=seed
    )

    def feed(obs) -> Collector:
        col = Collector(factory(), num_shards=4, seed=seed, obs=obs)
        for lo in range(0, len(trace), batch):
            hi = min(lo + batch, len(trace))
            col.ingest_batch(
                trace.flow_id[lo:hi], trace.pid[lo:hi], hops[lo:hi],
                digests[lo:hi], now=float(trace.ts[hi - 1]),
            )
        return col

    bare = feed(None)
    obs = MetricsRegistry()
    wired = feed(obs)
    b_snap = bare.snapshot().as_dict()
    w_snap = wired.snapshot().as_dict()
    assert b_snap == w_snap, (
        f"{name}: instrumented snapshot diverges from bare: "
        + str({k: (b_snap[k], w_snap[k]) for k in b_snap
               if b_snap[k] != w_snap[k]})
    )
    flows = np.unique(trace.flow_id).tolist()
    mismatch = [f for f in flows if bare.result(f) != wired.result(f)]
    assert not mismatch, (
        f"{name}: per-flow answers diverge under instrumentation for "
        f"flows {mismatch[:5]}..."
    )
    # The registry actually saw the work (it was not a silent null).
    fams = obs.as_dict()["families"]
    counted = sum(
        s["value"] for s in fams["pint_collector_records_total"]["samples"]
    )
    assert counted == len(trace), (
        f"{name}: registry counted {counted} records, ingested {len(trace)}"
    )
    # And the export path holds: the dump renders as Prometheus text.
    assert "pint_collector_records_total" in render_prometheus(obs)

    plain_r = ReplayDriver(batch_size=batch, seed=seed).replay(trace)
    obs_r = ReplayDriver(
        batch_size=batch, seed=seed, obs=MetricsRegistry()
    ).replay(trace)
    for field in DETERMINISTIC_FIELDS:
        assert getattr(plain_r, field) == getattr(obs_r, field), (
            f"{name}: driver report field {field!r} diverges under "
            "instrumentation"
        )
    s_err, o_err = (
        plain_r.congestion_median_rel_err, obs_r.congestion_median_rel_err
    )
    assert s_err == o_err or (math.isnan(s_err) and math.isnan(o_err))

    # Stage breakdown: present on every report (obs or not), covers the
    # pipeline stages, and its parts do not exceed the whole.
    stages = dict(obs_r.stage_seconds)
    for stage in ("select", "encode", "ingest", "decode"):
        assert stage in stages, f"{name}: stage {stage!r} missing from report"
    assert all(v >= 0.0 for v in stages.values())
    assert sum(stages.values()) <= obs_r.seconds * 1.5 + 0.05, (
        f"{name}: stage breakdown {sum(stages.values()):.4f}s wildly "
        f"exceeds replay wall clock {obs_r.seconds:.4f}s"
    )
    return {
        "records": len(trace),
        "flows": len(flows),
        "stages": sorted(stages),
    }


def time_ingest(make_collector, cols, batch: int) -> float:
    """Seconds for one full batched ingest of the workload."""
    fids, pids, hops, digs = cols
    n = len(fids)
    col = make_collector()
    start = time.perf_counter()
    for lo in range(0, n, batch):
        hi = lo + batch
        col.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi], digs[lo:hi])
    seconds = time.perf_counter() - start
    assert col.snapshot().records == n
    return seconds


def bench_overhead(args) -> dict:
    """Interleaved best-of-N: bare vs instrumented ingest rate."""
    cols, universe, factory_kwargs = make_path_workload(
        args.records, args.flows, args.seed
    )
    factory = lambda: path_consumer_factory(universe, **factory_kwargs)
    print(f"\nworkload: {args.records} path-query records over "
          f"{args.flows} flows, batch={args.batch}, "
          f"{args.num_shards} shards, best of {args.repeats}")
    bare_s = float("inf")
    wired_s = float("inf")
    for _ in range(args.repeats):
        bare_s = min(bare_s, time_ingest(
            lambda: Collector(factory(), num_shards=args.num_shards,
                              seed=args.seed),
            cols, args.batch,
        ))
        wired_s = min(wired_s, time_ingest(
            lambda: Collector(factory(), num_shards=args.num_shards,
                              seed=args.seed, obs=MetricsRegistry()),
            cols, args.batch,
        ))
    bare_rate = args.records / bare_s
    wired_rate = args.records / wired_s
    overhead = wired_s / bare_s - 1.0
    print(f"bare          {bare_rate:>12,.0f} rec/s")
    print(f"instrumented  {wired_rate:>12,.0f} rec/s   "
          f"({overhead:+.2%} overhead)")
    return {
        "uninstrumented_rps": round(bare_rate),
        "instrumented_rps": round(wired_rate),
        "overhead_pct": round(overhead * 100.0, 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=200_000,
                        help="records in the overhead workload")
    parser.add_argument("--flows", type=int, default=256)
    parser.add_argument("--num-shards", type=int, default=8,
                        help="collector shard count")
    parser.add_argument("--batch", type=int, default=8192,
                        help="columnar batch size")
    parser.add_argument("--id-packets", type=int, default=6_000,
                        help="records per scenario in the identity check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved timing repetitions (best-of-N)")
    parser.add_argument("--ceiling", type=float, default=5.0,
                        help="max tolerated ingest overhead, percent")
    parser.add_argument("--json", default="BENCH_obs.json",
                        help="output path for the machine-readable results")
    parser.add_argument("--quick", action="store_true",
                        help="small CI smoke run")
    args = parser.parse_args()
    if args.quick:
        args.records = min(args.records, 60_000)
        args.id_packets = min(args.id_packets, 3_000)
        args.repeats = min(args.repeats, 3)

    print(f"obs overhead: identity on {len(scenario_names())} scenarios, "
          f"ceiling {args.ceiling:.1f}%")
    identity = {}
    for name in scenario_names():
        identity[name] = check_scenario_identity(
            name, args.id_packets, args.batch, args.seed
        )
        print(f"  {name:<15} snapshot + per-flow answers + driver report "
              "bit-identical; stage breakdown present")

    overhead = bench_overhead(args)

    payload = {
        "benchmark": "obs_overhead",
        "records": args.records,
        "flows": args.flows,
        "num_shards": args.num_shards,
        "batch": args.batch,
        "seed": args.seed,
        "repeats": args.repeats,
        "ceiling_pct": args.ceiling,
        **overhead,
        "identity": {"packets": args.id_packets, "scenarios": identity,
                     "ok": True},
    }
    write_bench_json(args.json, payload)

    assert overhead["overhead_pct"] <= args.ceiling, (
        f"instrumented ingest is {overhead['overhead_pct']:.2f}% slower "
        f"than bare (ceiling {args.ceiling:.1f}%): the observability "
        "layer must stay off the hot path"
    )
    print(f"\nOK: instrumentation costs {overhead['overhead_pct']:.2f}% "
          f"(ceiling {args.ceiling:.1f}%)")
    print("OK: snapshots, per-flow answers and driver reports "
          "bit-identical with a live registry on every scenario")


if __name__ == "__main__":
    main()

"""KLL streaming quantile sketch (Karnin-Lang-Liberty, FOCS 2016).

The paper's Recording Module compresses each (flow, hop) sampled
substream with "the state of the art KLL sketch [39]" (§6.2) so that
per-flow storage is O(eps^-1) instead of one entry per packet.  This is
a from-scratch implementation of the classic compactor hierarchy:

* level ``l`` holds items with weight ``2**l``;
* a full compactor sorts its buffer, keeps every other item (random
  offset), and promotes survivors to level ``l+1``;
* capacities decay geometrically (``c**(H-l)``) so total space is
  O(k_param / (1-c)).

``quantile(phi)`` answers rank queries with additive rank error
O(1/k_param) with high probability.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

import numpy as np

#: Buffers at least this long sort via NumPy during compaction; below
#: it, ``list.sort`` wins.  Either sort promotes the same multiset
#: (equal floats are indistinguishable), so the estimator is unchanged.
_NUMPY_SORT_MIN = 512


class KLLSketch:
    """Mergeable quantile sketch over a numeric stream.

    Parameters
    ----------
    k_param:
        Top-compactor capacity; space and accuracy knob.  Rank error is
        ~ O(1/k_param).  The paper's "100 digests" sketch corresponds to
        k_param ~= 100.
    c:
        Capacity decay per level below the top (2/3 is the published
        default).
    rng:
        Optional random source (for the coin flips of each compaction);
        pass a seeded :class:`random.Random` for determinism.
    """

    def __init__(
        self,
        k_param: int = 128,
        c: float = 2.0 / 3.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if k_param < 4:
            raise ValueError("k_param must be >= 4")
        if not 0.5 < c < 1.0:
            raise ValueError("c must be in (0.5, 1)")
        self.k_param = k_param
        self.c = c
        self._rng = rng if rng is not None else random.Random(0x4B4C4C)
        #: compactors[l] is the buffer of items at weight 2**l.
        self._compactors: List[List[float]] = [[]]
        self._size = 0
        self._count = 0

    # -- core operations ---------------------------------------------------

    def update(self, value: float) -> None:
        """Insert one stream item."""
        self._compactors[0].append(float(value))
        self._size += 1
        self._count += 1
        if self._size > self._max_size():
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Insert many stream items (scalar reference path).

        Compacts after every insertion exactly as a stream of
        :meth:`update` calls would, so scalar-pinned streams replay
        unchanged; the batch ingestion hot path is
        :meth:`extend_array`.
        """
        for v in values:
            self.update(v)

    def extend_array(self, values: np.ndarray) -> None:
        """Bulk insert with sort-based compaction (the columnar path).

        The whole array lands in the level-0 buffer at once and the
        hierarchy compacts until back within budget, with NumPy sorting
        the oversized buffers.  Same estimator, same space bound and
        same rank-error guarantee as :meth:`extend`; the compaction
        coin stream is consumed in a different order, so the *stored*
        samples can differ from the scalar path's (both within the
        published bounds).  Use :meth:`extend` where a scalar-pinned
        stream must replay exactly.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim != 1:
            raise ValueError(f"extend_array needs a 1-D array, got {vals.shape}")
        if vals.size == 0:
            return
        self._compactors[0].extend(vals.tolist())
        self._size += int(vals.size)
        self._count += int(vals.size)
        while self._size > self._max_size():
            self._compress()

    def merge(self, other: "KLLSketch") -> None:
        """Fold ``other`` into this sketch (same-weight buffers concat)."""
        while len(self._compactors) < len(other._compactors):
            self._compactors.append([])
        for level, buf in enumerate(other._compactors):
            self._compactors[level].extend(buf)
        self._count += other._count
        self._size = sum(len(b) for b in self._compactors)
        while self._size > self._max_size():
            self._compress()

    # -- queries -------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        """Estimate the phi-quantile (phi in [0, 1]) of the stream."""
        if not 0.0 <= phi <= 1.0:
            raise ValueError("phi must be in [0, 1]")
        items = self._weighted_items()
        if not items:
            raise ValueError("empty sketch")
        total = sum(w for _, w in items)
        target = phi * total
        acc = 0
        for value, weight in items:
            acc += weight
            if acc >= target:
                return value
        return items[-1][0]

    def rank(self, value: float) -> float:
        """Estimated fraction of stream items <= value."""
        items = self._weighted_items()
        if not items:
            raise ValueError("empty sketch")
        total = sum(w for _, w in items)
        below = sum(w for v, w in items if v <= value)
        return below / total

    def cdf(self, values: Iterable[float]) -> List[float]:
        """Ranks for a sorted list of probe values."""
        return [self.rank(v) for v in values]

    @property
    def count(self) -> int:
        """Number of items inserted (exact)."""
        return self._count

    @property
    def size(self) -> int:
        """Number of (value, weight) pairs currently stored."""
        return self._size

    def stored_bytes(self, bytes_per_item: int = 4) -> int:
        """Approximate memory footprint, for the Fig. 9 sweeps."""
        return self._size * bytes_per_item

    # -- internals -------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        height = len(self._compactors) - 1
        cap = int(self.k_param * (self.c ** (height - level))) + 1
        return max(2, cap)

    def _max_size(self) -> int:
        return sum(self._capacity(lv) for lv in range(len(self._compactors)))

    def _compress(self) -> None:
        for level, buf in enumerate(self._compactors):
            if len(buf) >= self._capacity(level):
                if level + 1 == len(self._compactors):
                    self._compactors.append([])
                offset = self._rng.randint(0, 1)
                if len(buf) >= _NUMPY_SORT_MIN:
                    srt = np.sort(np.asarray(buf, dtype=np.float64))
                    promoted = srt[offset::2].tolist()
                else:
                    buf.sort()
                    promoted = buf[offset::2]
                self._compactors[level + 1].extend(promoted)
                self._compactors[level] = []
                self._size = sum(len(b) for b in self._compactors)
                return

    def _weighted_items(self) -> List[Tuple[float, int]]:
        items: List[Tuple[float, int]] = []
        for level, buf in enumerate(self._compactors):
            weight = 1 << level
            items.extend((v, weight) for v in buf)
        items.sort(key=lambda pair: pair[0])
        return items

"""Stream summaries used by the Recording Module.

* :class:`KLLSketch` -- quantile sketch (paper §6.2 uses KLL [39]).
* :class:`SpaceSaving` -- heavy hitters for Theorem 2's frequent-values
  aggregation.
* :class:`ReservoirSample` / :class:`SlidingWindowSample` -- bounded
  uniform samples, whole-stream and recent-window.
* :mod:`repro.sketch.quantile` -- exact/sampled quantile helpers and the
  Theorem-1 sample-size formulas.
"""

from repro.sketch.kll import KLLSketch
from repro.sketch.quantile import (
    all_quantiles_sample_size,
    exact_quantile,
    quantile_sample_size,
    quantiles_summary,
    rank_error,
    relative_value_error,
    sampled_quantile,
)
from repro.sketch.reservoir import CountingWindow, ReservoirSample, SlidingWindowSample
from repro.sketch.spacesaving import SpaceSaving

__all__ = [
    "KLLSketch",
    "SpaceSaving",
    "ReservoirSample",
    "SlidingWindowSample",
    "CountingWindow",
    "exact_quantile",
    "sampled_quantile",
    "rank_error",
    "relative_value_error",
    "quantile_sample_size",
    "all_quantiles_sample_size",
    "quantiles_summary",
]

"""Quantile helpers: exact reference quantiles and sampled estimators.

Theorem 1 of the paper: after O(k / eps^2) packets, PINT produces a
(phi +/- eps)-quantile of each hop's value stream.  These helpers give
the exact quantiles used as ground truth in tests/benchmarks and the
plain sampled estimator (no sketch) used by the "PINT without sketch"
lines of Figure 9.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def exact_quantile(values: Sequence[float], phi: float) -> float:
    """Exact phi-quantile (lower interpolation) of a finite sequence."""
    if not values:
        raise ValueError("empty sequence has no quantiles")
    if not 0.0 <= phi <= 1.0:
        raise ValueError("phi must be in [0, 1]")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(phi * len(ordered)) - 1))
    return ordered[idx]


def sampled_quantile(sample: Sequence[float], phi: float) -> float:
    """phi-quantile of a uniform sample: the plug-in estimator."""
    return exact_quantile(sample, phi)


def rank_error(values: Sequence[float], estimate: float, phi: float) -> float:
    """|rank(estimate) - phi| in the full stream: the Theorem-1 metric."""
    if not values:
        raise ValueError("empty sequence")
    below = sum(1 for v in values if v <= estimate)
    return abs(below / len(values) - phi)


def relative_value_error(truth: float, estimate: float) -> float:
    """|estimate - truth| / truth, the Figure-9 y-axis."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def quantile_sample_size(eps: float) -> int:
    """Sample size O(eps^-2) sufficient for a single +-eps quantile.

    Uses the standard Chernoff constant (ln(2/delta)/(2 eps^2) with
    delta = 5%), matching the Appendix A.1 discussion.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return math.ceil(math.log(2.0 / 0.05) / (2.0 * eps * eps))


def all_quantiles_sample_size(eps: float) -> int:
    """Sample size O(eps^-2 log eps^-1) for *all* quantiles at once."""
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return math.ceil(quantile_sample_size(eps) * max(1.0, math.log(1.0 / eps)))


def quantiles_summary(values: Sequence[float], phis: Sequence[float]) -> List[float]:
    """Exact quantiles at several ranks, sharing one sort."""
    if not values:
        raise ValueError("empty sequence")
    ordered = sorted(values)
    out = []
    for phi in phis:
        if not 0.0 <= phi <= 1.0:
            raise ValueError("phi must be in [0, 1]")
        idx = min(len(ordered) - 1, max(0, math.ceil(phi * len(ordered)) - 1))
        out.append(ordered[idx])
    return out

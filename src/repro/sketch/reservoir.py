"""Reservoir samplers: classic (Vitter 1985) and sliding-window.

PINT's dynamic per-flow aggregation is a *distributed* reservoir sample
(implemented in :mod:`repro.hashing`); the Recording Module additionally
uses in-memory reservoirs / sliding-window samplers to bound per-flow
storage (§4.1: "we can use a sliding-window sketch to reflect only the
most recent measurements").
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class ReservoirSample(Generic[T]):
    """Uniform fixed-size sample of a stream (Algorithm R, Vitter [82])."""

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = rng if rng is not None else random.Random(0x5245)
        self._items: List[T] = []
        self._seen = 0

    def update(self, item: T) -> None:
        """Observe one stream item."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = self._rng.randrange(self._seen)
        if j < self.capacity:
            self._items[j] = item

    @property
    def seen(self) -> int:
        """Total items observed."""
        return self._seen

    def sample(self) -> List[T]:
        """The current uniform sample (a copy)."""
        return list(self._items)


class SlidingWindowSample(Generic[T]):
    """Uniform sample over the last ``window`` stream items.

    Implements priority sampling (chained reservoir): each item gets a
    random priority; the sample is the ``capacity`` highest-priority
    items among the most recent ``window``.  Expired items are dropped
    lazily from a priority-ordered deque, giving O(1) amortised updates.
    """

    def __init__(
        self, capacity: int, window: int, rng: Optional[random.Random] = None
    ) -> None:
        if capacity < 1 or window < 1:
            raise ValueError("capacity and window must be >= 1")
        self.capacity = capacity
        self.window = window
        self._rng = rng if rng is not None else random.Random(0x534C)
        #: (index, priority, item), kept sorted by priority descending.
        self._pool: List[Tuple[int, float, T]] = []
        self._index = 0

    def update(self, item: T) -> None:
        """Observe one stream item."""
        pri = self._rng.random()
        self._pool.append((self._index, pri, item))
        self._index += 1
        horizon = self._index - self.window
        # Keep the pool small: drop expired entries and, when over ~4x
        # capacity, prune to the top-capacity live entries.
        if len(self._pool) > 4 * self.capacity:
            live = [e for e in self._pool if e[0] >= horizon]
            live.sort(key=lambda e: -e[1])
            self._pool = live[: self.capacity * 2]

    def sample(self) -> List[T]:
        """Uniform sample (size <= capacity) of the current window."""
        horizon = self._index - self.window
        live = [e for e in self._pool if e[0] >= horizon]
        live.sort(key=lambda e: -e[1])
        return [item for _, _, item in live[: self.capacity]]


class CountingWindow:
    """Exact sliding-window item counter used in tests as ground truth."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._items: Deque = deque()

    def update(self, item: Any) -> None:
        """Observe one item, expiring anything beyond the window."""
        self._items.append(item)
        if len(self._items) > self.window:
            self._items.popleft()

    def contents(self) -> list:
        """Items currently inside the window, oldest first."""
        return list(self._items)

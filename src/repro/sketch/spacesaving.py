"""SpaceSaving heavy hitters (Metwally et al., ICDT 2005).

Appendix A.1 of the paper uses SpaceSaving to report, per (flow, hop),
every value occurring in at least a theta-fraction of the sampled
substream with additive error eps (Theorem 2).  The sketch keeps
``capacity = O(1/eps)`` counters; on a miss, the minimum counter is
evicted and inherits its count as overestimation error.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple


class SpaceSaving:
    """Deterministic heavy-hitters summary with ``capacity`` counters.

    Guarantees, after n updates:

    * every item with true frequency > n / capacity is present;
    * each estimate overshoots the true count by at most n / capacity.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: Dict[Hashable, int] = {}
        self._errors: Dict[Hashable, int] = {}
        self._n = 0

    def update(self, item: Hashable, weight: int = 1) -> None:
        """Observe ``item`` (optionally ``weight`` times)."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._n += weight
        if item in self._counts:
            self._counts[item] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[item] = weight
            self._errors[item] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[item] = floor + weight
        self._errors[item] = floor

    def extend(self, items: Iterable[Hashable]) -> None:
        """Observe a sequence of items."""
        for item in items:
            self.update(item)

    def estimate(self, item: Hashable) -> int:
        """Upper-bound estimate of the item's count (0 if untracked)."""
        return self._counts.get(item, 0)

    def guaranteed(self, item: Hashable) -> int:
        """Lower-bound (guaranteed) count: estimate minus error."""
        return self._counts.get(item, 0) - self._errors.get(item, 0)

    @property
    def n(self) -> int:
        """Total weight observed."""
        return self._n

    def heavy_hitters(self, theta: float) -> List[Tuple[Hashable, int]]:
        """Items with estimated frequency >= theta * n, most frequent first.

        With capacity >= 1/eps this returns every item above a
        (theta)-fraction and nothing below a (theta - eps)-fraction,
        matching Theorem 2's guarantee.
        """
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        cut = theta * self._n
        out = [(i, c) for i, c in self._counts.items() if c >= cut]
        out.sort(key=lambda pair: -pair[1])
        return out

"""Live terminal view of a running collector: ``python -m repro.obs watch``.

Polls a :class:`~repro.service.query.QueryServer` port (``snapshot``,
``stats`` and ``metrics`` verbs) on a fixed interval, keeps the last N
samples in a fixed-size :class:`RingBuffer`, and redraws one compact
frame per poll: totals, the ingest rate derived from successive
snapshots, a sparkline of that rate over the ring's window, front-door
drop counters and -- when the server exposes a registry -- queue depth
and stage timings.

Everything time- and IO-shaped is injectable (``clock``, ``sleep``,
``out``), so the tests drive a full watch session against an
in-process query server in milliseconds and assert the rendered
frames; the CLI wires in the real clock and stdout.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional

from repro.service.query import QueryClient, QueryError

__all__ = ["RingBuffer", "Watcher", "sparkline", "watch"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


class RingBuffer:
    """Fixed-capacity overwrite-oldest sample history.

    A preallocated slot list plus a write cursor: append is O(1) with
    no reallocation ever, and iteration yields oldest -> newest.  The
    watch loop runs for hours against long-lived collectors; its
    memory must be a constant, not a function of uptime.
    """

    __slots__ = ("_slots", "_next", "_len")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._slots: List = [None] * capacity
        self._next = 0
        self._len = 0

    @property
    def capacity(self) -> int:
        return len(self._slots)

    def append(self, item) -> None:
        self._slots[self._next] = item
        self._next = (self._next + 1) % len(self._slots)
        if self._len < len(self._slots):
            self._len += 1

    def __len__(self) -> int:
        return self._len

    def __iter__(self):
        cap = len(self._slots)
        start = (self._next - self._len) % cap
        for i in range(self._len):
            yield self._slots[(start + i) % cap]

    def latest(self):
        if not self._len:
            raise IndexError("ring buffer is empty")
        return self._slots[(self._next - 1) % len(self._slots)]

    def oldest(self):
        if not self._len:
            raise IndexError("ring buffer is empty")
        return self._slots[(self._next - self._len) % len(self._slots)]


def sparkline(values, width: int = 32) -> str:
    """Block-character trend of the last ``width`` values (0-scaled)."""
    vals = list(values)[-width:]
    if not vals:
        return ""
    top = max(vals)
    if top <= 0:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int(round(v / top * (len(_BLOCKS) - 1)))
        out.append(_BLOCKS[max(0, min(idx, len(_BLOCKS) - 1))])
    return "".join(out)


def _fmt_count(n: float) -> str:
    for div, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= div:
            return f"{n / div:.1f}{suffix}"
    return f"{n:,.0f}"


class Watcher:
    """One watch session: poll, remember, render.

    Split from the CLI so tests (and other tools) can run the loop
    against any query port with fake time.  ``history`` is the ring
    capacity -- the rate window and the sparkline both read from it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        interval: float = 1.0,
        history: int = 60,
        out=None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        clear: Optional[bool] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.port = port
        self.interval = interval
        self.ring = RingBuffer(history)
        self.out = out if out is not None else sys.stdout
        self.clock = clock
        self.sleep = sleep
        if clear is None:
            clear = bool(getattr(self.out, "isatty", lambda: False)())
        self.clear = clear

    # -- polling -----------------------------------------------------------

    def poll(self, client: QueryClient) -> dict:
        """One sample: snapshot always; stats/metrics when served."""
        sample = {"t": self.clock(), "snapshot": client.snapshot()}
        for verb in ("stats", "metrics"):
            try:
                sample[verb] = client.request({"op": verb})[verb]
            except QueryError:
                sample[verb] = None  # bare collector: no front door
        self.ring.append(sample)
        return sample

    # -- derived views -----------------------------------------------------

    def rates(self) -> List[float]:
        """Ingest rate (rec/s) between each adjacent sample pair."""
        samples = list(self.ring)
        out = []
        for prev, cur in zip(samples, samples[1:]):
            dt = cur["t"] - prev["t"]
            dr = cur["snapshot"]["records"] - prev["snapshot"]["records"]
            out.append(dr / dt if dt > 0 else 0.0)
        return out

    def render(self) -> str:
        """One frame of the live view from the ring's current state."""
        sample = self.ring.latest()
        snap = sample["snapshot"]
        rates = self.rates()
        rate = rates[-1] if rates else 0.0
        lines = [
            f"repro.obs watch  {self.host}:{self.port}  "
            f"samples={len(self.ring)}/{self.ring.capacity} "
            f"interval={self.interval:g}s",
            "",
            f"  records   {_fmt_count(snap['records']):>10}    "
            f"flows     {_fmt_count(snap['flows']):>10}    "
            f"completed {_fmt_count(snap['completed_flows']):>10}",
            f"  evictions {_fmt_count(snap['evictions']):>10}    "
            f"state     {_fmt_count(snap['state_bytes']):>9}B    "
            f"completion{snap['completion_rate'] * 100:>9.1f}%",
            "",
            f"  ingest rate {rate:>12,.0f} rec/s  "
            f"{sparkline(rates)}",
        ]
        stats = sample.get("stats")
        if stats:
            lines.append(
                f"  wire: frames {_fmt_count(stats['frames_received'])}  "
                f"acks {_fmt_count(stats['acks_sent'])}  "
                f"dup {_fmt_count(stats['duplicate_frames'])}  "
                f"dropped q/ver/frame/win "
                f"{stats['dropped_queue_full']}/"
                f"{stats['dropped_bad_version']}/"
                f"{stats['dropped_bad_frame']}/"
                f"{stats['dropped_window']}"
            )
        metrics = sample.get("metrics")
        if metrics:
            lines.extend(self._metric_lines(metrics))
        return "\n".join(lines) + "\n"

    def _metric_lines(self, metrics: dict) -> List[str]:
        families = metrics.get("families", {})
        lines = []
        depth = families.get("pint_service_ingest_queue_depth")
        if depth and depth["samples"]:
            lines.append(
                "  queue depth "
                f"{depth['samples'][0]['value']:>12,.0f} frames"
            )
        spans = families.get("pint_collector_consume_seconds")
        group = families.get("pint_collector_group_seconds")
        if spans or group:
            parts = []
            for label, fam in (("group", group), ("consume", spans)):
                if not fam:
                    continue
                total = sum(s["sum"] for s in fam["samples"])
                n = sum(s["count"] for s in fam["samples"])
                if n:
                    parts.append(f"{label} {total / n * 1e3:.2f}ms/batch")
            if parts:
                lines.append("  stages: " + "  ".join(parts))
        return lines

    # -- the loop ----------------------------------------------------------

    def run(self, iterations: Optional[int] = None) -> int:
        """Poll-render until ``iterations`` (None = until interrupted).

        Returns the number of frames drawn; connection loss mid-watch
        prints a final line instead of a traceback (collectors do shut
        down while being watched).
        """
        frames = 0
        try:
            with QueryClient(self.host, self.port) as client:
                while iterations is None or frames < iterations:
                    if frames:
                        self.sleep(self.interval)
                    self.poll(client)
                    if self.clear:
                        self.out.write("\x1b[2J\x1b[H")
                    self.out.write(self.render())
                    self.out.flush()
                    frames += 1
        except KeyboardInterrupt:
            pass
        except (OSError, QueryError) as exc:
            self.out.write(f"watch: connection lost ({exc})\n")
        return frames


def watch(host: str, port: int, **kwargs) -> int:
    """Convenience wrapper: build a :class:`Watcher` and run it."""
    iterations = kwargs.pop("iterations", None)
    return Watcher(host, port, **kwargs).run(iterations=iterations)

"""Pipeline-wide metrics: counters, gauges, log-bucket histograms, spans.

The six-stage replay pipeline (scenario -> encode -> impair -> wire ->
ingest -> decode) spans threads, processes and sockets, and until now
its only visibility was the end-of-run report dict.  This module is
the shared instrumentation substrate: a thread-safe
:class:`MetricsRegistry` holding named :class:`Counter` /
:class:`Gauge` / :class:`Histogram` instruments (with static label
sets, so one registry can carry both sinks of a replay), plus
:class:`Span` stage timers built on an *injectable* clock so tests
assert exact durations instead of sleeping.

Design constraints, in priority order:

* **The data path must not notice.**  Instrumentation is per-*batch*,
  never per-record, and a disabled registry (:data:`NULL_REGISTRY`)
  hands out shared no-op instruments whose methods are empty -- the
  hot loops keep their ``inc()``/``with span:`` calls unconditionally
  and ``benchmarks/bench_obs_overhead.py`` enforces that the enabled
  path stays under 5% ingest overhead (and that snapshots are
  bit-identical either way: metrics observe, they never steer).
* **Mergeable across processes.**  A registry serialises to a plain
  dict (:meth:`MetricsRegistry.as_dict`) and :func:`merge_metrics`
  folds any number of such dicts -- counters and histogram buckets
  add, gauges add (label per-worker gauges if you need them apart) --
  which is how the parallel collector's per-worker registries
  reassemble into one :class:`~repro.collector.snapshot.Snapshot`.
* **Scrape-friendly.**  The dict form renders to Prometheus text
  exposition (:mod:`repro.obs.prom`) and ships over the JSON query
  port's ``metrics`` verb unchanged.

Instruments whose value already lives somewhere cheaper (a flow-table
counter, a queue's ``qsize``) register a *function* via
``set_function`` and are read only at export time -- zero hot-path
cost is better than low.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "StageTimes",
    "log_buckets",
    "merge_metrics",
]

#: Label sets are frozen at instrument creation: a sorted tuple of
#: (key, value) pairs, hashable and deterministic.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_buckets(
    lo: float, hi: float, per_decade: int = 3
) -> Tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering [lo, hi].

    ``per_decade`` bounds per power of ten, inclusive of both ends --
    the right shape for quantities spanning orders of magnitude
    (microseconds to seconds, single-record to million-record
    batches), where linear buckets waste resolution at one end.
    The implicit +Inf bucket is added by :class:`Histogram`.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for log-spaced buckets")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = int(round(math.log10(hi / lo) * per_decade))
    bounds = [lo * (hi / lo) ** (i / n) for i in range(n + 1)] if n else [lo]
    # Round to a short decimal so bucket edges are stable across
    # platforms and readable in exposition ("0.00316", not 15 digits).
    out: List[float] = []
    for b in bounds:
        r = float(f"{b:.4g}")
        if not out or r > out[-1]:
            out.append(r)
    return tuple(out)


#: Default duration buckets: 1us .. 10s, 3 per decade.
DURATION_BUCKETS = log_buckets(1e-6, 10.0, per_decade=3)
#: Default size buckets: 1 .. 1M (records per batch, queue depths).
SIZE_BUCKETS = log_buckets(1.0, 1e6, per_decade=3)


class _Instrument:
    """Shared identity + lock for all instrument kinds."""

    __slots__ = ("name", "help", "labels", "_lock", "_fn")

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelKey) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._fn: Optional[Callable[[], float]] = None

    def set_function(self, fn: Callable[[], float]) -> "_Instrument":
        """Read the value from ``fn`` at export time instead.

        For values that already exist (table counters, ``qsize``):
        the hot path pays nothing and the scrape pays one call.
        """
        self._fn = fn
        return self


class Counter(_Instrument):
    """Monotone accumulator (resets only with its process)."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelKey) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge(_Instrument):
    """A value that goes both ways (depths, RTT estimates, backlogs)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelKey) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self._value += by

    def dec(self, by: float = 1.0) -> None:
        with self._lock:
            self._value -= by

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket distribution; log-spaced bounds by default.

    Buckets store *per-bucket* counts internally (cheap single
    increment per observe); exposition renders the cumulative
    ``le``-form Prometheus expects.  The +Inf bucket is implicit.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelKey,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else DURATION_BUCKETS
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def sample(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        edges = [*self.bounds, "+Inf"]
        return {
            "labels": dict(self.labels),
            "buckets": [[e, c] for e, c in zip(edges, counts)],
            "sum": total,
            "count": n,
        }


class _NullInstrument:
    """The disabled-mode instrument: every method is a no-op.

    One shared instance stands in for every counter, gauge and
    histogram of a :class:`NullRegistry`, so uninstrumented hot loops
    pay exactly one attribute call per metric site.
    """

    __slots__ = ()

    def inc(self, by: float = 1.0) -> None:
        pass

    def dec(self, by: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> "_NullInstrument":
        return self

    value = 0.0
    count = 0
    sum = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class Span:
    """Context-manager stage timer feeding a histogram.

    Re-entrant use is not supported (a span times one section at a
    time); create distinct spans for distinct stages.  The clock is
    whatever the owning registry was built with -- inject a fake for
    deterministic tests.
    """

    __slots__ = ("_hist", "_clock", "_t0")

    def __init__(self, hist: Histogram, clock: Callable[[], float]) -> None:
        self._hist = hist
        self._clock = clock
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = self._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._hist.observe(self._clock() - self._t0)


class _NullSpan:
    """Disabled-mode span: enter/exit do nothing, no clock reads."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Thread-safe named-instrument store, one per process (or sink).

    ``counter/gauge/histogram`` are get-or-create on the
    ``(name, labels)`` pair: asking twice returns the same instrument,
    asking with a different kind for an existing name raises.  This is
    what lets independently-constructed components (two collectors, a
    server, a sender) share one registry without coordination --
    distinct label sets keep their streams apart.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelKey], _Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def _get_or_create(
        self,
        cls: Any,
        name: str,
        help: str,
        labels: Optional[Dict[str, str]],
        **kw: Any,
    ) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            if name in self._kinds and self._kinds[name] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}, not {cls.kind}"
                )
            inst = cls(name, help or self._help.get(name, ""), key[1], **kw)
            self._instruments[key] = inst
            self._kinds[name] = cls.kind
            if help:
                self._help[name] = help
            return inst

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def span(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Span:
        """A stage timer whose durations land in histogram ``name``."""
        return Span(
            self.histogram(name, help, labels, buckets=buckets), self.clock
        )

    def as_dict(self) -> dict:
        """Deterministic, JSON-/pickle-ready dump of every instrument.

        Function-backed instruments are evaluated *here*, in the
        owning process -- which is why worker registries cross the
        pipe as dicts, never as live objects.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        families: Dict[str, dict] = {}
        for (name, _), inst in items:
            fam = families.setdefault(name, {
                "type": inst.kind,
                "help": self._help.get(name, ""),
                "samples": [],
            })
            fam["samples"].append(inst.sample())
        return {"families": families}


class NullRegistry:
    """The disabled registry: shared no-op instruments, empty export.

    ``enabled`` is False so call sites can skip *preparation* work
    (delta sums, label formatting) entirely; the instrument calls
    themselves are already free.
    """

    enabled = False
    clock = time.perf_counter

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(
        self, name: str, help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _NullSpan:
        return _NULL_SPAN

    def as_dict(self) -> dict:
        return {"families": {}}


#: The shared disabled registry -- pass nothing, get this.
NULL_REGISTRY = NullRegistry()


class StageTimes:
    """Always-on per-stage wall-time accumulator for one run.

    Lighter than histograms: a plain ``{stage: seconds}`` dict plus a
    reusable span object per stage (no contextlib machinery, two clock
    reads per section).  The replay driver uses one per ``replay()``
    call and copies :meth:`totals` onto the
    :class:`~repro.replay.driver.ScenarioReport`.
    """

    __slots__ = ("totals", "_clock", "_spans")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.totals: Dict[str, float] = {}
        self._clock = clock
        self._spans: Dict[str, _StageSpan] = {}

    def span(self, stage: str) -> "_StageSpan":
        """The (cached, reusable) timer for ``stage``."""
        sp = self._spans.get(stage)
        if sp is None:
            sp = self._spans[stage] = _StageSpan(self, stage)
        return sp

    def add(self, stage: str, seconds: float) -> None:
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds

    def items(self) -> Tuple[Tuple[str, float], ...]:
        """Stable (stage, seconds) pairs, insertion-ordered."""
        return tuple(self.totals.items())


class _StageSpan:
    """One stage's reusable context manager (see :class:`StageTimes`)."""

    __slots__ = ("_times", "_stage", "_t0")

    def __init__(self, times: StageTimes, stage: str) -> None:
        self._times = times
        self._stage = stage
        self._t0 = 0.0

    def __enter__(self) -> "_StageSpan":
        self._t0 = self._times._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._times.add(self._stage, self._times._clock() - self._t0)


# -- cross-process merge -----------------------------------------------------

def _merge_histogram(into: dict, sample: dict) -> None:
    if [b[0] for b in into["buckets"]] != [b[0] for b in sample["buckets"]]:
        raise ValueError("cannot merge histograms with different buckets")
    for slot, (_, count) in zip(into["buckets"], sample["buckets"]):
        slot[1] += count
    into["sum"] += sample["sum"]
    into["count"] += sample["count"]


def merge_metrics(parts: Iterable[Optional[dict]]) -> Optional[dict]:
    """Fold registry dumps (:meth:`MetricsRegistry.as_dict`) into one.

    Samples are matched on ``(family, labels)``: counters and gauges
    add their values, histograms add bucket-wise (identical bucket
    edges required).  ``None`` parts are skipped -- a worker with
    metrics disabled simply contributes nothing -- and all-``None``
    input returns ``None``, so an uninstrumented merge stays
    indistinguishable from no merge at all.  Mismatched types for the
    same family raise: that is version skew, not data.
    """
    merged: Optional[dict] = None
    for part in parts:
        if part is None:
            continue
        if merged is None:
            merged = {"families": {}}
        for name, fam in part.get("families", {}).items():
            mfam = merged["families"].get(name)
            if mfam is None:
                mfam = merged["families"][name] = {
                    "type": fam["type"],
                    "help": fam.get("help", ""),
                    "samples": [],
                }
            elif mfam["type"] != fam["type"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: type "
                    f"{fam['type']} vs {mfam['type']}"
                )
            if not mfam["help"]:
                mfam["help"] = fam.get("help", "")
            by_labels = {
                tuple(sorted(s["labels"].items())): s
                for s in mfam["samples"]
            }
            for sample in fam["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                into = by_labels.get(key)
                if into is None:
                    copy = {
                        "labels": dict(sample["labels"]),
                    }
                    if "buckets" in sample:
                        copy["buckets"] = [
                            [e, c] for e, c in sample["buckets"]
                        ]
                        copy["sum"] = sample["sum"]
                        copy["count"] = sample["count"]
                    else:
                        copy["value"] = sample["value"]
                    mfam["samples"].append(copy)
                    by_labels[key] = copy
                elif "buckets" in sample:
                    _merge_histogram(into, sample)
                else:
                    into["value"] += sample["value"]
    if merged is not None:
        for fam in merged["families"].values():
            fam["samples"].sort(
                key=lambda s: tuple(sorted(s["labels"].items()))
            )
    return merged

"""Observability CLI: ``python -m repro.obs watch`` (+ one-shot verbs).

``watch`` attaches to a running collector's JSON query port and
redraws a live frame every ``--interval`` seconds; ``dump`` fetches
the registry once and prints it as Prometheus exposition text (handy
where the HTTP metrics port was not enabled).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.prom import render_prometheus
from repro.obs.watch import Watcher
from repro.service.query import QueryClient


def cmd_watch(args) -> int:
    watcher = Watcher(
        host=args.host, port=args.port, interval=args.interval,
        history=args.history,
        clear=False if args.no_clear else None,
    )
    frames = watcher.run(iterations=args.iterations)
    return 0 if frames else 1


def cmd_dump(args) -> int:
    with QueryClient(args.host, args.port) as client:
        metrics = client.request({"op": "metrics"})["metrics"]
    if args.json:
        json.dump(metrics, sys.stdout, indent=2, allow_nan=False)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(render_prometheus(metrics))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Watch or dump a live collector's metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("watch", help="live terminal view of a collector")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the server's JSON query port")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between polls (default 1)")
    p.add_argument("--history", type=int, default=60,
                   help="ring-buffer samples kept (default 60)")
    p.add_argument("--iterations", type=int, default=None,
                   help="frames to draw before exiting (default: forever)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("dump", help="fetch metrics once, print exposition")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the server's JSON query port")
    p.add_argument("--json", action="store_true",
                   help="print the raw registry JSON instead")
    p.set_defaults(fn=cmd_dump)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

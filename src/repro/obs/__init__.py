"""Pipeline-wide observability: metrics, stage tracing, exposition.

PINT is itself a telemetry system; this package is the telemetry *of*
the reproduction's own pipeline -- the per-stage visibility ROADMAP
item 2 calls out as missing (end-to-end replay runs 50x slower than
serial ingest and nothing says where the time goes).

Three layers, each usable alone:

* :mod:`repro.obs.metrics` -- thread-safe :class:`MetricsRegistry`
  (Counter / Gauge / log-bucket Histogram), :class:`Span` stage
  timers with an injectable clock, a shared no-op
  :data:`NULL_REGISTRY` for the disabled fast path, and
  :func:`merge_metrics` for folding per-process registries.
* :mod:`repro.obs.prom` -- Prometheus text exposition v0.0.4 and a
  stdlib scrape server (``GET /metrics``).
* :mod:`repro.obs.watch` -- a live terminal view polling a running
  collector's query port with a fixed-size ring-buffer history
  (``python -m repro.obs watch``).

The instrumented components (collector, parallel scatter, replay
driver, service front door, reliable sender) all take an optional
``obs=`` registry; omitted, they run on the no-op registry and
``benchmarks/bench_obs_overhead.py`` pins both properties that make
this safe to leave on: instrumented output is bit-identical and
enabled overhead stays under 5% of ingest.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Span,
    StageTimes,
    log_buckets,
    merge_metrics,
)
from repro.obs.prom import MetricsHTTPServer, render_prometheus

#: The watch layer sits *above* the collector (it polls query ports),
#: while the collector imports :mod:`repro.obs.metrics` from below --
#: so ``repro.obs.watch`` must load lazily or the package would cycle
#: through ``repro.service`` on its own import.
_WATCH_NAMES = ("RingBuffer", "Watcher", "sparkline", "watch")


def __getattr__(name: str):
    if name in _WATCH_NAMES:
        # importlib, not ``from repro.obs import watch``: the function
        # ``watch`` shadows the submodule name, so a from-import would
        # re-enter this hook and recurse.
        import importlib

        _watch = importlib.import_module("repro.obs.watch")
        return getattr(_watch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "RingBuffer",
    "Span",
    "StageTimes",
    "Watcher",
    "log_buckets",
    "merge_metrics",
    "render_prometheus",
    "sparkline",
    "watch",
]

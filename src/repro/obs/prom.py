"""Prometheus text exposition (format v0.0.4) + a tiny scrape server.

The registry's dict form (:meth:`~repro.obs.metrics.MetricsRegistry.
as_dict`) is the single source of truth; :func:`render_prometheus`
turns it -- or a live registry, or a merged cross-process dump -- into
the ``text/plain; version=0.0.4`` body every Prometheus-compatible
scraper understands:

* counters/gauges: ``name{label="v"} value``
* histograms: cumulative ``name_bucket{le="..."}`` series plus
  ``name_sum`` / ``name_count`` (internal storage is per-bucket; the
  cumulative sum happens here, at render time).

:class:`MetricsHTTPServer` is the matching scrape endpoint: a
threaded stdlib HTTP server answering ``GET /metrics``, started by
``python -m repro.service serve --metrics-port`` so ``curl
localhost:<port>/metrics`` works against a live collector with no
client library at all.
"""

from __future__ import annotations

import http.server
import math
import threading
from typing import Callable, Optional, Union

__all__ = ["MetricsHTTPServer", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _fmt_value(value) -> str:
    """Prometheus value spelling: integral floats without the ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _fmt_labels(labels: dict, extra: Optional[dict] = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def render_prometheus(source: Union[dict, object]) -> str:
    """Render a registry (or its ``as_dict`` payload) to exposition text."""
    payload = source if isinstance(source, dict) else source.as_dict()
    lines = []
    for name in sorted(payload.get("families", {})):
        fam = payload["families"][name]
        if fam.get("help"):
            lines.append(f"# HELP {name} {_escape_help(fam['help'])}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for sample in fam["samples"]:
            labels = sample.get("labels", {})
            if fam["type"] == "histogram":
                cum = 0
                for edge, count in sample["buckets"]:
                    cum += count
                    le = "+Inf" if edge == "+Inf" else _fmt_value(edge)
                    lines.append(
                        f"{name}_bucket"
                        f"{_fmt_labels(labels, {'le': le})} {cum}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} "
                    f"{_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


class _Handler(http.server.BaseHTTPRequestHandler):
    """GET /metrics -> exposition text; anything else -> 404."""

    # The scrape path must never block on a slow reverse-DNS lookup.
    def address_string(self) -> str:  # pragma: no cover - trivial
        return self.client_address[0]

    def log_message(self, *args) -> None:
        pass  # scrapes are periodic; logging each one is noise

    def do_GET(self) -> None:
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics lives here")
            return
        try:
            body = render_prometheus(self.server.metrics_source()).encode()
        except Exception as exc:  # surface, never hang the scraper
            self.send_error(500, f"metrics render failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class _Server(http.server.ThreadingHTTPServer):
    daemon_threads = True
    #: set by MetricsHTTPServer before serving
    metrics_source: Callable[[], dict]


class MetricsHTTPServer:
    """Serve ``/metrics`` for one registry (or any dict-returning fn).

    ``source`` may be a :class:`~repro.obs.metrics.MetricsRegistry`,
    a plain payload dict, or a zero-arg callable returning either --
    the callable form is what the collector server uses to merge its
    own registry with worker registries at scrape time.
    """

    def __init__(
        self, source, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        if callable(source):
            fetch = source
        else:
            fetch = lambda: source  # noqa: E731 - trivial closure
        self._httpd = _Server((host, port), _Handler)
        self._httpd.metrics_source = (
            lambda: (lambda p: p.as_dict() if hasattr(p, "as_dict") else p)(
                fetch()
            )
        )
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.2},
                name="obs-metrics-http", daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

"""Determinism rules: seeded RNG (R001) and injectable clocks (R002).

The whole repo's correctness story is bit-identical replay: the same
scenario seed must produce the same snapshots on every run, machine
and worker layout (ROADMAP north star; golden-tested by the parallel
and impairment benches).  Both rules here close the two classic leaks
in that story -- hidden OS entropy and hidden wall clocks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .finding import Finding
from .framework import FileContext, Rule, dotted_name, path_matches, register

#: Roots that name the global/module RNG.  ``np``/``numpy`` aliases are
#: matched textually: the repo imports ``numpy as np`` universally, and
#: a false negative under an exotic alias is acceptable for a linter.
_RNG_ROOTS = ("random", "np.random", "numpy.random")

#: Constructors that are fine *iff* given an explicit seed.
_RNG_CTORS = ("default_rng", "Random", "RandomState", "SystemRandom", "Generator")

#: ``random``-module attributes that are not RNG draws at all.
_RNG_BENIGN = _RNG_CTORS + ("getstate", "setstate")


@register
class NoUnseededRng(Rule):
    """R001: every RNG must be constructed with an explicit seed.

    Historical bug class: an ``np.random.default_rng()`` (no seed) in
    a trace generator makes two "identical" replays diverge, which the
    bit-identity golden tests then report as a pipeline bug.  Flags
    (a) seedable constructors called without a seed and (b) *any* draw
    from the module-level global RNG (``random.random()``,
    ``np.random.shuffle(...)``), whose state is cross-cutting mutable
    global state no seed argument can scope.
    """

    id = "R001"
    name = "no-unseeded-rng"
    domains = ("lib", "bench", "examples")
    description = ("RNGs must be seeded: no default_rng()/Random() without a "
                   "seed, no module-level random.* draws")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            root, _, attr = name.rpartition(".")
            if root not in _RNG_ROOTS:
                # `SystemRandom` et al. imported bare are out of scope:
                # the repo never does `from random import ...`.
                continue
            if attr in _RNG_CTORS:
                seeded = bool(node.args) or any(
                    kw.arg == "seed" for kw in node.keywords
                )
                if not seeded:
                    yield ctx.finding(
                        self.id, node,
                        f"{name}() without an explicit seed breaks replay "
                        "determinism; pass a seed derived from the scenario",
                    )
            elif attr not in _RNG_BENIGN:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() draws from the process-global RNG; construct "
                    "a seeded Generator/Random instance instead",
                )


#: Call chains that read a wall clock.  ``time.perf_counter`` is *not*
#: here: elapsed-time measurement is legitimate and ubiquitous in the
#: driver; what breaks replay is stamping *data* with the host clock.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})


@register
class NoWallClock(Rule):
    """R002: library code reads time through an injectable seam.

    Replay time comes from trace timestamps via ``IngestClock``; the
    obs layer takes ``clock=`` parameters precisely so tests can
    assert exact durations.  A direct ``time.time()`` in library code
    bypasses both.  Only *calls* are flagged: ``clock=time.monotonic``
    as a default parameter is the injectable seam itself and passes.
    The allowlist covers real network I/O (client/server socket
    deadlines), where the wall clock is the correct clock.
    """

    id = "R002"
    name = "no-wall-clock"
    domains = ("lib",)
    description = ("no time.time()/time.monotonic()/datetime.now() calls in "
                   "library code outside the injectable-clock seams")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if path_matches(ctx.rel_path, ctx.config.wallclock_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALLCLOCK_CALLS:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() reads the wall clock in library code; use the "
                    "injected clock (IngestClock / clock= parameter) or add "
                    "the file to wallclock-allow with a reason",
                )

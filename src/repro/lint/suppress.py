"""Inline suppressions: ``# repro-lint: disable=RNNN reason=...``.

Policy (DESIGN.md SS10): every suppression *must* carry a written
reason.  A reason-less suppression does not suppress anything -- it
becomes an ``R000`` finding itself, so the lazy path is louder than
the honest one.  Unused suppressions are also ``R000`` findings: a
stale suppression is a rule silently switched off for a line that no
longer needs it, which is how allowlists rot.

The comment applies to findings reported *on the same line*.  Multiple
rule ids separate with commas after ``disable=``; the reason is free
text to end of line.  (The grammar is not spelled out literally here:
the scanner is a plain regex over lines, and it would match its own
documentation.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .finding import Finding

#: ``disable=`` must be directly after the marker; ``reason=`` is
#: optional in the grammar precisely so we can *report* its absence.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*)"
    r"(?:\s+reason=(?P<reason>\S.*))?"
)


@dataclass
class Suppression:
    """One parsed suppression comment on one source line."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Rule ids actually consumed by a finding on this line.
    used: Set[str] = field(default_factory=set)

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())


def parse_suppressions(source: str) -> List[Suppression]:
    """Scan raw source for suppression comments, line by line.

    A plain regex over lines (not the tokenizer) is enough here: the
    marker is illegal inside a string on any line we lint because no
    rule fires on string contents, and false positives only make a
    suppression *exist* -- an unused one is flagged anyway.
    """
    out: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group("rules").split(","))
        out.append(Suppression(lineno, rules, m.group("reason") or ""))
    return out


class SuppressionIndex:
    """Per-file suppression table with usage accounting."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Suppression] = {
            s.line: s for s in parse_suppressions(source)
        }

    def is_suppressed(self, finding: Finding) -> bool:
        """True if ``finding`` is covered by a *valid* suppression.

        Marks the suppression used either way so a reason-less
        suppression is not also reported as unused on top of R000.
        """
        sup = self._by_line.get(finding.line)
        if sup is None or finding.rule not in sup.rules:
            return False
        sup.used.add(finding.rule)
        return sup.valid

    def framework_findings(
        self,
        path: str,
        known_rules: Iterable[str],
        active_rules: Iterable[str],
    ) -> List[Finding]:
        """R000 findings: missing reason, unknown rule id, unused.

        ``known_rules`` is the full registry (an id outside it is a
        typo); ``active_rules`` is the subset that actually *ran* on
        this file -- unused-ness is only judged for those, so linting
        a subtree in a domain where a rule is off (or with
        ``--select``) does not misreport its suppressions as stale.
        """
        known = set(known_rules)
        active = set(active_rules)
        out: List[Finding] = []
        for sup in self._by_line.values():
            if not sup.valid:
                out.append(Finding(
                    "R000", path, sup.line, 0,
                    "suppression missing required reason= "
                    f"(disable={','.join(sup.rules)})",
                ))
            for rule in sup.rules:
                if rule not in known:
                    out.append(Finding(
                        "R000", path, sup.line, 0,
                        f"suppression names unknown rule {rule}",
                    ))
                elif sup.valid and rule in active and rule not in sup.used:
                    out.append(Finding(
                        "R000", path, sup.line, 0,
                        f"unused suppression for {rule} "
                        "(no matching finding on this line)",
                    ))
        return out

"""Concurrency rules: lock discipline (R006), fork safety (R008).

The pipeline mixes three concurrency regimes -- the obs registry is
shared across threads, the service owns listener/ingest threads, and
the parallel collector forks worker *processes*.  Each regime has one
rule: shared state mutates under its lock (R006), and fork-based
modules never touch threads before forking (R008).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .finding import Finding
from .framework import FileContext, Rule, dotted_name, path_matches, register


def _declared_locks(cls: ast.ClassDef) -> Set[str]:
    """Attribute names ending in ``_lock`` assigned on self anywhere."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                        and tgt.attr.endswith("_lock")):
                    locks.add(tgt.attr)
    return locks


def _is_lock_ctx(item: ast.withitem, locks: Set[str]) -> bool:
    expr = item.context_expr
    return (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in locks)


class _LockWalk(ast.NodeVisitor):
    """Collect unlocked ``self.<attr>`` writes inside one method."""

    def __init__(self, locks: Set[str]) -> None:
        self.locks = locks
        self.depth = 0  # nesting level of held class locks
        self.unlocked_writes: List[ast.Attribute] = []

    def visit_With(self, node: ast.With) -> None:
        held = any(_is_lock_ctx(item, self.locks) for item in node.items)
        self.depth += held
        self.generic_visit(node)
        self.depth -= held

    # A nested def runs later, possibly on another thread; its writes
    # are judged with no lock held regardless of the enclosing `with`.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self.depth = self.depth, 0
        self.generic_visit(node)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _record(self, target: ast.expr) -> None:
        if (self.depth == 0
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in self.locks):
            self.unlocked_writes.append(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            self._record(tgt)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target)
        self.generic_visit(node)


@register
class LockDiscipline(Rule):
    """R006: classes that declare a lock write ``self.*`` under it.

    Targets the registry (``obs/metrics.py``), the server
    (``service/server.py``) and any future shared-state class: once a
    class owns a ``*_lock``, an attribute write outside ``with
    self.<lock>:`` is either a latent race or a deliberate
    single-threaded seam -- the latter goes on ``lock-allow-methods``
    (``__init__`` is always allowed: no second thread exists yet).
    """

    id = "R006"
    name = "lock-discipline"
    domains = ("lib",)
    description = ("self.* writes in lock-owning classes happen inside "
                   "`with self._lock` or an allowlisted method")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = set(ctx.config.lock_allow_methods) | {"__init__"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _declared_locks(node)
            if not locks:
                continue
            for stmt in node.body:
                if (not isinstance(stmt, ast.FunctionDef)
                        or stmt.name in allowed):
                    continue
                walk = _LockWalk(locks)
                for body_stmt in stmt.body:
                    walk.visit(body_stmt)
                for write in walk.unlocked_writes:
                    yield ctx.finding(
                        self.id, write,
                        f"write to self.{write.attr} in {node.name}."
                        f"{stmt.name}() outside `with self.<lock>:`; the "
                        "class declares "
                        f"{', '.join(sorted(locks))} -- hold it, or add the "
                        "method to lock-allow-methods with a reason",
                    )


_THREAD_CALLS = frozenset({
    "threading.Thread", "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor", "ThreadPoolExecutor",
})


def _creates_shared_memory(node: ast.Call, name: str) -> bool:
    """True for ``SharedMemory(..., create=True)`` (kw or positional)."""
    if not name or name.split(".")[-1] != "SharedMemory":
        return False
    for kw in node.keywords:
        if (kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True):
            return True
    # Signature: SharedMemory(name=None, create=False, size=0).
    return (len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value is True)


@register
class ForkSafety(Rule):
    """R008: fork-based modules never create threads, and only the
    shm modules create shared-memory segments.

    ``collector/parallel.py`` forks workers (the default start method
    on Linux); a thread started before ``fork()`` leaves the child
    with the thread's locks in whatever state the parent froze them --
    the classic post-fork deadlock.  The rule bans thread creation
    *anywhere* in the configured fork modules: keeping the whole
    module thread-free is simpler to audit than proving ordering
    against every fork site.

    The second prong guards the other fork-adjacent resource:
    ``SharedMemory(create=True)`` outside the ``shm-modules``
    allowlist (``collector/shm.py``).  Every created segment needs
    exactly one owner that unlinks it; segments minted ad hoc around
    the codebase are how ``/dev/shm`` fills with orphans after a
    crash.
    """

    id = "R008"
    name = "subprocess-fork-safety"
    domains = ("lib",)
    description = ("no thread creation in fork-based modules "
                   "(fork-modules list); no SharedMemory(create=True) "
                   "outside shm-modules")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_fork = path_matches(ctx.rel_path, ctx.config.fork_modules)
        in_shm = path_matches(ctx.rel_path, ctx.config.shm_modules)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if in_fork and name in _THREAD_CALLS:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() in a fork-based module; threads held "
                    "across fork() deadlock the child -- move threading "
                    "out of the fork path",
                )
            if not in_shm and name and _creates_shared_memory(node, name):
                yield ctx.finding(
                    self.id, node,
                    f"{name}(create=True) outside shm-modules; segment "
                    "creation (and the unlink discipline that keeps "
                    "/dev/shm clean) is confined to collector/shm.py -- "
                    "route new segments through ShmRing",
                )

"""Configuration for :mod:`repro.lint` -- ``[tool.repro-lint]``.

The checker reads its allowlists from ``pyproject.toml`` so policy
lives next to the ruff gate it extends.  Python 3.11+ parses TOML with
the stdlib ``tomllib``; on 3.10 we try ``tomli`` and otherwise fall
back to :data:`DEFAULTS`, which are kept byte-equivalent to the
committed pyproject block (CI runs the real parse on every
interpreter, so drift between the two fails the negative test, not
silently changes policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.10 path
    try:
        import tomli as _toml  # type: ignore[import-not-found, no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

#: Mirror of the committed ``[tool.repro-lint]`` block, used only when
#: no TOML parser exists (3.10 without tomli).  Keep in lockstep.
DEFAULTS: Dict[str, Any] = {
    "exclude": ["__pycache__", ".git", "build", "dist", "lint_corpus"],
    "wallclock-allow": [
        "repro/service/client.py",
        "repro/service/server.py",
    ],
    "unpickle-allow": ["repro/collector/recovery.py"],
    "sidecar-fields": ["metrics", "service", "recovery"],
    "lock-allow-methods": ["start", "close", "stop", "_init_obs", "set_function"],
    "fork-modules": [
        "repro/collector/parallel.py",
        "repro/collector/shm.py",
    ],
    "shm-modules": ["repro/collector/shm.py"],
    "mypy": {
        "typed-manifest": "typed_modules.txt",
        "min-typed-modules": 6,
    },
}


@dataclass(frozen=True)
class LintConfig:
    """Resolved checker configuration (see DESIGN.md SS10)."""

    #: Directory/file basenames skipped during directory walks.
    #: Explicitly named files are always linted -- that is how the
    #: corpus fixtures (excluded here) get checked by their own tests.
    exclude: Tuple[str, ...] = ()
    #: Files (repo-relative suffix match) where wall-clock reads are
    #: legitimate: real network deadlines, not simulated time.
    wallclock_allow: Tuple[str, ...] = ()
    #: Files allowed to unpickle -- the header-validated codec only.
    unpickle_allow: Tuple[str, ...] = ()
    #: Dataclass field names that are sidecars: carried for reporting,
    #: excluded from equality and from ``as_dict``.
    sidecar_fields: Tuple[str, ...] = ()
    #: Methods allowed to write ``self.*`` outside the lock in a class
    #: that declares one (single-threaded setup/teardown seams).
    lock_allow_methods: Tuple[str, ...] = ()
    #: Modules that fork workers and therefore must not touch threads
    #: at import or setup time (R008).
    fork_modules: Tuple[str, ...] = ()
    #: The only modules allowed to *create* shared-memory segments
    #: (``SharedMemory(create=True)``); one owner keeps the unlink
    #: discipline auditable (R008).
    shm_modules: Tuple[str, ...] = ()
    #: Path of the typed-module manifest, relative to the repo root.
    typed_manifest: str = "typed_modules.txt"
    #: Ratchet floor: the manifest may only grow.
    min_typed_modules: int = 6
    #: Where the config came from, for ``--list-rules`` diagnostics.
    source: str = "defaults"

    @classmethod
    def from_mapping(cls, data: Dict[str, Any], source: str) -> "LintConfig":
        merged = dict(DEFAULTS)
        merged.update(data)
        mypy_cfg = dict(DEFAULTS["mypy"])
        mypy_cfg.update(data.get("mypy", {}))
        return cls(
            exclude=tuple(merged["exclude"]),
            wallclock_allow=tuple(merged["wallclock-allow"]),
            unpickle_allow=tuple(merged["unpickle-allow"]),
            sidecar_fields=tuple(merged["sidecar-fields"]),
            lock_allow_methods=tuple(merged["lock-allow-methods"]),
            fork_modules=tuple(merged["fork-modules"]),
            shm_modules=tuple(merged["shm-modules"]),
            typed_manifest=str(mypy_cfg["typed-manifest"]),
            min_typed_modules=int(mypy_cfg["min-typed-modules"]),
            source=source,
        )


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the first ``pyproject.toml``."""
    for candidate in [start, *start.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def load_config(explicit: Optional[Path] = None,
                start: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from pyproject, else defaults."""
    path = explicit or find_pyproject(start or Path.cwd())
    if path is None:
        return LintConfig.from_mapping({}, source="defaults")
    if _toml is None:
        # 3.10 without tomli: policy comes from the mirrored defaults.
        return LintConfig.from_mapping({}, source=f"defaults (no TOML parser for {path})")
    with open(path, "rb") as fh:
        data = _toml.load(fh)
    section = data.get("tool", {}).get("repro-lint", {})
    return LintConfig.from_mapping(section, source=str(path))

"""repro.lint -- AST-level invariant checker for this repository.

``python -m repro.lint src benchmarks examples`` runs ~8 repo-specific
rules (seeded RNGs, injectable clocks, validated unpickling, sidecar
dataclass hygiene, typed raises, lock discipline, bounded frombuffer,
fork safety) plus a mypy ratchet over ``typed_modules.txt``.  See
DESIGN.md SS10 for the rule catalogue and suppression policy.
"""

from .config import LintConfig, load_config
from .finding import JSON_SCHEMA_VERSION, Finding
from .framework import (
    FileContext,
    Rule,
    all_rules,
    classify_domain,
    lint_file,
    run_paths,
)
from .ratchet import run_ratchet
from .suppress import SuppressionIndex, parse_suppressions

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "load_config",
    "FileContext",
    "Rule",
    "all_rules",
    "classify_domain",
    "lint_file",
    "run_paths",
    "run_ratchet",
    "SuppressionIndex",
    "parse_suppressions",
]

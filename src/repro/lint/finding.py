"""Finding model for :mod:`repro.lint` -- one record per violation.

A finding is deliberately flat and JSON-first: the CI job uploads the
``--json`` output as an artifact, so the schema here *is* the artifact
schema and is pinned by ``tests/test_lint.py::test_json_schema``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Schema version stamped into the JSON report envelope.  Bump only on
#: a breaking change to the finding fields below.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``rule`` is the stable ``RNNN`` identifier (``R000`` is reserved
    for the framework itself: malformed or unused suppressions).
    ``path`` is repo-relative and POSIX-slashed so the JSON artifact
    diffs cleanly across runner platforms.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """Human one-liner, ``path:line:col: RNNN message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

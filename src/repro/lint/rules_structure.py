"""Structural rules: sidecar dataclass fields (R004), typed raises (R005).

These two rules keep the report/snapshot object model honest: sidecar
observability data must never leak into equality or the serialized
answer (R004), and failures must arrive as the documented
``repro.exceptions`` hierarchy instead of anonymous ``RuntimeError``
(R005), so callers can catch by meaning.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .finding import Finding
from .framework import FileContext, Rule, decorator_names, dotted_name, register

_DATACLASS_DECORATORS = frozenset({"dataclass", "dataclasses.dataclass"})
_DICT_METHODS = frozenset({"as_dict", "to_dict"})


def _field_compare_false(value: Optional[ast.expr]) -> bool:
    """True if the AnnAssign value is ``field(..., compare=False)``."""
    if not isinstance(value, ast.Call):
        return False
    if dotted_name(value.func) not in ("field", "dataclasses.field"):
        return False
    for kw in value.keywords:
        if (kw.arg == "compare" and isinstance(kw.value, ast.Constant)
                and kw.value.value is False):
            return True
    return False


@register
class SidecarCompare(Rule):
    """R004: sidecar fields are ``compare=False`` and out of as_dict.

    Sidecars (``metrics``, ``service``, ``recovery``) describe *how a
    run went*, not *what the answer is*.  The bit-identity golden
    tests compare snapshots with ``==`` and diff their ``as_dict``
    JSON; a sidecar that participates in either makes two semantically
    identical runs compare unequal the moment one had metrics enabled.
    """

    id = "R004"
    name = "sidecar-compare"
    domains = ("lib",)
    description = ("sidecar dataclass fields (metrics/service/recovery) must "
                   "be compare=False and excluded from as_dict")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sidecars = set(ctx.config.sidecar_fields)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not set(decorator_names(node)) & _DATACLASS_DECORATORS:
                continue
            declared = []
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and stmt.target.id in sidecars):
                    declared.append(stmt.target.id)
                    if not _field_compare_false(stmt.value):
                        yield ctx.finding(
                            self.id, stmt,
                            f"sidecar field {stmt.target.id!r} must be "
                            "declared field(..., compare=False): sidecars "
                            "never participate in snapshot equality",
                        )
            if not declared:
                continue
            for stmt in node.body:
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt.name in _DICT_METHODS):
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Attribute)
                                and isinstance(sub.value, ast.Name)
                                and sub.value.id == "self"
                                and sub.attr in declared):
                            yield ctx.finding(
                                self.id, sub,
                                f"sidecar field {sub.attr!r} referenced in "
                                f"{stmt.name}(); sidecars are excluded from "
                                "the serialized answer",
                            )


#: Raising (or subclassing-free re-raising of) these names is R005.
_BARE_EXCEPTIONS = frozenset({"Exception", "RuntimeError", "BaseException"})


@register
class TypedRaise(Rule):
    """R005: library raises use the ``repro.exceptions`` hierarchy.

    A bare ``raise RuntimeError(...)`` forces callers into
    string-matching on messages; the repo's hierarchy exists so the
    supervisor can tell a dead worker from a version-skewed checkpoint
    without parsing text.  Dual-inheritance types (e.g. a
    ``ReproError`` that is *also* a ``RuntimeError``) keep legacy
    ``except RuntimeError`` callers working -- the rule only flags the
    anonymous base classes themselves.
    """

    id = "R005"
    name = "typed-raise"
    domains = ("lib",)
    description = ("raise repro.exceptions types (or stdlib subclasses), "
                   "never bare Exception/RuntimeError/BaseException")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            if name in _BARE_EXCEPTIONS:
                yield ctx.finding(
                    self.id, node,
                    f"raise {name} in library code; use the repro.exceptions "
                    "hierarchy (subclass RuntimeError there if legacy "
                    "callers catch it)",
                )

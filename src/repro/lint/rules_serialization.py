"""Serialization rules: validated unpickling (R003), bounded frombuffer (R007).

Both rules guard the byte boundary -- the places where external bytes
become Python objects or numpy views.  The checkpoint codec and the
wire decoder each learned these lessons at runtime (magic/CRC headers
in ``collector/recovery.py``, ``TruncatedFrameError`` in
``service/wire.py``); the rules keep every *future* byte boundary
honest by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .finding import Finding
from .framework import (
    FileContext,
    Rule,
    dotted_name,
    iter_functions,
    path_matches,
    register,
)

_PICKLE_CALLS = frozenset({
    "pickle.loads", "pickle.load", "pickle.Unpickler",
    "cPickle.loads", "cPickle.load",
})
_NP_LOAD = frozenset({"np.load", "numpy.load"})


@register
class ValidatedUnpickle(Rule):
    """R003: unpickling only inside the header-validated codec.

    ``pickle.loads`` executes arbitrary code from the payload; the
    repo's one sanctioned use is ``collector/recovery.py``, which
    checks magic, version, length and CRC32 *before* the bytes reach
    the unpickler.  Anywhere else -- including benches and examples,
    which people copy-paste from -- is a finding.
    """

    id = "R003"
    name = "validated-unpickle"
    domains = ("lib", "bench", "examples")
    description = ("pickle.loads/np.load(allow_pickle=True) only in the "
                   "validated checkpoint codec (unpickle-allow)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if path_matches(ctx.rel_path, ctx.config.unpickle_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _PICKLE_CALLS:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() outside the validated checkpoint codec; route "
                    "through repro.collector.recovery (validate, then decode)",
                )
            elif name in _NP_LOAD:
                for kw in node.keywords:
                    if (kw.arg == "allow_pickle"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value):
                        yield ctx.finding(
                            self.id, node,
                            f"{name}(allow_pickle=True) executes pickle from "
                            "the file; load arrays without pickle or use the "
                            "validated codec",
                        )


_FROMBUFFER = frozenset({"np.frombuffer", "numpy.frombuffer"})
#: Attribute reads that count as a length check in a guard expression.
_SIZE_ATTRS = frozenset({"size", "nbytes", "itemsize"})


def _is_length_probe(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        fn = node.func
        return isinstance(fn, ast.Name) and fn.id == "len"
    if isinstance(node, ast.Attribute):
        return node.attr in _SIZE_ATTRS
    return False


def _guard_lines(fn: ast.AST) -> List[int]:
    """Line numbers of tests (if/assert/while) that probe a length."""
    out: List[int] = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.If, ast.While)):
            test = node.test
        elif isinstance(node, ast.Assert):
            test = node.test
        else:
            continue
        if any(_is_length_probe(sub) for sub in ast.walk(test)):
            out.append(node.lineno)
    return out


@register
class FrombufferBounds(Rule):
    """R007: ``np.frombuffer`` is preceded by an explicit length check.

    The wire-desync bug class: ``frombuffer`` on a short or overlong
    slice either raises deep inside numpy (losing the protocol
    context) or silently reads the next frame's bytes.  The decoder's
    discipline -- compute the expected length, compare against the
    buffer, *then* view -- is checked structurally: some ``if`` /
    ``assert`` / ``while`` in the same function, on an earlier line,
    must probe a length (``len(...)``, ``.size``, ``.nbytes``).
    """

    id = "R007"
    name = "frombuffer-bounds"
    domains = ("lib",)
    description = ("np.frombuffer must follow an explicit length check in "
                   "the same function")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in iter_functions(ctx.tree):
            guards = _guard_lines(fn)
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and dotted_name(node.func) in _FROMBUFFER
                        and not any(g <= node.lineno for g in guards)):
                    yield ctx.finding(
                        self.id, node,
                        "np.frombuffer without a preceding length check in "
                        "this function; validate the slice length first "
                        "(wire-desync bug class)",
                    )

"""CLI for :mod:`repro.lint`.

Usage::

    python -m repro.lint src benchmarks examples        # human output
    python -m repro.lint src --json > findings.json     # CI artifact
    python -m repro.lint --list-rules                   # rule catalogue
    python -m repro.lint --mypy-ratchet [--require-mypy]

Exit codes: 0 clean, 1 findings (or ratchet failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import find_pyproject, load_config
from .finding import JSON_SCHEMA_VERSION
from .framework import DOMAINS, all_rules, run_paths
from .ratchet import run_ratchet


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-level invariant checker for this repository",
    )
    p.add_argument("paths", nargs="*", help="files or directories to lint")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON findings report on stdout")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--force-domain", choices=DOMAINS,
                   help="override path-based domain classification "
                        "(used by the corpus tests)")
    p.add_argument("--config", metavar="PYPROJECT", type=Path,
                   help="explicit pyproject.toml (default: walk up from cwd)")
    p.add_argument("--mypy-ratchet", action="store_true",
                   help="run the typed-module ratchet instead of the rules")
    p.add_argument("--require-mypy", action="store_true",
                   help="with --mypy-ratchet: fail (not skip) if mypy "
                        "is not installed")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = load_config(explicit=args.config)
    # The repo root anchors rel-paths and the ratchet; fall back to
    # cwd when no pyproject exists (bare fixture trees in tests).
    pyproject = args.config or find_pyproject(Path.cwd())
    root = pyproject.parent if pyproject else Path.cwd()

    if args.list_rules:
        for cls in all_rules():
            domains = ",".join(cls.domains)
            print(f"{cls.id} {cls.name} [{domains}] -- {cls.description}")
        print(f"(config: {config.source})")
        return 0

    if args.mypy_ratchet:
        return run_ratchet(config, root, require_mypy=args.require_mypy)

    if not args.paths:
        print("error: no paths given (try: python -m repro.lint src)",
              file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    try:
        findings, checked = run_paths(
            [Path(p) for p in args.paths], config, root=root,
            select=select, force_domain=args.force_domain,
        )
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=sys.stderr)
        return 2

    if args.json:
        report = {
            "version": JSON_SCHEMA_VERSION,
            "checked_files": checked,
            "findings": [f.to_dict() for f in findings],
            "counts": _counts(findings),
        }
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print(f.render())
        noun = "file" if checked == 1 else "files"
        if findings:
            print(f"{len(findings)} finding(s) in {checked} {noun}")
        else:
            print(f"clean: {checked} {noun}, 0 findings")
    return 1 if findings else 0


def _counts(findings: List) -> dict:
    out: dict = {}
    for f in findings:
        out[f.rule] = out.get(f.rule, 0) + 1
    return dict(sorted(out.items()))


if __name__ == "__main__":
    sys.exit(main())

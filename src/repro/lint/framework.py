"""Rule framework for :mod:`repro.lint`.

The checker is a BASEL-style policy pass over our own source (see
PAPERS.md): each rule encodes one invariant the runtime test suite
already relies on -- seeded determinism, injectable clocks, validated
unpickling, lock discipline -- and checks it *statically*, before a
violation costs a nightly bench run.

Structure:

* :class:`FileContext` -- one parsed file: source, AST, repo-relative
  path, and its *domain* (``lib`` / ``bench`` / ``examples`` /
  ``tests``), derived from the path.  Rules declare which domains they
  apply to: an unseeded RNG is a bug in ``src/`` and a feature in a
  test that wants arbitrary data.
* :class:`Rule` -- subclass per rule; ``check(ctx)`` yields
  :class:`~repro.lint.finding.Finding`.  Registration is a decorator
  so a rule module is self-contained: import it and its rules exist.
* :func:`run_paths` -- walk files, parse once, run every applicable
  rule, then apply suppressions and append the framework's own R000
  findings (bad/stale suppressions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from .config import LintConfig
from .finding import Finding
from .suppress import SuppressionIndex

#: Path-derived rule scopes.  ``lib`` is shipping library code under
#: ``src/``; the others get progressively looser rules.
DOMAINS = ("lib", "bench", "examples", "tests")


def classify_domain(rel_path: str) -> str:
    """Map a repo-relative POSIX path to its domain."""
    parts = rel_path.split("/")
    if "tests" in parts or any(p.startswith("test_") for p in parts):
        return "tests"
    if parts[0] == "benchmarks":
        return "bench"
    if parts[0] == "examples":
        return "examples"
    return "lib"


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: Path
    rel_path: str
    domain: str
    source: str
    tree: ast.AST
    config: LintConfig

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule, self.rel_path,
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            message,
        )


class Rule:
    """Base class: subclass, set the class attrs, implement check()."""

    id: str = ""
    name: str = ""
    #: Domains the rule fires in (see :data:`DOMAINS`).
    domains: Tuple[str, ...] = ("lib",)
    #: One-line invariant statement for ``--list-rules`` / docs.
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


#: Registry of rule classes, keyed by id, in registration order.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id or cls.id in _REGISTRY:
        raise ValueError(f"bad or duplicate rule id: {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, importing rule modules on demand."""
    _load_rule_modules()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _load_rule_modules() -> None:
    # Imported lazily (not at package import) so `import repro.lint`
    # stays cheap and rule modules can import the framework freely.
    from . import (  # noqa: F401
        rules_concurrency,
        rules_determinism,
        rules_serialization,
        rules_structure,
    )


# --------------------------------------------------------------------------
# Shared AST helpers used by several rule modules.

def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def decorator_names(cls: ast.ClassDef) -> List[str]:
    out: List[str] = []
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            out.append(name)
    return out


def path_matches(rel_path: str, allow: Iterable[str]) -> bool:
    """Suffix match on POSIX repo-relative paths (allowlists)."""
    return any(rel_path == a or rel_path.endswith("/" + a) for a in allow)


# --------------------------------------------------------------------------
# Runner.

def iter_source_files(paths: Sequence[Path], config: LintConfig) -> Iterator[Path]:
    """Expand path arguments to ``.py`` files.

    Excludes apply only while *walking directories*: a file named
    explicitly on the command line is always linted, which is how the
    (normally excluded) corpus fixtures are checked by their tests.
    """
    for p in paths:
        if p.is_file():
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                rel = sub.relative_to(p)
                if any(part in config.exclude for part in rel.parts):
                    continue
                yield sub
        else:
            raise FileNotFoundError(str(p))


def relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path,
    config: LintConfig,
    root: Path,
    select: Optional[Sequence[str]] = None,
    force_domain: Optional[str] = None,
) -> List[Finding]:
    """Lint one file: parse, run applicable rules, apply suppressions."""
    rel = relativize(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding("R000", rel, exc.lineno or 0, exc.offset or 0,
                        f"file does not parse: {exc.msg}")]
    domain = force_domain or classify_domain(rel)
    ctx = FileContext(path, rel, domain, source, tree, config)

    rules = [cls for cls in all_rules()
             if select is None or cls.id in select]
    active = [cls for cls in rules if domain in cls.domains]
    raw: List[Finding] = []
    for cls in active:
        raw.extend(cls().check(ctx))

    index = SuppressionIndex(source)
    kept = [f for f in raw if not index.is_suppressed(f)]
    kept.extend(index.framework_findings(
        rel,
        known_rules=[c.id for c in all_rules()],
        active_rules=[c.id for c in active],
    ))
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def run_paths(
    paths: Sequence[Path],
    config: LintConfig,
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    force_domain: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint every file under ``paths``; returns (findings, file count)."""
    root = root or Path.cwd()
    findings: List[Finding] = []
    count = 0
    for path in iter_source_files(paths, config):
        count += 1
        findings.extend(lint_file(path, config, root, select, force_domain))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, count

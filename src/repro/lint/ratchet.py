"""The mypy ratchet: ``typed_modules.txt`` may only grow.

Instead of flipping the whole repo to strict mypy at once (a flag-day
nobody finishes), the manifest lists modules that already pass a
strict-ish mypy, and CI enforces two things:

1. every listed module type-checks under the flags below, and
2. the list never shrinks below ``min-typed-modules`` -- deleting an
   entry to dodge an error moves the floor, and the gate fails.

Locally the ratchet degrades gracefully: the container image does not
ship mypy, so without ``--require-mypy`` a missing mypy is a loud SKIP
(exit 0) after the manifest checks that need no mypy -- floor and
path existence -- still ran.  CI passes ``--require-mypy`` so the
hosted runners, which install mypy, can never silently skip.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .config import LintConfig

#: Strict-ish: full signature coverage inside the module, silence on
#: the untyped rest of the repo it imports.
MYPY_FLAGS: Tuple[str, ...] = (
    "--follow-imports=silent",
    "--ignore-missing-imports",
    "--disallow-untyped-defs",
    "--disallow-incomplete-defs",
    "--check-untyped-defs",
    "--no-implicit-optional",
    "--no-error-summary",
)


def read_manifest(path: Path) -> List[str]:
    """Module names from the manifest; ``#`` comments and blanks skipped."""
    modules: List[str] = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            modules.append(line)
    return modules


def module_path(module: str, src: Path) -> Optional[Path]:
    """Map ``repro.obs.metrics`` to its file or package directory."""
    base = src.joinpath(*module.split("."))
    if base.with_suffix(".py").is_file():
        return base.with_suffix(".py")
    if (base / "__init__.py").is_file():
        return base
    return None


def run_ratchet(
    config: LintConfig,
    root: Path,
    require_mypy: bool = False,
) -> int:
    """Enforce the ratchet; returns a process exit code."""
    manifest = root / config.typed_manifest
    src = root / "src"
    if not manifest.is_file():
        print(f"mypy-ratchet: FAIL manifest not found: {manifest}")
        return 1
    modules = read_manifest(manifest)
    if len(modules) < config.min_typed_modules:
        print(
            f"mypy-ratchet: FAIL manifest shrank: {len(modules)} modules < "
            f"floor {config.min_typed_modules} -- the typed set only grows"
        )
        return 1
    paths: List[Path] = []
    missing = False
    for mod in modules:
        p = module_path(mod, src)
        if p is None:
            print(f"mypy-ratchet: FAIL manifest entry has no source: {mod}")
            missing = True
        else:
            paths.append(p)
    if missing:
        return 1

    try:
        import mypy  # noqa: F401
    except ImportError:
        if require_mypy:
            print("mypy-ratchet: FAIL mypy is required (--require-mypy) "
                  "but not installed")
            return 1
        print(f"mypy-ratchet: SKIP mypy not installed; manifest OK "
              f"({len(modules)} modules >= floor {config.min_typed_modules})")
        return 0

    cmd = [sys.executable, "-m", "mypy", *MYPY_FLAGS,
           *(str(p) for p in paths)]
    proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True)
    if proc.stdout:
        sys.stdout.write(proc.stdout)
    if proc.stderr:
        sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"mypy-ratchet: FAIL {len(modules)} modules checked, "
              "mypy reported errors")
        return 1
    print(f"mypy-ratchet: OK {len(modules)} modules clean "
          f"(floor {config.min_typed_modules})")
    return 0

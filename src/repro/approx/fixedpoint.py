"""Switch-feasible arithmetic: fixed point, log/exp tables (Appendix C).

Programmable switches cannot multiply or divide.  The paper (and its
Appendix C) approximates these with:

* fixed-point representation of reals in ``[0, R]`` using ``m`` bits;
* ``log2`` via TCAM most-significant-bit lookup + a ``2^q``-entry table
  on the next ``q`` bits;
* exponentiation via an analogous table;
* multiply/divide as ``2^(log x +/- log y)``.

We model the exact same dataflow (MSB find, table truncation) so the
error behaviour matches what a Tofino deployment would see, and use it
inside the PINT-HPCC switch arithmetic (Appendix B).
"""

from __future__ import annotations

import math
from typing import List


class FixedPoint:
    """Fixed-point codec for reals in ``[0, R]`` with ``m`` bits.

    Integer code ``r`` represents ``R * r * 2**-m`` -- exactly the
    convention of Appendix C.
    """

    def __init__(self, scale: float = 1.0, m: int = 16) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if not 1 <= m <= 62:
            raise ValueError("m must be in [1, 62]")
        self.scale = scale
        self.m = m
        self._levels = 1 << m

    def encode(self, value: float) -> int:
        """Quantise ``value`` into its integer code (clamped to range)."""
        code = int(round(value / self.scale * self._levels))
        return max(0, min(self._levels - 1, code))

    def decode(self, code: int) -> float:
        """Recover the real value for an integer code."""
        if not 0 <= code < self._levels:
            raise ValueError("code out of range")
        return self.scale * code * (2.0 ** -self.m)

    @property
    def resolution(self) -> float:
        """The quantisation step R * 2**-m."""
        return self.scale * (2.0 ** -self.m)


class LogExpTables:
    """Data-plane style log2/exp2 via MSB-find plus q-bit lookup tables.

    Parameters
    ----------
    q:
        Table index width; tables have ``2**q`` entries, and relative
        error of a single op is at most ~1.44 * 2**-q (Appendix C).
    """

    def __init__(self, q: int = 8) -> None:
        if not 2 <= q <= 16:
            raise ValueError("q must be in [2, 16]")
        self.q = q
        #: log table over mantissas in [1, 2**(q+1)): the MSB plus the
        #: next q bits (so indices reach 2**(q+1) - 1).
        self._log_table: List[float] = [
            math.log2(idx) if idx > 0 else 0.0 for idx in range(1 << (q + 1))
        ]
        #: exp table over the fractional part, quantised to q bits.
        self._exp_table: List[float] = [
            2.0 ** (idx / float(1 << q)) for idx in range(1 << q)
        ]

    def log2(self, x: int) -> float:
        """Approximate log2 of a positive integer, table-driven.

        Finds the MSB (the TCAM step), takes the next ``q`` bits as a
        mantissa, and returns ``(msb - q) + log_table[mantissa]``.
        """
        if x <= 0:
            raise ValueError("log2 needs a positive integer")
        msb = x.bit_length() - 1
        if msb <= self.q:
            return self._log_table[x]
        mantissa = x >> (msb - self.q)
        return (msb - self.q) + self._log_table[mantissa]

    def exp2(self, y: float) -> float:
        """Approximate 2**y via integer shift + fractional table lookup."""
        ipart = math.floor(y)
        frac = y - ipart
        idx = int(frac * (1 << self.q))
        return self._exp_table[idx] * (2.0 ** ipart)

    def multiply(self, x: int, y: int) -> float:
        """x * y approximated as 2^(log2 x + log2 y)."""
        if x == 0 or y == 0:
            return 0.0
        return self.exp2(self.log2(x) + self.log2(y))

    def divide(self, x: int, y: int) -> float:
        """x / y approximated as 2^(log2 x - log2 y)."""
        if y <= 0:
            raise ValueError("divisor must be positive")
        if x == 0:
            return 0.0
        return self.exp2(self.log2(x) - self.log2(y))

    def max_relative_error(self) -> float:
        """Worst-case single-op relative error bound from Appendix C."""
        return 1.44 * (2.0 ** -self.q)

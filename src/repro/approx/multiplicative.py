"""Multiplicative value compression (paper §4.3).

Encoding a raw 32-bit value (e.g. a latency in nanoseconds) can blow a
small bit budget.  PINT instead writes ``a = [log_{(1+eps)^2} v]`` and the
Inference Module recovers ``(1+eps)^(2a)``, a (1+eps)-approximation of
``v``.  With eps = 0.0025 a 32-bit value fits in 16 bits; with
eps = 0.025 it fits in 8 bits (the HPCC use case).

The randomized-rounding variant ``[.]_R`` floors or ceils with a
probability that makes the *expected* encoded exponent exact, removing
systematic bias when many packets average the same quantity (used by
PINT-HPCC, §4.3 "Example #3").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.hashing import GlobalHash

#: Default value ceiling: an unsigned 32-bit counter.
_MAX_U32 = float(2**32 - 1)


class MultiplicativeCompressor:
    """Compress positive values onto an integer exponent grid.

    Parameters
    ----------
    epsilon:
        Target multiplicative error; the decoded value is within a
        ``(1 + epsilon)`` factor of the original (up to rounding of the
        exponent).
    bits:
        Optional width check: raise if an encoded exponent cannot fit.
    max_value:
        Largest value that must be representable (defaults to 2**32 - 1,
        the INT value width).
    """

    def __init__(
        self,
        epsilon: float,
        bits: Optional[int] = None,
        max_value: float = _MAX_U32,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        #: log base: (1 + eps)^2, so decoded error is one eps-step.
        self.base = (1.0 + epsilon) ** 2
        self._log_base = math.log(self.base)
        self.bits = bits
        self.max_value = max_value
        #: Lazily grown decode lookup table; entries are built with the
        #: scalar ``base ** code`` so decode_array is bit-identical.
        self._decode_table = np.empty(0, dtype=np.float64)
        if bits is not None:
            needed = self.encode(max_value)
            if needed >= (1 << bits):
                raise ValueError(
                    f"{bits} bits cannot hold exponent {needed} for "
                    f"max_value={max_value} at epsilon={epsilon}"
                )

    def encode(self, value: float) -> int:
        """Deterministic encoding: round exponent to nearest integer."""
        if value < 0:
            raise ValueError("multiplicative compression needs value >= 0")
        if value < 1.0:
            return 0
        return int(round(math.log(value) / self._log_base))

    def encode_randomized(
        self, value: float, grid: GlobalHash, *key_parts
    ) -> int:
        """Randomized rounding ``[.]_R``: unbiased exponent in expectation.

        The floor/ceil coin is drawn from the global hash so that the
        encoding stays deterministic per packet (replayable by tests and
        by the Inference Module).
        """
        if value < 0:
            raise ValueError("multiplicative compression needs value >= 0")
        if value < 1.0:
            return 0
        exact = math.log(value) / self._log_base
        lo = math.floor(exact)
        frac = exact - lo
        return int(lo + (1 if grid.uniform(*key_parts) < frac else 0))

    def encode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode`, lane-for-lane identical.

        Relies on NumPy and ``math`` sharing libm for float64 ``log``
        and on both rounding half-even, so each lane reproduces the
        scalar exponent bit-for-bit (property-tested).
        """
        vals = np.asarray(values, dtype=np.float64)
        if np.any(vals < 0):
            raise ValueError("multiplicative compression needs value >= 0")
        small = vals < 1.0
        exact = np.log(np.where(small, 1.0, vals)) / self._log_base
        return np.where(small, 0, np.round(exact).astype(np.int64))

    def encode_randomized_array(
        self, values: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`encode_randomized` with caller-drawn coins.

        ``uniforms`` supplies one [0, 1) coin per lane -- typically
        ``grid.uniform_lanes(pids, hop)``, the same keyed draw the
        scalar path makes -- so feeding the scalar method's coins
        reproduces its codes lane-for-lane.
        """
        vals = np.asarray(values, dtype=np.float64)
        if np.any(vals < 0):
            raise ValueError("multiplicative compression needs value >= 0")
        u = np.asarray(uniforms, dtype=np.float64)
        small = vals < 1.0
        exact = np.log(np.where(small, 1.0, vals)) / self._log_base
        lo = np.floor(exact)
        code = (lo + (u < exact - lo)).astype(np.int64)
        return np.where(small, 0, code)

    def decode(self, code: int) -> float:
        """Recover the (1+eps)-approximate value from its exponent."""
        if code < 0:
            raise ValueError("codes are non-negative")
        return self.base ** code

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decode`, lane-for-lane bit-identical.

        Exponent grids are tiny (``2**bits`` codes), so decoding is a
        table gather; the table entries come from the scalar
        ``base ** code`` rather than ``np.power`` (whose SIMD path may
        round differently), which is what makes the lanes exact.
        """
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        if int(arr.min()) < 0:
            raise ValueError("codes are non-negative")
        hi = int(arr.max())
        if hi >= self._decode_table.size:
            self._decode_table = np.asarray(
                [self.base ** code for code in range(hi + 1)],
                dtype=np.float64,
            )
        return self._decode_table[arr]

    def relative_error(self, value: float) -> float:
        """Relative error |decode(encode(v)) - v| / v for ``v > 0``."""
        if value <= 0:
            raise ValueError("value must be positive")
        return abs(self.decode(self.encode(value)) - value) / value


def epsilon_for_bits(bits: int, max_value: float = _MAX_U32) -> float:
    """Smallest epsilon so that ``max_value`` encodes within ``bits`` bits.

    Inverts the ``(1+eps)^2`` grid accounting for nearest-integer
    rounding: we need ``round(log_{(1+eps)^2} max_value) <= 2**bits - 1``,
    i.e. ``log(max_value) / (2 ln(1+eps)) <= 2**bits - 1/2``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    exponent_cap = 2.0 * (2 ** bits) - 1.0
    return float(math.exp(math.log(max_value) / exponent_cap) - 1.0)

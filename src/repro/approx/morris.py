"""Randomized counting (Morris counter) for per-packet sums (paper §4.3).

A per-packet aggregation over a k-hop path with q-bit values may need
``q + log k`` bits for a sum -- too many for a tight budget.  Morris's
classic trick [55] keeps only ``log log`` bits: the counter ``c`` is
incremented with probability ``(1+a)^-c`` and estimates
``((1+a)^c - 1) / a``.  PINT cites this for estimating e.g. the number
of high-latency hops within a (1+eps) factor.
"""

from __future__ import annotations

import math

from repro.hashing import GlobalHash


class MorrisCounter:
    """Approximate counter storing only its exponent.

    Parameters
    ----------
    a:
        Growth parameter; smaller ``a`` means more accuracy and more
        possible exponent values.  The standard deviation of the
        estimate after n increments is ~ sqrt(a/2) * n.
    grid:
        Global hash supplying the probabilistic increments; keys make
        the process deterministic per (packet, hop) for replayability.
    """

    def __init__(self, a: float = 1.0, grid: GlobalHash = None) -> None:
        if a <= 0:
            raise ValueError("a must be positive")
        self.a = a
        self.grid = grid if grid is not None else GlobalHash(0, "morris")
        self.exponent = 0
        self._ticks = 0

    def increment(self, *key_parts) -> None:
        """Probabilistically bump the exponent (one observed event)."""
        self._ticks += 1
        p = (1.0 + self.a) ** (-self.exponent)
        if self.grid.uniform(self._ticks, self.exponent, *key_parts) < p:
            self.exponent += 1

    def estimate(self) -> float:
        """Unbiased estimate of the number of increments so far."""
        return ((1.0 + self.a) ** self.exponent - 1.0) / self.a

    def bits_needed(self, max_count: int) -> int:
        """Bits needed to store the exponent for counts up to max_count."""
        max_exp = math.log(max_count * self.a + 1.0, 1.0 + self.a)
        return max(1, math.ceil(math.log2(max_exp + 1.0)))


def morris_bits_bound(eps: float, q: int, k: int) -> int:
    """Paper §4.3 bit bound: O(log eps^-1 + log log(2^q * k * eps^2)).

    Returns the concrete (constant-1) evaluation of that expression,
    used by tests to check our counters stay within budget.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    inner = (2.0 ** q) * k * eps * eps
    term = math.log2(max(2.0, math.log2(max(2.0, inner))))
    return math.ceil(math.log2(1.0 / eps) + term)

"""Additive value compression (paper §4.3).

When bounding the *maximal* error matters more than resolving small
values, PINT encodes ``a = [v / (2*Delta)]`` and decodes ``2*Delta*a``,
guaranteeing additive error at most ``Delta`` while saving
``floor(log2 Delta)`` bits relative to the raw encoding.
"""

from __future__ import annotations

import math

#: Default value ceiling: an unsigned 32-bit counter.
_MAX_U32 = float(2**32 - 1)


class AdditiveCompressor:
    """Compress values onto a uniform grid with additive error ``delta``.

    Parameters
    ----------
    delta:
        Maximum absolute error of a decoded value.
    bits:
        Optional width check against ``max_value``.
    max_value:
        Largest value that must be representable.
    """

    def __init__(self, delta: float, bits=None, max_value: float = _MAX_U32):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.step = 2.0 * delta
        self.bits = bits
        self.max_value = max_value
        if bits is not None and self.encode(max_value) >= (1 << bits):
            raise ValueError(
                f"{bits} bits cannot hold code for max_value={max_value} "
                f"at delta={delta}"
            )

    def encode(self, value: float) -> int:
        """Round ``value`` to its nearest grid index."""
        if value < 0:
            raise ValueError("additive compression needs value >= 0")
        return int(round(value / self.step))

    def decode(self, code: int) -> float:
        """Recover the grid value for ``code``."""
        if code < 0:
            raise ValueError("codes are non-negative")
        return self.step * code

    def absolute_error(self, value: float) -> float:
        """|decode(encode(v)) - v|; always <= delta."""
        return abs(self.decode(self.encode(value)) - value)

    def bits_saved(self) -> int:
        """Header bits saved relative to a raw encoding: floor(log2 delta)."""
        return max(0, int(math.floor(math.log2(self.delta))))


def delta_for_bits(bits: int, max_value: float) -> float:
    """Smallest delta so ``max_value`` encodes within ``bits`` bits."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return max_value / (2.0 * ((1 << bits) - 1))

"""Value-approximation toolkit (paper §4.3 and Appendices B/C).

* :class:`MultiplicativeCompressor` -- (1+eps) log-grid encoding, with
  the randomized-rounding ``[.]_R`` variant used by PINT-HPCC.
* :class:`AdditiveCompressor` -- uniform-grid encoding with bounded
  absolute error.
* :class:`MorrisCounter` -- randomized counting for per-packet sums.
* :class:`FixedPoint`, :class:`LogExpTables` -- switch-feasible
  arithmetic used by the HPCC utilisation update.
"""

from repro.approx.additive import AdditiveCompressor, delta_for_bits
from repro.approx.fixedpoint import FixedPoint, LogExpTables
from repro.approx.morris import MorrisCounter, morris_bits_bound
from repro.approx.multiplicative import MultiplicativeCompressor, epsilon_for_bits

__all__ = [
    "MultiplicativeCompressor",
    "epsilon_for_bits",
    "AdditiveCompressor",
    "delta_for_bits",
    "MorrisCounter",
    "morris_bits_bound",
    "FixedPoint",
    "LogExpTables",
]

"""Classic INT: per-hop value embedding and its overhead model (paper §2).

INT adds an 8-byte metadata header plus one 4-byte word per requested
value per hop, so overhead grows linearly in both path length and value
count -- the cost PINT eliminates.  This module provides:

* the exact byte-overhead arithmetic of §2 (28B..108B for 1..5 values
  on a 5-hop path);
* a lossless "collector": what INT reports per packet (used as ground
  truth against PINT's approximations);
* the serialisation latency model of §2 item 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.values import HopView, MetadataType

#: INT metadata header bytes (telemetry instructions vector).
HEADER_BYTES = 8
#: Each metadata value is a 4-byte number.
VALUE_BYTES = 4


def int_overhead_bytes(num_values: int, hops: int, with_header: bool = True) -> int:
    """Bytes INT adds to a packet: header + 4B * values * hops.

    ``int_overhead_bytes(1, 5)`` = 28, the paper's minimum for a 5-hop
    DC topology; ``int_overhead_bytes(5, 5)`` = 108, its maximum.
    """
    if num_values < 1 or hops < 1:
        raise ValueError("num_values and hops must be >= 1")
    header = HEADER_BYTES if with_header else 0
    return header + VALUE_BYTES * num_values * hops


def overhead_fraction(num_values: int, hops: int, mtu: int = 1500) -> float:
    """Overhead as a fraction of an MTU-sized packet (§2's percentages)."""
    return int_overhead_bytes(num_values, hops) / mtu


def serialization_delay_ns(extra_bytes: int, rate_gbps: float) -> float:
    """Extra serialisation latency of ``extra_bytes`` at a line rate.

    §2 item 2: 48 extra bytes cost ~38-76ns at 10G and ~4-6ns at 100G
    (the paper counts both interfaces of a hop; we return one side).
    """
    if extra_bytes < 0 or rate_gbps <= 0:
        raise ValueError("need extra_bytes >= 0 and positive rate")
    return extra_bytes * 8.0 / rate_gbps


@dataclass
class INTCollector:
    """Lossless per-packet INT collection (the ground-truth baseline).

    ``collect`` returns every requested value at every hop, exactly what
    the INT sink would export, and tracks cumulative byte overhead.
    """

    values: Sequence[MetadataType]
    bytes_added: int = 0
    packets: int = 0
    reports: List[List[Dict[str, float]]] = field(default_factory=list)

    def collect(self, hops: Sequence[HopView]) -> List[Dict[str, float]]:
        """Run one packet: per-hop dict of requested values."""
        report = [
            {v.value: hop.get(v) for v in self.values} for hop in hops
        ]
        self.bytes_added += int_overhead_bytes(len(self.values), len(hops))
        self.packets += 1
        self.reports.append(report)
        return report

    def average_overhead(self) -> float:
        """Mean bytes added per packet so far."""
        return self.bytes_added / self.packets if self.packets else 0.0

"""PPM: Probabilistic Packet Marking for IP traceback (Savage et al. [65]).

The Fig. 10 comparator.  Savage's compressed edge-fragment sampling
splits each (edge, distance) mark into 8 fragments carried in the
16-bit IP-ID field; the victim reconstructs the path once every
fragment of every hop has arrived.  We implement the *improved* variant
the paper compares against -- marking via Reservoir Sampling [63], so
each packet carries a uniformly-chosen hop's fragment instead of the
geometrically-biased classic marking.

The per-packet overhead is 16 bits (fragment value + offset + distance),
matching the paper's statement that "PPM and AMS both have an overhead
of 16 bits per packet".
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.coding.simulate import TrialStats
from repro.exceptions import DecodeTimeoutError
from repro.hashing import GlobalHash, reservoir_carrier


class PPMTraceback:
    """Fragment-marking traceback simulator.

    Parameters
    ----------
    num_fragments:
        Savage's scheme uses 8 fragments of the 64-bit edge digest.
    seed:
        Global-hash seed (marking and fragment choice).
    """

    OVERHEAD_BITS = 16

    def __init__(self, num_fragments: int = 8, seed: int = 0) -> None:
        if num_fragments < 1:
            raise ValueError("num_fragments must be >= 1")
        self.num_fragments = num_fragments
        self.g = GlobalHash(seed, "ppm-mark")
        self.frag_hash = GlobalHash(seed, "ppm-frag")

    def mark_of(self, packet_id: int, path_len: int) -> Tuple[int, int]:
        """(hop, fragment) the packet delivers: reservoir-uniform hop,
        hash-chosen fragment."""
        hop = reservoir_carrier(self.g, packet_id, path_len)
        frag = self.frag_hash.choice(self.num_fragments, packet_id)
        return hop, frag

    def packets_to_reconstruct(
        self, path_len: int, seed_offset: int = 0, max_packets: int = 10_000_000
    ) -> int:
        """Packets until every (hop, fragment) pair has been received."""
        needed = path_len * self.num_fragments
        seen: Set[Tuple[int, int]] = set()
        for pid in range(1, max_packets + 1):
            seen.add(self.mark_of(pid + seed_offset * max_packets, path_len))
            if len(seen) == needed:
                return pid
        raise DecodeTimeoutError("traceback did not complete")

    def trial_stats(
        self, path_len: int, trials: int = 30, seed_offset: int = 0
    ) -> TrialStats:
        """Packets-to-reconstruct distribution over independent flows."""
        counts = [
            self.packets_to_reconstruct(path_len, seed_offset + t)
            for t in range(trials)
        ]
        return TrialStats(counts)

    def expected_packets(self, path_len: int) -> float:
        """Coupon-collector expectation over path_len * F coupons."""
        n = path_len * self.num_fragments
        return n * sum(1.0 / i for i in range(1, n + 1))

"""Baselines PINT is evaluated against.

* :class:`PPMTraceback` -- Savage et al. fragment marking (Fig. 10).
* :class:`AMSTraceback` -- Song-Perrig AMS2, m = 5 or 6 (Fig. 10).
* :mod:`repro.baselines.int_classic` -- classic INT collection and the
  §2 overhead arithmetic (Figs. 1-2, 7).
"""

from repro.baselines.ams import AMSTraceback
from repro.baselines.int_classic import (
    INTCollector,
    int_overhead_bytes,
    overhead_fraction,
    serialization_delay_ns,
)
from repro.baselines.ppm import PPMTraceback

__all__ = [
    "PPMTraceback",
    "AMSTraceback",
    "INTCollector",
    "int_overhead_bytes",
    "overhead_fraction",
    "serialization_delay_ns",
]

"""AMS2: Advanced Marking Scheme II (Song & Perrig [70]).

The second Fig. 10 comparator.  AMS2 replaces PPM's fragments with an
11-bit hash of the router address: each mark is (distance, f, H_f(R))
where ``f`` selects one of ``m`` independent hash families.  The victim
knows the router universe (its network map) and, per hop, intersects
the candidate routers consistent with every received (f, value) pair;
``m = 6`` disambiguates better than ``m = 5`` (fewer false positives)
but needs more packets, exactly the trade-off the paper cites.

As with PPM we use the reservoir-improved marking [63]: each packet
carries a uniformly-chosen hop's mark.  Overhead: 16 bits.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.coding.simulate import TrialStats
from repro.exceptions import DecodeTimeoutError
from repro.hashing import GlobalHash, reservoir_carrier


class AMSTraceback:
    """Hash-marking traceback with candidate elimination.

    Parameters
    ----------
    universe:
        All router/switch IDs in the network (the victim's map).
    m:
        Number of hash families (5 or 6 in the paper).
    hash_bits:
        Mark hash width (11 bits in AMS2).
    """

    OVERHEAD_BITS = 16

    def __init__(
        self,
        universe: Sequence[int],
        m: int = 5,
        hash_bits: int = 11,
        seed: int = 0,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.universe = np.asarray(sorted(set(universe)), dtype=np.int64)
        self.m = m
        self.hash_bits = hash_bits
        self.g = GlobalHash(seed, "ams-mark")
        self.family_select = GlobalHash(seed, "ams-family")
        self.families = [GlobalHash(seed, f"ams-h{f}") for f in range(m)]

    def mark_of(
        self, packet_id: int, path: Sequence[int]
    ) -> Tuple[int, int, int]:
        """(hop, family, hash value) delivered by this packet."""
        hop = reservoir_carrier(self.g, packet_id, len(path))
        family = self.family_select.choice(self.m, packet_id)
        value = self.families[family].bits(self.hash_bits, path[hop - 1])
        return hop, family, value

    def packets_to_identify(
        self, path: Sequence[int], seed_offset: int = 0,
        max_packets: int = 10_000_000,
    ) -> int:
        """Packets until every hop's router is identified.

        AMS2 accepts a router for a hop only after marks from *all m*
        hash families have arrived and exactly one universe router
        matches every (family, value) pair: partial family coverage
        would admit too many hash-colliding impostors on an
        internet-scale map.  Requiring all m families is what drives
        the scheme's packet cost (a k*m coupon collector) and the
        m = 5 vs m = 6 false-positive/packet-count trade-off.
        """
        k = len(path)
        marks: Dict[int, Dict[int, int]] = {hop: {} for hop in range(1, k + 1)}
        unresolved = set(range(1, k + 1))
        pid_base = seed_offset * max_packets
        for pid in range(1, max_packets + 1):
            hop, family, value = self.mark_of(pid_base + pid, path)
            if hop not in unresolved or family in marks[hop]:
                continue
            marks[hop][family] = value
            if len(marks[hop]) == self.m:
                if self.candidates_matching(marks[hop]).size == 1:
                    unresolved.discard(hop)
                    if not unresolved:
                        return pid
        raise DecodeTimeoutError("traceback did not complete")

    def candidates_matching(self, family_values: Dict[int, int]) -> np.ndarray:
        """Universe routers consistent with every received mark."""
        cands = self.universe
        for family, value in family_values.items():
            hashed = self.families[family].bits_array(self.hash_bits, cands)
            cands = cands[hashed == np.uint64(value)]
        return cands

    def false_positive_probability(self, samples: int = 200, seed: int = 1) -> float:
        """Measured chance a random router collides with another on all
        m families (the m=5 vs m=6 accuracy axis)."""
        collisions = 0
        for idx in range(samples):
            router = int(self.universe[idx % self.universe.size])
            values = {
                f: self.families[f].bits(self.hash_bits, router)
                for f in range(self.m)
            }
            if self.candidates_matching(values).size > 1:
                collisions += 1
        return collisions / samples

    def trial_stats(
        self, path: Sequence[int], trials: int = 30, seed_offset: int = 0
    ) -> TrialStats:
        """Packets-to-identify distribution over independent flows."""
        counts = [
            self.packets_to_identify(path, seed_offset + t)
            for t in range(trials)
        ]
        return TrialStats(counts)

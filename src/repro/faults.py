"""Seeded, deterministic fault injection for the collection pipeline.

Chaos that reproduces: a :class:`FaultPlan` is a list of
:class:`FaultSpec` triggers -- *kill worker 1 after its 3rd batch*,
*corrupt the 2nd checkpoint write*, *truncate wire frame 5* -- that
the supervised :class:`~repro.collector.parallel.ParallelCollector`
and the :class:`~repro.service.server.CollectorServer` consult at
well-defined points.  Triggers are ordinal-based (per-worker message
counts, per-worker checkpoint counts, global frame counts), so the
same plan against the same workload fires at the same points every
run -- the property that lets ``benchmarks/bench_fault_recovery.py``
assert *bit-identical* recovery rather than "it didn't crash".

Every fired fault is appended to :attr:`FaultPlan.fired` as a
``(kind, where, ordinal)`` tuple, so tests assert the fault actually
happened (a chaos test whose fault silently never fired proves
nothing).  Plans are stateful (fire-once bookkeeping, ordinal
counters): build a fresh plan -- or :meth:`FaultPlan.reset` -- per
run.

The fault vocabulary:

========================  =================================================
``kill_worker(w, at)``    SIGKILL worker ``w`` right after its ``at``-th
                          message is piped (it may die mid-fold).
``wedge_worker(w, at)``   SIGSTOP worker ``w`` after its ``at``-th message:
                          alive but not reading -- the supervisor's wedge
                          timeout, not its death sentinel, must catch it.
``drop_checkpoint(w)``    The worker's ``at``-th checkpoint reply (or every
                          one, ``at=None``) vanishes, as if the write never
                          landed; the parent must keep the previous blob
                          *and* the journal.
``corrupt_checkpoint(w)`` Same, but the blob arrives truncated -- the
                          CRC/length check must reject it.
``corrupt_frame(at)``     Flip the first byte of the ``at``-th wire frame
                          (breaks the magic; the server counts
                          ``dropped_bad_frame``).
``truncate_frame(at)``    Deliver only the first half of the ``at``-th wire
                          frame (a torn datagram).
``drop_frame(at)``        The ``at``-th wire frame never arrives.
``stall_queue(at, s)``    The ingest thread sleeps ``s`` seconds before
                          folding its ``at``-th frame (backpressure window).
========================  =================================================
"""

from __future__ import annotations

import os
import random
import signal
from typing import List, Optional, Sequence, Tuple

#: Fault kinds grouped by the injection point that consumes them.
_WORKER_KINDS = ("kill", "wedge")
_CHECKPOINT_KINDS = ("drop_checkpoint", "corrupt_checkpoint")
_FRAME_KINDS = ("corrupt_frame", "truncate_frame", "drop_frame")


class FaultSpec:
    """One trigger: a fault kind plus where/when it fires.

    ``at`` is a 1-based ordinal in the kind's own domain (messages
    sent to that worker, checkpoints of that worker, frames seen by
    the server).  ``at=None`` means *every* occurrence -- only
    meaningful for the checkpoint/frame kinds; kill/wedge always fire
    once.
    """

    __slots__ = ("kind", "worker", "at", "seconds", "_spent")

    def __init__(self, kind: str, worker: Optional[int] = None,
                 at: Optional[int] = None, seconds: float = 0.0) -> None:
        self.kind = kind
        self.worker = worker
        self.at = at
        self.seconds = seconds
        self._spent = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"worker={self.worker}, " if self.worker is not None else ""
        return f"FaultSpec({self.kind!r}, {where}at={self.at})"

    def _matches(self, ordinal: int) -> bool:
        if self._spent:
            return False
        if self.at is None:
            return True  # recurring: never spent
        if ordinal == self.at:
            self._spent = True
            return True
        return False


def kill_worker(worker: int, at_batch: int) -> FaultSpec:
    """SIGKILL ``worker`` right after its ``at_batch``-th message."""
    return FaultSpec("kill", worker=worker, at=at_batch)


def wedge_worker(worker: int, at_batch: int) -> FaultSpec:
    """SIGSTOP ``worker`` after its ``at_batch``-th message."""
    return FaultSpec("wedge", worker=worker, at=at_batch)


def drop_checkpoint(worker: int, at: Optional[int] = None) -> FaultSpec:
    """Lose ``worker``'s ``at``-th checkpoint write (every one if None)."""
    return FaultSpec("drop_checkpoint", worker=worker, at=at)


def corrupt_checkpoint(worker: int, at: Optional[int] = None) -> FaultSpec:
    """Truncate ``worker``'s ``at``-th checkpoint blob mid-write."""
    return FaultSpec("corrupt_checkpoint", worker=worker, at=at)


def corrupt_frame(at: int) -> FaultSpec:
    """Flip the first byte of the ``at``-th wire frame."""
    return FaultSpec("corrupt_frame", at=at)


def truncate_frame(at: int) -> FaultSpec:
    """Deliver only half of the ``at``-th wire frame."""
    return FaultSpec("truncate_frame", at=at)


def drop_frame(at: int) -> FaultSpec:
    """The ``at``-th wire frame never arrives."""
    return FaultSpec("drop_frame", at=at)


def stall_queue(at: int, seconds: float) -> FaultSpec:
    """Sleep ``seconds`` before folding the ``at``-th admitted frame."""
    return FaultSpec("stall_queue", at=at, seconds=seconds)


class FaultPlan:
    """A deterministic schedule of injected faults.

    Consumed by :class:`~repro.collector.parallel.ParallelCollector`
    (worker + checkpoint kinds) and :class:`~repro.service.server.
    CollectorServer` (frame + stall kinds); a plan may carry both and
    each consumer reads only its own domain.
    """

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = seed
        self.specs: List[FaultSpec] = list(faults)
        #: Log of fired faults: ``(kind, where, ordinal)`` tuples in
        #: firing order -- the assertion surface for chaos tests.
        self.fired: List[Tuple[str, str, int]] = []
        self._frames_seen = 0
        self._frames_folded = 0

    @classmethod
    def chaos(cls, workers: int, max_batch: int, seed: int = 0,
              kills: int = 1) -> "FaultPlan":
        """A seeded random kill schedule (the chaos-harness entry).

        Picks ``kills`` distinct workers uniformly and a kill point
        uniformly in ``[1, max_batch]`` for each -- same seed, same
        schedule, every run.
        """
        if kills > workers:
            raise ValueError("kills must not exceed workers")
        rng = random.Random(seed)
        victims = rng.sample(range(workers), kills)
        return cls(
            [kill_worker(w, rng.randint(1, max_batch)) for w in victims],
            seed=seed,
        )

    def reset(self) -> None:
        """Rearm every trigger and clear the log (reuse across runs)."""
        for spec in self.specs:
            spec._spent = False
        self.fired = []
        self._frames_seen = 0
        self._frames_folded = 0

    # -- worker domain (ParallelCollector) ---------------------------------

    def worker_faults(self, worker: int, ordinal: int) -> List[FaultSpec]:
        """Kill/wedge specs due after ``worker``'s ``ordinal``-th message."""
        due = [
            s for s in self.specs
            if s.kind in _WORKER_KINDS and s.worker == worker
            and s._matches(ordinal)
        ]
        for s in due:
            self.fired.append((s.kind, f"worker={worker}", ordinal))
        return due

    def fire_worker_fault(self, spec: FaultSpec, pid: int) -> None:
        """Deliver one kill/wedge to a live worker process."""
        sig = signal.SIGKILL if spec.kind == "kill" else signal.SIGSTOP
        try:
            os.kill(pid, sig)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass

    def checkpoint_fault(self, worker: int, ordinal: int) -> Optional[str]:
        """The fate of ``worker``'s ``ordinal``-th checkpoint write.

        Returns ``"drop"``, ``"corrupt"`` or None (write lands clean).
        """
        for s in self.specs:
            if s.kind in _CHECKPOINT_KINDS and s.worker == worker \
                    and s._matches(ordinal):
                action = (
                    "drop" if s.kind == "drop_checkpoint" else "corrupt"
                )
                self.fired.append((s.kind, f"worker={worker}", ordinal))
                return action
        return None

    # -- frame domain (CollectorServer) ------------------------------------

    def mutate_frame(self, data: bytes) -> Optional[bytes]:
        """Apply any frame fault to the next wire frame.

        Returns the (possibly mutated) bytes, or None when the frame
        is dropped outright.  Counts every frame it sees, so ordinals
        are per-server-lifetime.
        """
        self._frames_seen += 1
        ordinal = self._frames_seen
        for s in self.specs:
            if s.kind not in _FRAME_KINDS or not s._matches(ordinal):
                continue
            self.fired.append((s.kind, "frame", ordinal))
            if s.kind == "drop_frame":
                return None
            if s.kind == "truncate_frame":
                return data[: max(1, len(data) // 2)]
            # corrupt_frame: break the magic so the server *counts*
            # the corruption instead of silently folding wrong data.
            return bytes([data[0] ^ 0xFF]) + data[1:]
        return data

    def stall_seconds(self) -> float:
        """Pre-fold stall for the next admitted frame (0.0 = none)."""
        self._frames_folded += 1
        ordinal = self._frames_folded
        for s in self.specs:
            if s.kind == "stall_queue" and s._matches(ordinal):
                self.fired.append((s.kind, "queue", ordinal))
                return s.seconds
        return 0.0


__all__ = [
    "FaultPlan",
    "FaultSpec",
    "corrupt_checkpoint",
    "corrupt_frame",
    "drop_checkpoint",
    "drop_frame",
    "kill_worker",
    "stall_queue",
    "truncate_frame",
    "wedge_worker",
]

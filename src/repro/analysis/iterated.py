"""Iterated-logarithm helpers for the Multi-layer scheme (Appendix A.2).

The multi-layer encoding's parameters are expressed with Knuth's
up-arrow tower ``e ↑↑ l`` and the iterated logarithm ``log* d``:

* number of XOR layers: L = 1 if d <= 15, L = 2 for 16 <= d <= e^e^e;
* layer-l XOR probability: p_l = (e ↑↑ (l-1)) / d;
* layer-0 (Baseline) share: tau = loglog* d / (1 + loglog* d).
"""

from __future__ import annotations

import math


def log_star(x: float, base: float = 2.0) -> int:
    """Iterated logarithm: how many logs until the value drops to <= 1."""
    if x <= 0:
        raise ValueError("log* needs a positive argument")
    count = 0
    while x > 1.0:
        x = math.log(x, base)
        count += 1
    return count


def log_log_star(x: float, base: float = 2.0) -> float:
    """log2(log* x), floored at a small positive constant.

    The paper's tau = loglog*d / (1 + loglog*d) needs a positive value
    even for tiny d (where log* d = 1 and the raw log would be 0); we
    clamp to 0.5 which reproduces the paper's "tau close to 1" regime
    for realistic d while staying well-defined everywhere.
    """
    return max(0.5, math.log2(max(2, log_star(x, base))))


def tower(base: float, height: int) -> float:
    """Knuth up-arrow ``base ↑↑ height`` (tower of exponentials)."""
    if height < 0:
        raise ValueError("height must be >= 0")
    value = 1.0
    for _ in range(height):
        value = base ** value
        if value > 1e300:
            return math.inf
    return value


def num_xor_layers(d: int) -> int:
    """Number of XOR layers L for typical path length d (Appendix A.2).

    L = 1 if d <= floor(e^e) = 15, L = 2 if 16 <= d <= e^e^e (~3.8M),
    and grows with one more layer per tower level beyond that.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    level = 1
    while tower(math.e, level + 1) < d:
        level += 1
    return level


def layer_probability(layer: int, d: int) -> float:
    """XOR probability of layer ``layer`` (1-based): (e ↑↑ (layer-1)) / d."""
    if layer < 1:
        raise ValueError("XOR layers are 1-based")
    if d < 1:
        raise ValueError("d must be >= 1")
    return min(1.0, tower(math.e, layer - 1) / d)


def baseline_share(d: int) -> float:
    """tau: fraction of packets sent to the Baseline layer (Algorithm 1)."""
    lls = log_log_star(d)
    return lls / (1.0 + lls)


def hybrid_xor_probability(d: int) -> float:
    """Interleaved (single-XOR-layer) scheme probability (§4.2).

    log log d / log d (natural logs), falling back to 1 / log d when
    log log d < 1 -- the paper's footnote 8, which kicks in exactly for
    d <= 15 = floor(e^e) under natural logarithms.
    """
    if d < 2:
        return 1.0
    log_d = math.log(d)
    log_log_d = math.log(log_d) if log_d > 1 else 0.0
    if log_log_d < 1.0:
        return min(1.0, 1.0 / log_d)
    return min(1.0, log_log_d / log_d)

"""Coupon-collector mathematics used throughout Appendix A.

The Baseline scheme's packet count is a coupon-collector process
(each packet carries a uniform hop); the multi-copy requirements of the
XOR layers follow the Double Dixie Cup problem [59]; the partial
collection bound (Theorem 8) controls the "all but psi*k hops" phase.
These closed forms are the reference curves our simulations are tested
against.
"""

from __future__ import annotations

import math


def harmonic(n: int) -> float:
    """H_n = 1 + 1/2 + ... + 1/n (exact summation; n is small here)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return sum(1.0 / i for i in range(1, n + 1))


def coupon_collector_mean(k: int) -> float:
    """Expected samples to collect all of k uniform coupons: k * H_k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return k * harmonic(k)


def coupon_collector_quantile(k: int, q: float) -> float:
    """Approximate q-quantile of the coupon-collector time.

    Uses P[T <= t] ~= exp(-k e^{-t/k}) (the Gumbel limit), solved for t:
    t = k * (ln k - ln ln (1/q)).  For k = 25, q = 0.5 this gives ~89
    packets and q = 0.99 gives ~189, matching the figures quoted in
    §4.2 of the paper.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    return k * (math.log(k) - math.log(math.log(1.0 / q)))


def partial_coupon_mean(r: int, n: int) -> float:
    """Expected samples to see n distinct coupons out of r: r(H_r - H_{r-n})."""
    if not 0 <= n <= r:
        raise ValueError("need 0 <= n <= r")
    return r * (harmonic(r) - harmonic(r - n))


def partial_coupon_tail(r: int, n: int, delta: float) -> float:
    """Theorem 8: w.p. 1 - delta, n-of-r collection needs at most this many.

    E[A] + r ln(1/delta)/(r-n) + sqrt(2 r E[A] ln(1/delta)) / (r-n).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if n >= r:
        raise ValueError("tail bound needs n < r")
    mean = partial_coupon_mean(r, n)
    ln_d = math.log(1.0 / delta)
    return mean + r * ln_d / (r - n) + math.sqrt(2.0 * r * mean * ln_d) / (r - n)


def all_but_psi_fraction(k: int, psi: float, delta: float) -> float:
    """Lemma 9: samples to collect all but a psi-fraction of k coupons.

    k ln(1/psi) + (1/psi) ln(1/delta) + sqrt(2 k (1/psi) ln(1/psi) ln(1/delta)).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < psi <= 0.5:
        raise ValueError("psi must be in (0, 1/2]")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    ln_psi = math.log(1.0 / psi)
    ln_d = math.log(1.0 / delta)
    return k * ln_psi + ln_d / psi + math.sqrt(2.0 * k * ln_psi * ln_d / psi)


def double_dixie_cup_mean(k: int, copies: int) -> float:
    """Expected samples to get ``copies`` of each of k coupons (Newman [59]).

    Asymptotically k (ln k + (copies-1) ln ln k + O(1)); we evaluate the
    dominant terms, which is accurate for the k, copies used here.
    """
    if k < 1 or copies < 1:
        raise ValueError("k and copies must be >= 1")
    if k == 1:
        return float(copies)
    if copies == 1:
        return coupon_collector_mean(k)
    return k * (math.log(k) + (copies - 1) * math.log(max(math.e, math.log(k))))


def double_dixie_cup_tail(k: int, copies: int, delta: float) -> float:
    """Theorem 5: samples so each of k coupons has >= ``copies`` w.p. 1-delta."""
    if k < 1 or copies < 1:
        raise ValueError("k and copies must be >= 1")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    z1 = copies - 1 + math.log(k / delta)
    inner = max(0.0, z1 * z1 - (copies - 1) ** 2 / 4.0)
    return k * (z1 + math.sqrt(inner))


def binomial_success_tail(k: int, p: float, delta: float) -> float:
    """Lemma 4: trials N so Bin(N, p) > k with probability 1 - delta.

    N = (k + 2 ln(1/delta) + sqrt(2 k ln(1/delta))) / p.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    ln_d = math.log(1.0 / delta)
    return (k + 2.0 * ln_d + math.sqrt(2.0 * k * ln_d)) / p

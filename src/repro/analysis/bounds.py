"""Closed-form statements of the paper's theorems (for tests/benchmarks).

These functions evaluate the bounds of Theorems 1-3 so that simulations
can be checked against them: measured packet counts should sit at or
below the theoretical curves (which carry explicit constants from
Appendix A where the paper gives them).
"""

from __future__ import annotations

import math

from repro.analysis.coupon import coupon_collector_mean
from repro.analysis.iterated import log_star


def theorem1_packets(k: int, eps: float) -> float:
    """Theorem 1: O(k / eps^2) packets for +-eps per-hop quantiles.

    Constant taken from the Chernoff argument of Appendix A.1 with a 5%
    failure budget.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    per_hop = math.log(2.0 / 0.05) / (2.0 * eps * eps)
    return k * per_hop


def theorem1_space(k: int, eps: float) -> float:
    """Theorem 1: O(k / eps) per-flow storage (one sketch per hop)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return k / eps


def theorem2_packets(k: int, eps: float) -> float:
    """Theorem 2: O(k / eps^2) packets for theta-frequent values."""
    return theorem1_packets(k, eps)


def theorem3_packets(k: int, d: int = None) -> float:
    """Theorem 3: k (log log* k + c) packets decode a k-block message.

    The o(1) term hides an additive O(k); Appendix A.3 shows that for
    d = k the constant is ~2 (revised algorithm), so we evaluate
    k * (log2 log* k + 2).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    lls = math.log2(max(2, log_star(max(2, k))))
    return k * (lls + 2.0)


def baseline_packets(k: int) -> float:
    """Baseline scheme reference: coupon collector k ln k (1 + o(1))."""
    return coupon_collector_mean(k)


def xor_only_packets(k: int) -> float:
    """Single XOR layer at p = 1/k: O(k log k), same order as Baseline."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return k * max(1.0, math.log(k))


def hybrid_packets(k: int) -> float:
    """Interleaved scheme: O(k log log k / log log log k).

    Evaluated with constant 1 and inner logs clamped at 2; used only as
    a relative-order reference in benchmarks.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    llk = max(2.0, math.log2(max(2.0, math.log2(max(2.0, k)))))
    lllk = max(1.0, math.log2(llk))
    return k * llk / lllk


def lnc_packets(k: int) -> float:
    """Linear Network Coding reference: ~ k + log2(k) packets."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return k + math.log2(max(2, k))


def fragmentation_blowup(value_bits: int, budget_bits: int) -> int:
    """F = ceil(q / b): the effective hop-count multiplier (§4.2)."""
    if value_bits < 1 or budget_bits < 1:
        raise ValueError("bit widths must be >= 1")
    return math.ceil(value_bits / budget_bits)

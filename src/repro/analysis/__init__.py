"""Analytical reference formulas from the paper's appendices.

* :mod:`repro.analysis.coupon` -- coupon collector / Double Dixie Cup /
  partial-collection expectations and tails (Lemmas 4, 9; Theorems 5, 8).
* :mod:`repro.analysis.iterated` -- log*, towers, layer parameters.
* :mod:`repro.analysis.bounds` -- Theorems 1-3 evaluated with explicit
  constants, plus per-scheme reference packet counts.
"""

from repro.analysis.bounds import (
    baseline_packets,
    fragmentation_blowup,
    hybrid_packets,
    lnc_packets,
    theorem1_packets,
    theorem1_space,
    theorem2_packets,
    theorem3_packets,
    xor_only_packets,
)
from repro.analysis.coupon import (
    all_but_psi_fraction,
    binomial_success_tail,
    coupon_collector_mean,
    coupon_collector_quantile,
    double_dixie_cup_mean,
    double_dixie_cup_tail,
    harmonic,
    partial_coupon_mean,
    partial_coupon_tail,
)
from repro.analysis.iterated import (
    baseline_share,
    hybrid_xor_probability,
    layer_probability,
    log_log_star,
    log_star,
    num_xor_layers,
    tower,
)

__all__ = [
    "harmonic",
    "coupon_collector_mean",
    "coupon_collector_quantile",
    "partial_coupon_mean",
    "partial_coupon_tail",
    "all_but_psi_fraction",
    "double_dixie_cup_mean",
    "double_dixie_cup_tail",
    "binomial_success_tail",
    "log_star",
    "log_log_star",
    "tower",
    "num_xor_layers",
    "layer_probability",
    "baseline_share",
    "hybrid_xor_probability",
    "theorem1_packets",
    "theorem1_space",
    "theorem2_packets",
    "theorem3_packets",
    "baseline_packets",
    "xor_only_packets",
    "hybrid_packets",
    "lnc_packets",
    "fragmentation_blowup",
]

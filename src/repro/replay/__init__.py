"""Columnar trace/scenario replay engine with a vectorized dataplane.

The batch-oriented source the sink-side collector was missing: PINT's
switches do O(1) per-packet stamping while the sink decodes at leisure
(§3-§4), and this subpackage reproduces that split at array speed --

* :class:`Trace` -- struct-of-arrays packet traces (``.npz`` save/load,
  CSV import), paths interned into a table;
* :mod:`repro.replay.scenarios` -- seeded generators for named traffic
  scenarios (web-search, Hadoop, incast, microbursts, ECMP path churn,
  elephant/mice, ISP long paths);
* :class:`TraceDataplane` -- the whole-batch switch-chain encoder,
  bit-identical to the scalar :class:`repro.coding.PathEncoder`;
* :class:`ReplayDriver` -- streams encoded batches into a
  :class:`repro.collector.Collector` and scores throughput + decode
  accuracy per scenario.

See DESIGN.md ("Replay engine") for the data flow and
``benchmarks/bench_replay_throughput.py`` for the scalar-vs-vector
numbers.
"""

from repro.replay.dataplane import TraceDataplane, compress_utilizations
from repro.replay.driver import ReplayDriver, ScenarioReport
from repro.replay.impair import (
    DeliverySummary,
    Duplicate,
    GilbertElliott,
    IIDLoss,
    ImpairmentModel,
    Reorder,
    describe_models,
    impair_trace,
    plan_delivery,
    summarize_delivery,
)
from repro.replay.scenarios import (
    SCENARIOS,
    Scenario,
    build_trace,
    scenario,
    scenario_names,
)
from repro.replay.trace import Trace

__all__ = [
    "Trace",
    "Scenario",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "build_trace",
    "TraceDataplane",
    "compress_utilizations",
    "ReplayDriver",
    "ScenarioReport",
    "ImpairmentModel",
    "IIDLoss",
    "GilbertElliott",
    "Reorder",
    "Duplicate",
    "DeliverySummary",
    "plan_delivery",
    "summarize_delivery",
    "impair_trace",
    "describe_models",
]

"""ReplayDriver: scenario traces through the dataplane into a Collector.

The first end-to-end encode→collect path that runs at array speed: a
:class:`ReplayDriver` builds an execution plan over a path-tracing and
a congestion query, splits every columnar batch between them with the
vectorised plan-selection hash (§3.4), stamps digests with the
:class:`~repro.replay.dataplane.TraceDataplane`, and streams the
resulting columns straight into :meth:`Collector.ingest_batch` -- the
PR-1 sink finally fed at the rate its columnar path was built for.

After the stream drains, the driver scores the sink against the
trace's ground truth: which flows' paths decoded, whether they decoded
*correctly* (path churn makes these differ), and how far the decoded
bottleneck utilisation sits from the true per-flow max.  One
:class:`ScenarioReport` per scenario carries throughput and accuracy
side by side.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import asdict, dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.congestion import UtilizationCodec
from repro.collector import (
    Collector,
    ParallelCollector,
    congestion_consumer_factory,
    path_consumer_factory,
)
from repro.core.plan import ExecutionPlan, PlanEntry
from repro.core.query import AggregationType, Query
from repro.core.values import MetadataType
from repro.hashing import GlobalHash
from repro.obs.metrics import NULL_REGISTRY, StageTimes
from repro.replay.dataplane import TraceDataplane, compress_utilizations
from repro.replay.impair import (
    ImpairmentModel,
    describe_models,
    plan_delivery,
    summarize_delivery,
)
from repro.replay.scenarios import build_trace, scenario_names
from repro.replay.trace import Trace
from repro.service import CollectorServer, ReliableUDPSender, TCPSender


@dataclass(frozen=True)
class ScenarioReport:
    """Throughput + decode-accuracy summary of one replayed trace."""

    scenario: str
    records: int
    flows: int
    batches: int
    seconds: float
    #: Path-query records ingested and the per-flow decode outcome.
    path_records: int
    path_flows: int
    path_decoded: int
    path_correct: int
    #: Decoder resets across flows (reroutes / churn detected mid-flow).
    path_resets: int
    #: Congestion-query records and the decoded-vs-true max error.
    congestion_records: int
    congestion_flows: int
    congestion_median_rel_err: float
    #: -- impairment bookkeeping (defaults = the perfect network) ----------
    #: Records the scenario *sent*; ``records`` counts what the network
    #: delivered (duplicates included) and the sink actually ingested.
    offered_records: int = 0
    dropped_records: int = 0
    duplicated_records: int = 0
    #: Deliveries arriving after a later-sent record of their flow.
    reordered_records: int = 0
    #: Mean per-flow decode coverage over path-query flows the sink
    #: holds state for; NaN when every such flow was fully dropped
    #: (bench writers serialise the NaN as null via benchlib).
    path_coverage_mean: float = float("nan")
    #: Fully-decoded path flows that lost at least one path record --
    #: the paper's "any subset still decodes" claim, counted.
    path_completed_under_loss: int = 0
    #: One-line descriptions of the applied impairment models.
    impairments: Tuple[str, ...] = ()
    #: -- wire transport bookkeeping (defaults = the library path) ----------
    #: How batches reached the sinks: "in-process", "udp" or "tcp".
    transport: str = "in-process"
    #: Wire frames transmitted (retransmits included) across both sinks.
    wire_frames: int = 0
    #: Reliable-UDP retransmissions (0 on tcp / in-process).
    wire_retransmits: int = 0
    #: -- fault-recovery bookkeeping (defaults = a fault-free run) ----------
    #: Worker processes the supervised path sink replaced mid-replay,
    #: and the journal messages replayed into their replacements.
    restarts: int = 0
    replayed_batches: int = 0
    #: Shards that exceeded their journal window during recovery (and
    #: the records neither restored nor replayed); 0/0 whenever the
    #: journal was sized to the checkpoint cadence.
    degraded_shards: int = 0
    records_lost: int = 0
    #: True when the replay ran the staged-overlap pipeline (encode of
    #: batch k+1 concurrent with ingest of batch k); stage_seconds are
    #: then per-stage *busy* times and may sum past ``seconds``.
    overlapped: bool = False
    #: Per-stage wall time of the replay loop, insertion-ordered
    #: ``(stage, seconds)`` pairs: where ``seconds`` actually went
    #: (select / encode / ingest / transport / decode, plus impair
    #: when models ran).  Always measured -- the accumulator is two
    #: clock reads per stage per batch -- so every report can answer
    #: ROADMAP item 2's "which stage stalls the pipeline".
    stage_seconds: Tuple[Tuple[str, float], ...] = ()

    @property
    def delivery_rate(self) -> float:
        """Fraction of offered records delivered at least once."""
        if self.offered_records <= 0:
            return float("nan")
        return (
            self.offered_records - self.dropped_records
        ) / self.offered_records

    def as_dict(self) -> dict:
        """JSON-ready dump: fields plus the derived rates.

        May contain NaN (coverage of fully-dropped streams, median
        error of empty congestion sets); writers must route it
        through :func:`benchlib.write_bench_json`, which turns
        non-finite floats into JSON null.
        """
        d = asdict(self)
        d["impairments"] = list(self.impairments)
        d["stage_seconds"] = {k: v for k, v in self.stage_seconds}
        d["records_per_sec"] = self.records_per_sec
        d["path_coverage"] = self.path_coverage
        d["path_accuracy"] = self.path_accuracy
        d["delivery_rate"] = self.delivery_rate
        return d

    @property
    def records_per_sec(self) -> float:
        """End-to-end replay rate (select + encode + ingest).

        Always finite: a degenerate zero-second measurement (an empty
        trace, or a clock too coarse to see the work) reports 0.0
        rather than ``inf`` -- ``json.dump`` would otherwise emit the
        non-standard ``Infinity`` token into the bench artifacts.
        """
        return self.records / self.seconds if self.seconds > 0 else 0.0

    @property
    def path_coverage(self) -> float:
        """Fraction of path-query flows that reached a decoded answer."""
        return self.path_decoded / self.path_flows if self.path_flows else 0.0

    @property
    def path_accuracy(self) -> float:
        """Fraction of decoded paths the flow actually traversed.

        A churned flow's decoder may legitimately answer with an
        earlier path; only a path the flow never used counts as wrong.
        """
        return self.path_correct / self.path_decoded if self.path_decoded else 0.0

    def summary(self) -> str:
        """One human-readable report line."""
        err = self.congestion_median_rel_err
        err_s = f"{err * 100:.1f}%" if not math.isnan(err) else "n/a"
        line = (
            f"{self.scenario:<15} {self.records:>7} rec "
            f"{self.records_per_sec:>11,.0f} rec/s  "
            f"path {self.path_decoded}/{self.path_flows} decoded "
            f"({self.path_accuracy * 100:.0f}% correct, "
            f"{self.path_resets} resets)  "
            f"cong err {err_s}"
        )
        if self.impairments:
            cov = self.path_coverage_mean
            cov_s = f"{cov * 100:.0f}%" if not math.isnan(cov) else "n/a"
            line += (
                f"  [delivered {self.records}/{self.offered_records}"
                f" (-{self.dropped_records} +{self.duplicated_records}"
                f" ~{self.reordered_records}), cov {cov_s}]"
            )
        return line

    def stage_summary(self) -> str:
        """One line of where the replay's wall time went, by stage."""
        total = sum(s for _, s in self.stage_seconds)
        if total <= 0:
            return "stages: n/a"
        parts = [
            f"{stage} {secs * 1e3:,.0f}ms ({secs / total * 100:.0f}%)"
            for stage, secs in self.stage_seconds
        ]
        return "stages: " + "  ".join(parts)


class _IngestPipeline:
    """Bounded hand-off queue + one ingest thread (overlap mode).

    The producer half of the replay loop (plan selection, digest
    encode, congestion compression) keeps the main thread; every
    encoded sub-batch is handed through a bounded :class:`queue.Queue`
    to a single consumer thread that runs the ingest callables.  One
    consumer preserves the sequential loop's exact ingest order --
    the bit-identity requirement -- while encode of batch ``k+1``
    overlaps ingest (and, behind a parallel sink, worker decode) of
    batch ``k``.  ``depth`` bounds how far encode may run ahead:
    memory grows as ``depth x batch`` and no further.

    Stage accounting: the consumer owns the ``ingest`` span, the
    producer the ``handoff`` span (time blocked handing batches over
    -- the signature of ingest being the slower stage).  Each span is
    touched by exactly one thread.

    Failure: the consumer parks the first exception, then keeps
    *draining* the queue without running anything -- the producer's
    ``put`` must never deadlock against a dead consumer -- and the
    error surfaces at the next :meth:`submit` or at :meth:`result`,
    after :meth:`close` has joined the thread.
    """

    _DONE = object()

    def __init__(self, stages: StageTimes, depth: int) -> None:
        self._q: queue.Queue = queue.Queue(maxsize=depth)
        self._sp_ingest = stages.span("ingest")
        self._sp_handoff = stages.span("handoff")
        self._exc: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="replay-ingest", daemon=True
        )
        self._thread.start()

    def depth(self) -> int:
        """Live queue depth (the overlap back-pressure gauge)."""
        return self._q.qsize()

    def submit(self, fn, *args, **kwargs) -> None:
        """Queue one ingest call; re-raises a parked consumer error."""
        if self._exc is not None:
            self.close()
            self.result()
        with self._sp_handoff:
            self._q.put((fn, args, kwargs))

    def _run(self) -> None:
        while True:
            item = self._q.get()
            if item is self._DONE:
                return
            if self._exc is not None:
                continue
            fn, args, kwargs = item
            try:
                with self._sp_ingest:
                    fn(*args, **kwargs)
            except BaseException as exc:  # parked, surfaced in producer
                self._exc = exc

    def close(self) -> None:
        """Flush the queue and join the thread (idempotent, no raise)."""
        if not self._closed:
            self._closed = True
            self._q.put(self._DONE)
        self._thread.join()

    def result(self) -> None:
        """Raise the parked consumer error, if any (after close())."""
        if self._exc is not None:
            exc, self._exc = self._exc, None
            raise exc


class ReplayDriver:
    """Streams scenario traces through the vectorised dataplane.

    Parameters
    ----------
    digest_bits / num_hashes / seed:
        Path-query encoder configuration; the sink consumers derive
        the matching decoders from the same values.
    path_share / congestion_share:
        Execution-plan probabilities (must sum to <= 1; the remainder
        carries no query).  ``congestion_share=0`` disables the value
        query.
    batch_size:
        Records per columnar batch -- the unit of vectorised work.
    num_shards:
        Collector sharding (both sinks).
    workers:
        ``None`` (default) replays into single-process collectors; an
        integer builds a :class:`~repro.collector.ParallelCollector`
        *path* sink with that many worker processes (at most
        ``num_shards`` -- every worker owns at least one shard), so
        every scenario can replay parallel.  The congestion sink
        always stays in-process: its max-aggregation is cheaper than
        the scatter transport (DESIGN.md section 5), so ``workers=N``
        costs exactly N extra processes, all spent on the
        decode-heavy query.  Results are bit-identical either way;
        the knob only moves where the decode work runs.
    worker_transport:
        Data plane of the ``workers=N`` path sink: ``"shm"``
        (default) scatters through shared-memory rings, ``"pipe"``
        keeps the pickled-pipe transport (see
        :class:`~repro.collector.ParallelCollector`).
    overlap:
        ``False`` (default) runs the stages sequentially per batch.
        ``True`` overlaps them: select/encode stay on the main
        thread, ingest (or wire send) runs on a dedicated thread
        behind a bounded hand-off queue of ``overlap_depth`` batches,
        so end-to-end throughput tracks the slower of the two halves
        instead of their sum.  Ingest order -- and therefore every
        snapshot and per-flow answer -- is bit-identical to the
        sequential loop; reports carry ``overlapped=True`` and a
        ``handoff`` stage (producer time blocked on the full queue).
    overlap_depth:
        Bounded hand-off queue length (batches) for ``overlap=True``.
    mode:
        Path-digest representation the dataplane stamps and the sink
        decodes: "auto" (hash, since traces carry a universe), "raw",
        "hash" or "fragment" -- the three §4.2 representations the
        impairment sweeps compare under loss.
    impairments:
        Optional sequence of :class:`~repro.replay.impair.
        ImpairmentModel` applied between encode and ingest: the driver
        plans one delivery schedule over the whole trace (so bursty
        loss and reorder bounds span batch boundaries) and replays
        *delivered* records only, in delivered order -- on the serial
        and the ``workers=N`` paths alike.  An empty sequence (or all
        zero-rate models) is bit-identical to no impairment.
    transport:
        ``None`` (default) ingests in-process -- the library path.
        ``"udp"`` or ``"tcp"`` instead stands up one
        :class:`~repro.service.CollectorServer` per sink on loopback
        and ships every batch through the :mod:`repro.service.wire`
        format: reliable seq/ACK/RTO UDP, or a TCP stream.  Fragment
        reassembly (``FLAG_MORE``) and in-order exactly-once delivery
        make the wire run bit-identical to the in-process one --
        snapshots and per-flow answers alike -- which
        ``bench_service_ingest.py`` asserts on every scenario.
    obs:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` threaded
        through every component the driver builds: both sink
        collectors (labelled ``{"sink": "path"}`` /
        ``{"sink": "congestion"}``), the parallel scatter when
        ``workers`` is set, and the reliable UDP sender when
        ``transport="udp"``.  Stage wall-times additionally land in
        ``pint_replay_stage_seconds{stage=...}`` per replay.  The
        per-report :attr:`ScenarioReport.stage_seconds` breakdown is
        *always* measured, registry or not.
    """

    def __init__(
        self,
        digest_bits: int = 8,
        num_hashes: int = 1,
        seed: int = 0,
        num_shards: int = 4,
        batch_size: int = 8192,
        path_share: float = 0.8,
        congestion_share: float = 0.2,
        congestion_bits: int = 8,
        workers: Optional[int] = None,
        worker_transport: str = "shm",
        overlap: bool = False,
        overlap_depth: int = 4,
        mode: str = "auto",
        impairments: Optional[Sequence[ImpairmentModel]] = None,
        transport: Optional[str] = None,
        obs=None,
        checkpoint_every: Optional[int] = None,
        journal_batches: Optional[int] = None,
        faults=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if path_share <= 0.0:
            raise ValueError("path_share must be positive")
        if mode not in ("auto", "raw", "hash", "fragment"):
            raise ValueError(
                f"mode must be 'auto', 'raw', 'hash' or 'fragment', "
                f"got {mode!r}"
            )
        if transport not in (None, "udp", "tcp"):
            raise ValueError(
                f"transport must be None, 'udp' or 'tcp', got {transport!r}"
            )
        self.transport = transport
        self.mode = mode
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.impairments: List[ImpairmentModel] = (
            list(impairments) if impairments is not None else []
        )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for serial)")
        if workers is not None and workers > num_shards:
            raise ValueError(
                f"workers ({workers}) must not exceed num_shards "
                f"({num_shards}): a worker owns at least one shard"
            )
        if worker_transport not in ("shm", "pipe"):
            raise ValueError(
                f"worker_transport must be 'shm' or 'pipe', "
                f"got {worker_transport!r}"
            )
        if overlap_depth < 1:
            raise ValueError("overlap_depth must be >= 1")
        self.workers = workers
        self.worker_transport = worker_transport
        self.overlap = bool(overlap)
        self.overlap_depth = overlap_depth
        if workers is None and (
            checkpoint_every is not None or faults is not None
        ):
            raise ValueError(
                "checkpoint_every/faults require workers: supervision "
                "and worker fault injection only exist on the "
                "ParallelCollector path sink"
            )
        self.checkpoint_every = checkpoint_every
        self.journal_batches = journal_batches
        self.faults = faults
        self.digest_bits = digest_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self.num_shards = num_shards
        self.batch_size = batch_size
        self.congestion_bits = congestion_bits
        path_q = Query(
            "path", MetadataType.SWITCH_ID, AggregationType.STATIC_PER_FLOW,
            bit_budget=digest_bits * num_hashes, frequency=path_share,
        )
        entries = [PlanEntry((path_q,), path_share)]
        if congestion_share > 0.0:
            cong_q = Query(
                "congestion", MetadataType.EGRESS_TX_UTILIZATION,
                AggregationType.PER_PACKET, bit_budget=congestion_bits,
                frequency=congestion_share,
            )
            entries.append(PlanEntry((cong_q,), congestion_share))
        budget = max(e.bits() for e in entries)
        self.plan = ExecutionPlan(entries, budget, seed)
        self.has_congestion = congestion_share > 0.0
        #: Synthetic ground-truth utilisation per packet: a keyed hash
        #: of the pid, so truth is replayable without storing a column.
        self._util_hash = GlobalHash(seed, "replay-util")

    def utilizations(self, trace: Trace) -> np.ndarray:
        """Ground-truth bottleneck utilisation per record, in (0, 1.5)."""
        return self._util_hash.uniform_array(trace.pid) * 1.5

    def _make_sink(self, consumer_factory, sink_label: str):
        """One sink collector: serial, or parallel when ``workers`` set.

        ``sink_label`` keeps the two sinks' metric streams apart in
        the shared registry (``{"sink": "path"|"congestion"}``).
        """
        obs = None if not self.obs.enabled else self.obs
        labels = {"sink": sink_label}
        if self.workers is None:
            return Collector(
                consumer_factory, num_shards=self.num_shards, seed=self.seed,
                obs=obs, obs_labels=labels,
            )
        return ParallelCollector(
            consumer_factory, workers=self.workers,
            num_shards=self.num_shards, seed=self.seed,
            transport=self.worker_transport,
            obs=obs, obs_labels=labels,
            checkpoint_every=self.checkpoint_every,
            journal_batches=self.journal_batches,
            faults=self.faults,
        )

    def _wire_sink(self, sink, sink_label: str):
        """Stand a sink behind a loopback server; return (server, sender)."""
        obs = None if not self.obs.enabled else self.obs
        if self.transport == "udp":
            server = CollectorServer(sink, tcp_port=None).start()
            sender = ReliableUDPSender(
                "127.0.0.1", server.udp_port,
                obs=obs, obs_labels={"sink": sink_label},
            )
        else:
            server = CollectorServer(sink, udp_port=None).start()
            sender = TCPSender("127.0.0.1", server.tcp_port)
        return server, sender

    def replay(
        self,
        trace: Trace,
        impairments: Optional[Sequence[ImpairmentModel]] = None,
    ) -> ScenarioReport:
        """Stream one trace end-to-end; return its report.

        ``impairments`` overrides the driver-level models for this
        trace only (None means use the driver's).
        """
        models = (
            self.impairments if impairments is None else list(impairments)
        )
        dataplane = TraceDataplane(
            trace, digest_bits=self.digest_bits, num_hashes=self.num_hashes,
            mode=self.mode, seed=self.seed,
        )
        consumer_mode = "hash" if self.mode == "auto" else self.mode
        path_sink = self._make_sink(
            path_consumer_factory(
                trace.universe, digest_bits=self.digest_bits,
                num_hashes=self.num_hashes, seed=self.seed,
                mode=consumer_mode, value_bits=dataplane.value_bits,
            ),
            "path",
        )
        cong_sink: Optional[Collector] = None
        codec: Optional[UtilizationCodec] = None
        if self.has_congestion:
            # Always serial: the max-aggregation consumer is cheaper
            # than the scatter transport, so workers would only burn
            # cores the path sink needs (DESIGN.md section 5).
            cong_sink = Collector(
                congestion_consumer_factory(
                    bits=self.congestion_bits, seed=self.seed,
                ),
                num_shards=self.num_shards, seed=self.seed,
                obs=None if not self.obs.enabled else self.obs,
                obs_labels={"sink": "congestion"},
            )
            codec = UtilizationCodec(self.congestion_bits, seed=self.seed)
        path_server = cong_server = None
        path_tx = cong_tx = None
        pipeline: Optional[_IngestPipeline] = None
        try:
            # The ingest callables: the sinks' own ingest_batch, or --
            # behind a transport -- the matching sender's send_batch
            # (same signature by design, so the loop below is shared).
            path_ingest = path_sink.ingest_batch
            cong_ingest = (
                cong_sink.ingest_batch if cong_sink is not None else None
            )
            if self.transport is not None:
                path_server, path_tx = self._wire_sink(path_sink, "path")
                path_ingest = path_tx.send_batch
                if cong_sink is not None:
                    cong_server, cong_tx = self._wire_sink(
                        cong_sink, "congestion"
                    )
                    cong_ingest = cong_tx.send_batch
            hop_counts = trace.hop_counts
            utils = self.utilizations(trace) if self.has_congestion else None
            # Stage accounting: two clock reads per section per batch,
            # cheap enough to leave on unconditionally, so *every*
            # report can say where its wall time went.
            stages = StageTimes()
            sp_select = stages.span("select")
            sp_encode = stages.span("encode")
            sp_ingest = stages.span("ingest")
            if self.overlap:
                # Fork before thread: a parallel sink's workers must be
                # spawned while this process is still single-threaded
                # (forking a threaded parent is how locks get copied
                # mid-acquisition).
                starter = getattr(path_sink, "start", None)
                if starter is not None:
                    starter()
                pipeline = _IngestPipeline(stages, self.overlap_depth)
                if self.obs.enabled:
                    self.obs.gauge(
                        "pint_replay_overlap_depth",
                        "Encoded batches queued for the overlapped "
                        "ingest thread (bounded by overlap_depth).",
                    ).set_function(pipeline.depth)
            # The delivery schedule is planned over the whole trace up
            # front: bursty-loss state and reorder displacement must
            # span batch boundaries, exactly as a network precedes the
            # sink's batching.  No models -> the schedule is the
            # identity and the loop below is the exact pre-impairment
            # code path (bit-identity is golden-tested).
            delivery: Optional[np.ndarray] = None
            if models:
                with stages.span("impair"):
                    delivery = plan_delivery(
                        models, len(trace), trace.flow_id
                    )
            total = len(trace) if delivery is None else int(delivery.shape[0])
            batches = 0
            path_records = 0
            cong_records = 0
            start = time.perf_counter()
            for lo in range(0, total, self.batch_size):
                hi = min(lo + self.batch_size, total)
                if delivery is None:
                    rows = np.arange(lo, hi, dtype=np.int64)
                    now = float(trace.ts[hi - 1])
                else:
                    rows = delivery[lo:hi]
                    # Delivered order is not time order under reorder;
                    # the clock advances to the newest send stamp seen
                    # (IngestClock is monotone anyway).
                    now = float(trace.ts[rows].max())
                with sp_select:
                    entry = self.plan.select_array(trace.pid[rows])
                path_rows = rows[entry == 0]
                if path_rows.size:
                    with sp_encode:
                        digests = dataplane.encode_rows(path_rows)
                    # The gathered columns are fresh copies (fancy
                    # indexing), so the overlapped thread never shares
                    # a buffer with the next iteration's producer.
                    if pipeline is not None:
                        pipeline.submit(
                            path_ingest, trace.flow_id[path_rows],
                            trace.pid[path_rows], hop_counts[path_rows],
                            digests, now=now,
                        )
                    else:
                        with sp_ingest:
                            path_ingest(
                                trace.flow_id[path_rows],
                                trace.pid[path_rows],
                                hop_counts[path_rows], digests, now=now,
                            )
                    path_records += int(path_rows.size)
                if cong_sink is not None:
                    cong_rows = rows[entry == 1]
                    if cong_rows.size:
                        with sp_encode:
                            codes = compress_utilizations(
                                codec, utils[cong_rows], trace.pid[cong_rows],
                                hop_counts[cong_rows],
                            )
                        if pipeline is not None:
                            pipeline.submit(
                                cong_ingest, trace.flow_id[cong_rows],
                                trace.pid[cong_rows], hop_counts[cong_rows],
                                codes, now=now,
                            )
                        else:
                            with sp_ingest:
                                cong_ingest(
                                    trace.flow_id[cong_rows],
                                    trace.pid[cong_rows],
                                    hop_counts[cong_rows], codes, now=now,
                                )
                        cong_records += int(cong_rows.size)
                batches += 1
            if pipeline is not None:
                # Join the ingest thread before the flush/drain
                # barriers below; a parked ingest error surfaces here
                # rather than being discovered as missing records.
                pipeline.close()
                pipeline.result()
            # Wire path: flush the retransmit queues, then wait for
            # the last frame to clear socket, admission queue and
            # ingest thread -- the wire is part of the measured path,
            # so the clock keeps running until the sinks hold it all.
            with stages.span("transport"):
                if path_tx is not None:
                    path_tx.flush()
                    path_server.wait_for_records(path_records)
                    path_server.drain()
                if cong_tx is not None:
                    cong_tx.flush()
                    cong_server.wait_for_records(cong_records)
                    cong_server.drain()
                # The throughput clock stops only after every scattered
                # batch is applied -- a no-op barrier on serial sinks,
                # the honest accounting on parallel ones.
                path_sink.drain()
                if cong_sink is not None:
                    cong_sink.drain()
            seconds = time.perf_counter() - start
            with stages.span("decode"):
                report = self._score(
                    trace, path_sink, cong_sink, codec, utils, batches,
                    path_records, cong_records, seconds, delivery, models,
                )
            report = replace(
                report, stage_seconds=stages.items(),
                overlapped=pipeline is not None,
            )
            if self.obs.enabled:
                for stage, secs in stages.items():
                    self.obs.histogram(
                        "pint_replay_stage_seconds",
                        "Whole-replay wall time per pipeline stage.",
                        labels={"stage": stage},
                    ).observe(secs)
            if getattr(path_sink, "_supervised", False):
                rec = path_sink.recovery_stats(path_sink.snapshot())
                report = replace(
                    report, restarts=rec.restarts,
                    replayed_batches=rec.replayed_batches,
                    degraded_shards=rec.degraded_shards,
                    records_lost=rec.records_lost,
                )
            if self.transport is not None:
                frames = path_tx.frames_sent
                retx = getattr(path_tx, "retransmits", 0)
                if cong_tx is not None:
                    frames += cong_tx.frames_sent
                    retx += getattr(cong_tx, "retransmits", 0)
                report = replace(
                    report, transport=self.transport,
                    wire_frames=frames, wire_retransmits=retx,
                )
            return report
        finally:
            # The ingest thread holds sink references: it must be
            # joined (idempotent) before anything below closes them.
            if pipeline is not None:
                pipeline.close()
            # Bare socket release, not sender.close(): the success
            # path flushed already, and an error path must not spend a
            # flush timeout re-offering frames nobody will score.
            for tx in (path_tx, cong_tx):
                if tx is not None:
                    tx.sock.close()
            for server in (path_server, cong_server):
                if server is not None:
                    server.close()
            path_sink.close()
            if cong_sink is not None:
                cong_sink.close()

    def _score(
        self,
        trace: Trace,
        path_sink: Collector,
        cong_sink: Optional[Collector],
        codec: Optional[UtilizationCodec],
        utils: Optional[np.ndarray],
        batches: int,
        path_records: int,
        cong_records: int,
        seconds: float,
        delivery: Optional[np.ndarray] = None,
        models: Sequence[ImpairmentModel] = (),
    ) -> ScenarioReport:
        """Compare the sinks' answers against the trace's ground truth.

        Path flows are scored against the *offered* stream (a flow
        whose packets were all dropped still counts undecoded -- that
        is the degradation the sweeps chart), while congestion truth
        is the max over *delivered* records: the sink cannot know a
        utilisation the network never carried to it.
        """
        entry = self.plan.select_array(trace.pid)
        truth = trace.flow_paths()
        path_flows = np.unique(trace.flow_id[entry == 0])
        summary = (
            summarize_delivery(len(trace), delivery, trace.flow_id)
            if delivery is not None else None
        )
        delivered_rows: Optional[np.ndarray] = None
        flows_with_drops = frozenset()
        if delivery is not None:
            delivered_rows = np.unique(delivery)
            path_rows = np.flatnonzero(entry == 0)
            dropped_path = path_rows[~np.isin(path_rows, delivered_rows)]
            flows_with_drops = frozenset(
                np.unique(trace.flow_id[dropped_path]).tolist()
            )
        decoded = correct = resets = 0
        completed_under_loss = 0
        coverages: List[float] = []
        fid_list = path_flows.tolist()
        # Bulk fetch: one RPC per worker on a parallel sink instead of
        # one (decoder-pickling) round-trip per flow.
        consumers = path_sink.flows(fid_list)
        for fid, consumer in zip(fid_list, consumers):
            if consumer is None:
                continue
            resets += consumer.decode_errors
            coverages.append(consumer.coverage)
            result = consumer.result()
            if result is None:
                continue
            decoded += 1
            if fid in flows_with_drops:
                completed_under_loss += 1
            traversed = {trace.paths[pid] for pid in truth[fid]}
            if tuple(result) in traversed:
                correct += 1
        coverage_mean = (
            float(np.mean(coverages)) if coverages else float("nan")
        )
        median_err = float("nan")
        cong_flows = 0
        if cong_sink is not None and cong_records:
            if delivered_rows is None:
                sel = np.flatnonzero(entry == 1)
            else:
                sel = delivered_rows[entry[delivered_rows] == 1]
            fids = trace.flow_id[sel]
            true_utils = utils[sel]
            order = np.argsort(fids, kind="stable")
            fids = fids[order]
            true_utils = true_utils[order]
            cuts = np.flatnonzero(fids[1:] != fids[:-1]) + 1
            starts = np.concatenate(([0], cuts))
            group_max = np.maximum.reduceat(true_utils, starts)
            # Gather each surviving flow's encoded max, then decode the
            # whole column in one table gather (bit-identical to the
            # per-flow scalar decode this loop used to make).
            codes, truths = [], []
            for fid, truth in zip(fids[starts].tolist(), group_max.tolist()):
                consumer = cong_sink.flow(int(fid))
                if consumer is not None and consumer.max_code >= 0:
                    codes.append(consumer.max_code)
                    truths.append(truth)
            cong_flows = len(codes)
            if codes:
                got = codec.decode_array(np.asarray(codes, dtype=np.int64))
                truth_arr = np.asarray(truths, dtype=np.float64)
                errs = np.abs(got - truth_arr) / truth_arr
                median_err = float(np.median(errs))
        return ScenarioReport(
            scenario=trace.name,
            records=(
                len(trace) if delivery is None else int(delivery.shape[0])
            ),
            flows=trace.num_flows,
            batches=batches,
            seconds=seconds,
            path_records=path_records,
            path_flows=int(path_flows.size),
            path_decoded=decoded,
            path_correct=correct,
            path_resets=resets,
            congestion_records=cong_records,
            congestion_flows=cong_flows,
            congestion_median_rel_err=median_err,
            offered_records=len(trace),
            dropped_records=summary.dropped if summary else 0,
            duplicated_records=summary.duplicated if summary else 0,
            reordered_records=summary.reordered if summary else 0,
            path_coverage_mean=coverage_mean,
            path_completed_under_loss=completed_under_loss,
            impairments=describe_models(models),
        )

    def run_scenario(
        self, name: str, packets: int = 20_000, seed: int = 0, **kw
    ) -> ScenarioReport:
        """Build ``name``'s trace and replay it."""
        return self.replay(build_trace(name, packets=packets, seed=seed, **kw))

    def run_all(
        self, packets: int = 20_000, seed: int = 0, variants: bool = False
    ) -> List[ScenarioReport]:
        """Replay every registered scenario; one report each.

        ``variants=True`` also replays the impaired (lossy /
        reordered / bursty) derivatives of each base scenario.
        """
        return [
            self.run_scenario(name, packets=packets, seed=seed)
            for name in scenario_names(variants=variants)
        ]

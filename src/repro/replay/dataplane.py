"""The vectorized PINT dataplane: whole-batch switch-chain encoding.

A :class:`TraceDataplane` does to a columnar batch what the chain of
per-switch Encoding Modules does to each packet -- execution-plan layer
selection, Baseline reservoir stamping, per-layer XOR folding, and
raw / hash-compressed / fragmented digest representations -- as array
operations over the whole batch at once.  It is *bit-identical* to the
scalar :class:`repro.coding.PathEncoder` under shared seeds
(property-tested): every probabilistic decision is the same
:class:`~repro.hashing.GlobalHash` draw, evaluated through the paired
vectorised APIs whose lane-for-lane equality the hashing tests pin
down.

Batches mix packets of many flows and many paths; records are grouped
by path *signature* -- (path length, digest mode, fragment count) --
not by path, because every hash the chain draws keys on the packet id
and per-hop block value, never on the path identity.  Hundreds of
distinct paths therefore collapse into a handful of array passes
(blocks are gathered per lane from the trace's path table and hashed
pairwise via ``GlobalHash.bits_zip``), so the per-record Python cost of
the scalar encoder becomes per-(batch, signature) cost -- the
switch-side mirror of the collector's ``ingest_batch`` amortisation,
and where the >=10x of ``benchmarks/bench_replay_throughput.py`` comes
from.

Value queries compress the same way: :func:`compress_utilizations`
runs the §4.3 multiplicative randomized rounding over whole columns,
reusing :meth:`UtilizationCodec.encode_array`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.apps.congestion import UtilizationCodec
from repro.coding import (
    HASH,
    CodingScheme,
    DistributedMessage,
    PathEncoder,
    multilayer_scheme,
    pack_reps,
    pack_reps_array,
)
from repro.replay.trace import Trace

#: Per-path scheme choice; the default matches the sink's
#: :class:`~repro.collector.consumers.PathDigestConsumer`, which derives
#: ``multilayer_scheme(hop_count)`` per flow.
SchemeFactory = Callable[[int], CodingScheme]


class TraceDataplane:
    """Vectorised encoder bound to one trace's path table.

    Parameters
    ----------
    trace:
        The trace whose ``path_id`` column this dataplane encodes.
    digest_bits / num_hashes / mode / seed:
        Forwarded to each per-path :class:`PathEncoder` (``mode`` may
        be "auto"/"raw"/"hash"/"fragment" exactly as there).
    scheme_factory:
        Maps path length k to the :class:`CodingScheme` its encoder
        runs; defaults to :func:`multilayer_scheme` (Algorithm 1),
        matching the collector's per-flow decoder derivation.
    value_bits:
        Fragment mode: the shared value width every encoder fragments
        against (defaults to the trace universe's widest switch ID),
        so sink-side :class:`~repro.coding.FragmentDecoder` layouts
        derived from the same universe line up with every path.
    """

    def __init__(
        self,
        trace: Trace,
        digest_bits: int = 8,
        num_hashes: int = 1,
        mode: str = "auto",
        seed: int = 0,
        scheme_factory: SchemeFactory = multilayer_scheme,
        value_bits: Optional[int] = None,
    ) -> None:
        if digest_bits * num_hashes > 63:
            raise ValueError(
                f"packed digests need digest_bits * num_hashes <= 63 "
                f"(got {digest_bits} * {num_hashes}): the collector's "
                "digest column is int64"
            )
        self.trace = trace
        self.digest_bits = digest_bits
        self.num_hashes = num_hashes
        self.mode = mode
        self.seed = seed
        self.scheme_factory = scheme_factory
        if value_bits is None and mode == "fragment" and trace.universe:
            value_bits = max(1, max(trace.universe).bit_length())
        self.value_bits = value_bits
        #: Lazily compiled scalar twins, one per path id.  Each carries
        #: the CodecContext the vectorised path replays, so the two
        #: paths cannot diverge in configuration.
        self._encoders: Dict[int, PathEncoder] = {}
        self._block_table: Optional[np.ndarray] = None

    def encoder(self, path_id: int) -> PathEncoder:
        """The scalar-twin :class:`PathEncoder` for one path id."""
        enc = self._encoders.get(path_id)
        if enc is None:
            path = self.trace.paths[path_id]
            message = DistributedMessage.from_path(
                path, self.trace.universe if self.mode in ("auto", HASH)
                else None,
            )
            enc = PathEncoder(
                message, self.scheme_factory(len(path)),
                digest_bits=self.digest_bits, mode=self.mode,
                num_hashes=self.num_hashes, seed=self.seed,
                value_bits=self.value_bits,
            )
            self._encoders[path_id] = enc
        return enc

    # -- vectorised encode -----------------------------------------------

    def _blocks(self) -> np.ndarray:
        """The trace's path table as a padded (paths, max_k) matrix."""
        if self._block_table is None:
            k_max = max(len(p) for p in self.trace.paths)
            table = np.zeros((len(self.trace.paths), k_max), dtype=np.int64)
            for i, p in enumerate(self.trace.paths):
                table[i, : len(p)] = p
            self._block_table = table
        return self._block_table

    def encode_rows(self, rows: np.ndarray) -> np.ndarray:
        """Packed digests for the given trace rows, one int64 per row.

        Row-for-row equal to ``encode_scalar(row)``: records are
        grouped by path signature (k, mode, fragment count), each group
        runs the whole-array switch chain with per-lane block gathers,
        and per-hash digests are packed with the shared wire layout
        (:func:`pack_reps_array`).
        """
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty(rows.shape[0], dtype=np.int64)
        if rows.size == 0:
            return out
        path_ids = self.trace.path_id[rows]
        pids = self.trace.pid[rows].astype(np.uint64)
        # Map each path present to its signature group; paths sharing a
        # signature share every hash decision shape, so they encode as
        # one array pass.
        sig_gid: Dict[tuple, int] = {}
        reps_enc: List[PathEncoder] = []
        lut = np.zeros(len(self.trace.paths), dtype=np.int64)
        for path_id in np.unique(path_ids).tolist():
            enc = self.encoder(path_id)
            sig = (enc.message.k, enc.mode, enc.num_fragments)
            gid = sig_gid.get(sig)
            if gid is None:
                gid = len(reps_enc)
                sig_gid[sig] = gid
                reps_enc.append(enc)
            lut[path_id] = gid
        gids = lut[path_ids]
        order = np.argsort(gids, kind="stable")
        sorted_gids = gids[order]
        cuts = np.flatnonzero(sorted_gids[1:] != sorted_gids[:-1]) + 1
        bounds = np.concatenate(([0], cuts, [rows.shape[0]]))
        blocks_table = self._blocks()
        for i in range(bounds.size - 1):
            lanes = order[bounds[i] : bounds[i + 1]]
            enc = reps_enc[int(sorted_gids[bounds[i]])]
            blocks = blocks_table[path_ids[lanes], : enc.message.k]
            digests = enc.encode_lanes(pids[lanes], blocks)
            out[lanes] = pack_reps_array(digests, self.digest_bits)
        return out

    def encode_batch(self, lo: int, hi: int) -> np.ndarray:
        """Packed digests for trace rows ``[lo, hi)`` (batch shape)."""
        return self.encode_rows(np.arange(lo, hi, dtype=np.int64))

    # -- scalar reference ------------------------------------------------

    def encode_scalar(self, row: int) -> int:
        """One record through the scalar per-switch chain (reference).

        The per-packet path the benchmark compares against and the
        parity tests pin the vectorised path to.
        """
        enc = self.encoder(int(self.trace.path_id[row]))
        return pack_reps(
            enc.encode(int(self.trace.pid[row])), self.digest_bits
        )

    def encode_scalar_rows(self, rows: np.ndarray) -> np.ndarray:
        """Scalar :meth:`encode_scalar` over many rows (benchmark loop)."""
        return np.asarray(
            [self.encode_scalar(int(r)) for r in np.asarray(rows)],
            dtype=np.int64,
        )


def compress_utilizations(
    codec: UtilizationCodec,
    utilizations: np.ndarray,
    pids: np.ndarray,
    hop_counts: np.ndarray,
) -> np.ndarray:
    """Batched §4.3 bottleneck compression, keyed ``(pid, hop_count)``.

    Lane-for-lane identical to ``codec.encode(util, pid, hops)`` -- the
    randomized-rounding coin is the same keyed hash draw.  Records are
    grouped by hop count because the hop number is the shared salt of
    each ``uniform_lanes`` fold.
    """
    utils = np.asarray(utilizations, dtype=np.float64)
    pid_arr = np.asarray(pids)
    hops = np.asarray(hop_counts, dtype=np.int64)
    out = np.empty(utils.shape[0], dtype=np.int64)
    for hop in np.unique(hops):
        sel = hops == hop
        out[sel] = codec.encode_array(utils[sel], pid_arr[sel], int(hop))
    return out

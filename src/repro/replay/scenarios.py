"""Named scenario generators: seeds in, columnar traces out.

Each scenario synthesises a :class:`~repro.replay.trace.Trace` from a
seed -- fully deterministic, so two processes (or a benchmark and a
test) that build ``("incast", seed=7)`` get bit-identical columns.
Generators reuse the repo's existing traffic models rather than
inventing new ones: flow sizes come from the decile-encoded
:mod:`repro.sim.workload` CDFs (vectorised via ``sample_n``), paths
come from :mod:`repro.net` topologies with ECMP candidate sets.

The registry maps scenario names to builders; the replay driver runs
every registered scenario end-to-end.  Registered scenarios:

* ``web-search`` / ``hadoop`` -- Poisson arrivals with the paper's two
  flow-size CDFs on a k=4 fat-tree;
* ``incast`` -- synchronized many-to-one waves (the partition/aggregate
  pattern that motivates DCTCP's workload);
* ``microburst`` -- dense bursts on a few hot flows over light
  background mice;
* ``path-churn`` -- long-lived inter-pod flows that hop between ECMP
  paths mid-flow (the decoder-reset stress case);
* ``elephant-mice`` -- adversarial mix: a few huge flows interleaved
  with a swarm of 1-3 packet mice;
* ``isp-long-paths`` -- long-haul paths on a synthetic ISP tree (the
  Fig. 10 large-diameter regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net import fat_tree, synthetic_isp
from repro.net.topology import KIND, SWITCH, Topology
from repro.replay.trace import Trace
from repro.sim.workload import EmpiricalCDF, hadoop_cdf, web_search_cdf

#: Packet payload capacity: flow bytes become ceil(size / MTU) packets.
MTU = 1500


@dataclass(frozen=True)
class Scenario:
    """One registered generator: a named, seeded trace builder."""

    name: str
    description: str
    build: Callable[..., Trace]
    #: True for impaired derivatives of a base scenario (lossy /
    #: reordered / bursty); base-scenario listings skip them so the
    #: perfect-network suites and benches keep their historical set.
    variant: bool = False


#: The registry, in registration order.
SCENARIOS: Dict[str, Scenario] = {}


def scenario(name: str, description: str, variant: bool = False):
    """Register a trace builder under ``name``."""

    def deco(fn: Callable[..., Trace]) -> Callable[..., Trace]:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = Scenario(name, description, fn, variant)
        return fn

    return deco


def scenario_names(variants: bool = False) -> List[str]:
    """Registered scenario names, in registration order.

    The default lists only the base (perfect-network) generators;
    ``variants=True`` appends the impaired derivatives.
    """
    return [
        name for name, s in SCENARIOS.items() if variants or not s.variant
    ]


def build_trace(name: str, packets: int = 20_000, seed: int = 0, **kw) -> Trace:
    """Build ``name``'s trace with ~``packets`` records (seeded)."""
    try:
        entry = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None
    return entry.build(packets=packets, seed=seed, **kw)


# -- shared assembly helpers ----------------------------------------------


class _PathInterner:
    """Dedupe switch paths into a table; hand out stable indices."""

    def __init__(self) -> None:
        self._ids: Dict[Tuple[int, ...], int] = {}
        self.paths: List[Tuple[int, ...]] = []

    def intern(self, path: Sequence[int]) -> int:
        key = tuple(int(s) for s in path)
        idx = self._ids.get(key)
        if idx is None:
            idx = len(self.paths)
            self._ids[key] = idx
            self.paths.append(key)
        return idx


def _ecmp_switch_paths(
    topo: Topology, src: int, dst: int, limit: int = 8
) -> List[Tuple[int, ...]]:
    """Distinct switch-only ECMP paths between two nodes, in nx order."""
    out: List[Tuple[int, ...]] = []
    for node_path in topo.ecmp_paths(src, dst, limit):
        sw = tuple(
            n for n in node_path
            if topo.graph.nodes[n].get(KIND, SWITCH) == SWITCH
        )
        if sw and sw not in out:
            out.append(sw)
    return out


def _per_flow_columns(
    fids: np.ndarray,
    starts: np.ndarray,
    pkts: np.ndarray,
    gaps: np.ndarray,
    flow_path_id: np.ndarray,
    flow_bytes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand per-flow specs into per-packet (ts, flow, path, size) columns.

    Packet ``j`` of a flow leaves at ``start + j * gap``; every packet
    is MTU-sized except the last, which carries the remainder of the
    flow's bytes (clamped to [1, MTU] in case the packet count was
    capped below ``ceil(bytes / MTU)``).
    """
    reps = pkts.astype(np.int64)
    total = int(reps.sum())
    offs = np.cumsum(reps) - reps
    seq = np.arange(total, dtype=np.int64) - np.repeat(offs, reps)
    ts = np.repeat(starts, reps) + seq * np.repeat(gaps, reps)
    flow_col = np.repeat(fids, reps)
    path_col = np.repeat(flow_path_id, reps)
    size_col = np.full(total, MTU, dtype=np.int64)
    last_rows = offs + reps - 1
    size_col[last_rows] = np.clip(flow_bytes - (reps - 1) * MTU, 1, MTU)
    return ts, flow_col, path_col, size_col


def _finalize(
    name: str,
    ts: np.ndarray,
    flow_col: np.ndarray,
    path_col: np.ndarray,
    size_col: np.ndarray,
    paths: Sequence[Sequence[int]],
    universe: Sequence[int],
    packets: Optional[int],
) -> Trace:
    """Time-sort, truncate to ``packets`` rows, assign sequential pids."""
    order = np.argsort(ts, kind="stable")
    if packets is not None:
        order = order[:packets]
    n = order.size
    return Trace(
        ts[order], flow_col[order], np.arange(n, dtype=np.int64),
        path_col[order], size_col[order], paths, universe, name,
    )


def _random_host_paths(
    topo: Topology,
    flows: int,
    rng: np.random.Generator,
    interner: _PathInterner,
    require_ecmp: bool = False,
) -> Tuple[np.ndarray, List[List[int]]]:
    """Pick a host pair per flow; return one interned ECMP pick each.

    Also returns each flow's full candidate list (interned), which the
    churn scenario cycles through.  ``require_ecmp`` keeps only pairs
    with at least two distinct switch paths.
    """
    hosts = topo.hosts
    cache: Dict[Tuple[int, int], List[int]] = {}
    picks = np.empty(flows, dtype=np.int64)
    candidates: List[List[int]] = []
    made = 0
    while made < flows:
        src, dst = rng.choice(len(hosts), size=2, replace=False)
        key = (hosts[int(src)], hosts[int(dst)])
        ids = cache.get(key)
        if ids is None:
            ids = [
                interner.intern(p)
                for p in _ecmp_switch_paths(topo, key[0], key[1])
            ]
            cache[key] = ids
        if require_ecmp and len(ids) < 2:
            continue
        picks[made] = ids[int(rng.integers(len(ids)))]
        candidates.append(ids)
        made += 1
    return picks, candidates


# -- the scenarios --------------------------------------------------------


def _poisson_dc(
    name: str,
    cdf: EmpiricalCDF,
    packets: int,
    seed: int,
    interarrival: float,
    max_flow_pkts: int,
) -> Trace:
    """Poisson flow arrivals with CDF-drawn sizes on a k=4 fat-tree."""
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    mean_pkts = max(1.0, cdf.mean() / MTU)
    # Overshoot ~30% so truncation to `packets` rows cuts the tail, not
    # the flow mix.
    flows = max(8, int(1.3 * packets / mean_pkts))
    flow_bytes = cdf.sample_n(flows, rng)
    pkts = np.clip(-(-flow_bytes // MTU), 1, max_flow_pkts)
    starts = np.cumsum(rng.exponential(scale=interarrival, size=flows))
    gaps = rng.uniform(20e-6, 60e-6, size=flows)
    interner = _PathInterner()
    picks, _ = _random_host_paths(topo, flows, rng, interner)
    ts, flow_col, path_col, size_col = _per_flow_columns(
        np.arange(1, flows + 1, dtype=np.int64), starts, pkts, gaps,
        picks, flow_bytes,
    )
    return _finalize(name, ts, flow_col, path_col, size_col,
                     interner.paths, topo.switch_universe(), packets)


@scenario("web-search", "Poisson web-search flows (Fig. 7b CDF), k=4 fat-tree")
def web_search(packets: int = 20_000, seed: int = 0, scale: float = 0.02) -> Trace:
    """Web-search workload, size-scaled so flows average ~30 packets."""
    return _poisson_dc("web-search", web_search_cdf(scale), packets, seed,
                       interarrival=200e-6, max_flow_pkts=512)


@scenario("hadoop", "Poisson Hadoop flows (Fig. 7c CDF), k=4 fat-tree")
def hadoop(packets: int = 20_000, seed: int = 0, scale: float = 0.1) -> Trace:
    """Hadoop workload: mostly sub-kilobyte mice plus a heavy tail."""
    return _poisson_dc("hadoop", hadoop_cdf(scale), packets, seed,
                       interarrival=120e-6, max_flow_pkts=512)


@scenario("incast", "Synchronized many-to-one waves into a single sink host")
def incast(
    packets: int = 20_000,
    seed: int = 0,
    fanin: int = 15,
    burst: int = 32,
    period: float = 1e-3,
) -> Trace:
    """Partition/aggregate incast: every worker answers every wave.

    One long-lived flow per worker; each wave, all workers burst
    ``burst`` MTU packets at the same aggregator host within
    microseconds of each other.
    """
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    hosts = topo.hosts
    fanin = min(fanin, len(hosts) - 1)
    aggregator = hosts[0]
    workers = hosts[1 : fanin + 1]
    interner = _PathInterner()
    worker_paths = np.empty(fanin, dtype=np.int64)
    for i, w in enumerate(workers):
        cands = _ecmp_switch_paths(topo, w, aggregator)
        worker_paths[i] = interner.intern(cands[int(rng.integers(len(cands)))])
    waves = max(1, -(-packets // (fanin * burst)))
    # Row layout: wave-major, worker-mid, packet-minor.
    wave_idx = np.repeat(np.arange(waves), fanin * burst)
    worker_idx = np.tile(np.repeat(np.arange(fanin), burst), waves)
    seq = np.tile(np.arange(burst), waves * fanin)
    jitter = rng.uniform(0.0, 5e-6, size=(waves, fanin))
    ts = (
        wave_idx * period
        + jitter[wave_idx, worker_idx]
        + seq * 1e-6
    )
    flow_col = worker_idx + 1
    path_col = worker_paths[worker_idx]
    size_col = np.full(ts.size, MTU, dtype=np.int64)
    return _finalize("incast", ts, flow_col.astype(np.int64), path_col,
                     size_col, interner.paths, topo.switch_universe(), packets)


@scenario("microburst", "Dense bursts on hot flows over background mice")
def microburst(
    packets: int = 20_000,
    seed: int = 0,
    hot_flows: int = 8,
    burst: int = 64,
    inter_burst: float = 5e-3,
    background_frac: float = 0.3,
) -> Trace:
    """Microburst trains: short dense bursts separated by quiet gaps.

    Hot flows fire trains of ``burst`` back-to-back packets every
    ``inter_burst`` seconds; a light background of mice keeps batches
    spanning many flows (the collector's grouping stress).
    """
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    interner = _PathInterner()
    hot_budget = int(packets * (1.0 - background_frac))
    trains = max(1, -(-hot_budget // (hot_flows * burst)))
    hot_picks, _ = _random_host_paths(topo, hot_flows, rng, interner)
    # Hot columns: flow-major, train-mid, packet-minor.
    flow_idx = np.repeat(np.arange(hot_flows), trains * burst)
    train_idx = np.tile(np.repeat(np.arange(trains), burst), hot_flows)
    seq = np.tile(np.arange(burst), hot_flows * trains)
    phase = rng.uniform(0.0, inter_burst, size=hot_flows)
    hot_ts = phase[flow_idx] + train_idx * inter_burst + seq * 2e-6
    hot_flow_col = flow_idx + 1
    hot_path_col = hot_picks[flow_idx]
    duration = float(trains * inter_burst)
    # Background mice: 1-3 packets each, uniform arrivals.
    mice = max(4, int(packets * background_frac) // 2)
    mice_pkts = rng.integers(1, 4, size=mice)
    mice_picks, _ = _random_host_paths(topo, mice, rng, interner)
    mice_ts, mice_flow_col, mice_path_col, mice_size = _per_flow_columns(
        np.arange(hot_flows + 1, hot_flows + mice + 1, dtype=np.int64),
        rng.uniform(0.0, duration, size=mice),
        mice_pkts,
        np.full(mice, 30e-6),
        mice_picks,
        mice_pkts * MTU,
    )
    ts = np.concatenate([hot_ts, mice_ts])
    flow_col = np.concatenate([hot_flow_col, mice_flow_col])
    path_col = np.concatenate([hot_path_col, mice_path_col])
    size_col = np.concatenate(
        [np.full(hot_ts.size, MTU, dtype=np.int64), mice_size]
    )
    return _finalize("microburst", ts, flow_col.astype(np.int64), path_col,
                     size_col, interner.paths, topo.switch_universe(), packets)


@scenario("path-churn", "Long-lived inter-pod flows hopping between ECMP paths")
def path_churn(
    packets: int = 20_000,
    seed: int = 0,
    flows: int = 64,
    churn_every: Optional[int] = None,
) -> Trace:
    """ECMP path churn: each flow rotates through its candidate paths.

    Every ``churn_every`` packets a flow moves to its next equal-cost
    path -- the reroute case the path decoder detects as an
    inconsistency, resets on, and re-converges from (the driver's
    accuracy column quantifies the cost).  By default the period is a
    quarter of each flow's packet budget, so flows churn ~3 times at
    any trace size.
    """
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    interner = _PathInterner()
    _, candidates = _random_host_paths(
        topo, flows, rng, interner, require_ecmp=True
    )
    per_flow = max(1, -(-packets // flows))
    if churn_every is None:
        churn_every = max(8, per_flow // 4)
    starts = rng.uniform(0.0, 1e-3, size=flows)
    gaps = rng.uniform(20e-6, 60e-6, size=flows)
    seq = np.arange(per_flow, dtype=np.int64)
    cols_ts = []
    cols_flow = []
    cols_path = []
    for f in range(flows):
        cands = np.asarray(candidates[f], dtype=np.int64)
        cols_ts.append(starts[f] + seq * gaps[f])
        cols_flow.append(np.full(per_flow, f + 1, dtype=np.int64))
        cols_path.append(cands[(seq // churn_every) % len(cands)])
    ts = np.concatenate(cols_ts)
    flow_col = np.concatenate(cols_flow)
    path_col = np.concatenate(cols_path)
    size_col = np.full(ts.size, MTU, dtype=np.int64)
    return _finalize("path-churn", ts, flow_col, path_col, size_col,
                     interner.paths, topo.switch_universe(), packets)


@scenario("elephant-mice", "A few huge flows interleaved with a mice swarm")
def elephant_mice(
    packets: int = 20_000,
    seed: int = 0,
    elephants: int = 6,
    elephant_share: float = 0.7,
) -> Trace:
    """Adversarial skew: elephants carry the bytes, mice carry the flows.

    The mice swarm forces the collector to hold state for thousands of
    flows that will never decode, while the elephants' packets arrive
    interleaved -- the flow-table and batching worst case.
    """
    rng = np.random.default_rng(seed)
    topo = fat_tree(4)
    interner = _PathInterner()
    ele_budget = int(packets * elephant_share)
    ele_pkts = np.full(elephants, max(1, ele_budget // elephants))
    mice = max(4, (packets - ele_budget) // 2)
    mice_pkts = rng.integers(1, 4, size=mice)
    counts = np.concatenate([ele_pkts, mice_pkts])
    flows = elephants + mice
    picks, _ = _random_host_paths(topo, flows, rng, interner)
    duration = 0.5
    starts = np.concatenate([
        rng.uniform(0.0, 1e-3, size=elephants),
        rng.uniform(0.0, duration, size=mice),
    ])
    # Elephant gaps spread their packets across the whole trace so every
    # batch interleaves them with mice.
    gaps = np.concatenate([
        duration / np.maximum(1, ele_pkts),
        np.full(mice, 30e-6),
    ])
    ts, flow_col, path_col, size_col = _per_flow_columns(
        np.arange(1, flows + 1, dtype=np.int64), starts, counts, gaps,
        picks, counts * MTU,
    )
    return _finalize("elephant-mice", ts, flow_col, path_col, size_col,
                     interner.paths, topo.switch_universe(), packets)


@scenario("isp-long-paths", "Long-haul flows on a synthetic ISP tree")
def isp_long_paths(
    packets: int = 20_000,
    seed: int = 0,
    num_switches: int = 48,
    diameter: int = 12,
    flows: int = 48,
) -> Trace:
    """The Fig. 10 large-diameter regime: long paths, big universe.

    Endpoint pairs are drawn from a synthetic ISP tree (§6.3
    substitution); paths run up to ``diameter + 1`` switches, so
    per-flow decoding needs many more packets than in the fat-tree
    scenarios -- the slow-convergence end of the replay spectrum.
    """
    rng = np.random.default_rng(seed)
    topo = synthetic_isp(num_switches, diameter, seed=seed)
    switches = topo.switches
    interner = _PathInterner()
    picks = np.empty(flows, dtype=np.int64)
    made = 0
    while made < flows:
        a, b = rng.choice(len(switches), size=2, replace=False)
        path = topo.switch_path(switches[int(a)], switches[int(b)])
        if len(path) < 3:
            continue
        picks[made] = interner.intern(path)
        made += 1
    per_flow = max(1, -(-packets // flows))
    ts, flow_col, path_col, size_col = _per_flow_columns(
        np.arange(1, flows + 1, dtype=np.int64),
        rng.uniform(0.0, 1e-3, size=flows),
        np.full(flows, per_flow, dtype=np.int64),
        rng.uniform(20e-6, 60e-6, size=flows),
        picks,
        np.full(flows, per_flow * MTU, dtype=np.int64),
    )
    return _finalize("isp-long-paths", ts, flow_col, path_col, size_col,
                     interner.paths, topo.switch_universe(), packets)


# -- impaired variants -----------------------------------------------------
#
# Every base scenario gets lossy / reordered / bursty derivatives: the
# base trace is built as usual, then pushed through a fixed impairment
# pipeline (seeded from the scenario seed, so variants are as
# reproducible as their bases).  Variants register with
# ``variant=True`` -- ``scenario_names()`` keeps returning the base
# set; pass ``variants=True`` to list these too.

#: Impairment pipelines per variant suffix (model seeds are offset
#: from the scenario seed so the network's coins never collide with a
#: workload generator's).
VARIANT_IMPAIRMENTS: Dict[str, Callable[[int], list]] = {}


def _register_variants() -> None:
    from repro.replay.impair import (
        Duplicate,
        GilbertElliott,
        IIDLoss,
        Reorder,
        impair_trace,
    )

    VARIANT_IMPAIRMENTS.update({
        # 10% uniform loss with a whiff of duplication: the paper's
        # graceful-degradation regime.
        "lossy": lambda seed: [
            IIDLoss(0.1, seed=seed + 101),
            Duplicate(0.01, lag=8, seed=seed + 102),
        ],
        # Heavy bounded reordering plus duplicates: the in-network-
        # ordering stress (PAPERS.md) -- nothing dropped.
        "reordered": lambda seed: [
            Reorder(depth=64, prob=0.5, seed=seed + 201),
            Duplicate(0.02, lag=16, seed=seed + 202),
        ],
        # Gilbert-Elliott bursty loss: ~8-record loss trains at a ~10%
        # average rate, the BASEL buffering-drop shape.
        "bursty": lambda seed: [
            GilbertElliott(
                p_bad=0.015, p_good=0.125, loss_bad=0.9,
                seed=seed + 301,
            ),
        ],
    })

    def make_builder(base_name: str, suffix: str):
        def build(packets: int = 20_000, seed: int = 0, **kw) -> Trace:
            base = SCENARIOS[base_name].build(
                packets=packets, seed=seed, **kw
            )
            return impair_trace(
                base, VARIANT_IMPAIRMENTS[suffix](seed),
                name=f"{base_name}-{suffix}",
            )
        return build

    for base_name in scenario_names():
        for suffix, blurb in (
            ("lossy", "10% i.i.d. loss + 1% duplication"),
            ("reordered", "bounded reorder (depth 64) + 2% duplication"),
            ("bursty", "Gilbert-Elliott bursty loss (~10% avg)"),
        ):
            scenario(
                f"{base_name}-{suffix}",
                f"{SCENARIOS[base_name].description} -- {blurb}",
                variant=True,
            )(make_builder(base_name, suffix))


_register_variants()

"""Columnar packet traces: the replay engine's storage format.

A :class:`Trace` is a struct-of-arrays view of a packet stream -- the
shape the vectorised dataplane and the collector's columnar
``ingest_batch`` consume directly, with no per-packet Python objects
anywhere on the hot path:

* ``ts`` -- arrival time in seconds (float64, non-decreasing after
  :meth:`sorted_by_time`);
* ``flow_id`` -- the flow every record belongs to (int64);
* ``pid`` -- the packet identifier every switch hashes (int64);
* ``path_id`` -- index into the deduplicated ``paths`` table (int64);
* ``size`` -- payload bytes of the packet (int64).

Paths are interned: the per-record column stores an index into a small
table of switch-ID tuples, so a million-packet trace over a dozen ECMP
paths costs one int64 per packet, not one tuple.  ``universe`` is the
switch-ID universe V the hash-compressed decoders need (paper §4.2);
it defaults to the union of all switches appearing in ``paths``.

Persistence is ``.npz`` (columns + padded path table, round-trip
exact) with a CSV import/export for interoperating with external
capture tooling (one row per packet, paths spelled ``"s0|s1|s2"``).
"""

from __future__ import annotations

import csv
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class Trace:
    """An immutable columnar packet trace plus its interned path table.

    Parameters
    ----------
    ts, flow_id, pid, path_id, size:
        Equal-length 1-D columns (coerced to float64/int64).
    paths:
        The path table: ``paths[path_id]`` is the tuple of switch IDs
        the packet traverses, in hop order.
    universe:
        Optional switch-ID universe V; defaults to the sorted union of
        all switches in ``paths``.
    name:
        Label carried into reports and filenames.
    """

    def __init__(
        self,
        ts: Sequence[float],
        flow_id: Sequence[int],
        pid: Sequence[int],
        path_id: Sequence[int],
        size: Sequence[int],
        paths: Sequence[Sequence[int]],
        universe: Optional[Sequence[int]] = None,
        name: str = "trace",
    ) -> None:
        self.ts = np.asarray(ts, dtype=np.float64)
        self.flow_id = np.asarray(flow_id, dtype=np.int64)
        self.pid = np.asarray(pid, dtype=np.int64)
        self.path_id = np.asarray(path_id, dtype=np.int64)
        self.size = np.asarray(size, dtype=np.int64)
        self.name = name
        cols = (self.ts, self.flow_id, self.pid, self.path_id, self.size)
        n = self.ts.shape[0]
        if any(c.ndim != 1 or c.shape[0] != n for c in cols):
            raise ValueError(
                "trace columns must be equal-length 1-D arrays, got shapes "
                + "/".join(str(c.shape) for c in cols)
            )
        if not paths and n:
            raise ValueError(
                "trace needs a non-empty path table (only a zero-row "
                "trace may have no paths)"
            )
        self.paths: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(s) for s in p) for p in paths
        )
        if any(not p for p in self.paths):
            raise ValueError("paths must have at least one switch each")
        if n and (
            self.path_id.min() < 0 or self.path_id.max() >= len(self.paths)
        ):
            raise ValueError("path_id column indexes outside the path table")
        self._path_lens = np.asarray([len(p) for p in self.paths], dtype=np.int64)
        if universe is None:
            universe = sorted({s for p in self.paths for s in p})
        self.universe: Tuple[int, ...] = tuple(int(v) for v in universe)

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    @property
    def num_flows(self) -> int:
        """Distinct flows in the trace."""
        return int(np.unique(self.flow_id).size)

    @property
    def hop_counts(self) -> np.ndarray:
        """Per-record path length -- the collector's ``hop_count`` column."""
        return self._path_lens[self.path_id]

    def path_of(self, row: int) -> Tuple[int, ...]:
        """The switch path record ``row`` traverses."""
        return self.paths[int(self.path_id[row])]

    def flow_paths(self) -> Dict[int, Tuple[int, ...]]:
        """flow_id -> the distinct path ids the flow traversed, in order.

        Most flows use one path; churned flows list every path they
        rotated through.  This is the ground truth the replay driver
        scores decoded paths against: any traversed path is a correct
        answer to "which path did this flow take", while a path the
        flow never used is a decode error.
        """
        out: Dict[int, List[int]] = {}
        for fid, pid in zip(self.flow_id.tolist(), self.path_id.tolist()):
            lst = out.setdefault(fid, [])
            if pid not in lst:
                lst.append(pid)
        return {fid: tuple(lst) for fid, lst in out.items()}

    def batches(self, batch_size: int) -> Iterator[Tuple[int, int]]:
        """Yield ``[lo, hi)`` row bounds covering the trace in order."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        for lo in range(0, len(self), batch_size):
            yield lo, min(lo + batch_size, len(self))

    def sorted_by_time(self) -> "Trace":
        """A copy sorted stably by ``ts`` (equal stamps keep row order)."""
        order = np.argsort(self.ts, kind="stable")
        return Trace(
            self.ts[order], self.flow_id[order], self.pid[order],
            self.path_id[order], self.size[order],
            self.paths, self.universe, self.name,
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the trace as a compressed ``.npz`` (round-trip exact).

        Zero-row traces round-trip too (an empty path table pads to a
        ``(0, 0)`` matrix): a capture pipeline that saw no packets in
        a window must still be able to checkpoint.
        """
        k_max = int(self._path_lens.max()) if self._path_lens.size else 0
        table = np.full((len(self.paths), k_max), -1, dtype=np.int64)
        for i, p in enumerate(self.paths):
            table[i, : len(p)] = p
        np.savez_compressed(
            path,
            ts=self.ts, flow_id=self.flow_id, pid=self.pid,
            path_id=self.path_id, size=self.size,
            path_table=table, path_len=self._path_lens,
            universe=np.asarray(self.universe, dtype=np.int64),
            name=np.asarray(self.name),
        )

    @staticmethod
    def load(path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            table = data["path_table"]
            lens = data["path_len"]
            paths = [
                tuple(int(v) for v in table[i, : int(lens[i])])
                for i in range(table.shape[0])
            ]
            return Trace(
                data["ts"], data["flow_id"], data["pid"],
                data["path_id"], data["size"], paths,
                universe=data["universe"], name=str(data["name"]),
            )

    def to_csv(self, path: str) -> None:
        """Write one row per packet: ``ts,flow_id,pid,size,path``."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["ts", "flow_id", "pid", "size", "path"])
            path_strs = ["|".join(str(s) for s in p) for p in self.paths]
            for i in range(len(self)):
                writer.writerow([
                    repr(float(self.ts[i])), int(self.flow_id[i]),
                    int(self.pid[i]), int(self.size[i]),
                    path_strs[int(self.path_id[i])],
                ])

    @staticmethod
    def from_csv(
        path: str,
        universe: Optional[Sequence[int]] = None,
        name: str = "csv-trace",
    ) -> "Trace":
        """Import a ``ts,flow_id,pid,size,path`` CSV (paths interned)."""
        ts: List[float] = []
        fids: List[int] = []
        pids: List[int] = []
        sizes: List[int] = []
        path_ids: List[int] = []
        interned: Dict[str, int] = {}
        paths: List[Tuple[int, ...]] = []
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            required = {"ts", "flow_id", "pid", "size", "path"}
            if reader.fieldnames is None or not required <= set(reader.fieldnames):
                raise ValueError(
                    f"trace CSV needs columns {sorted(required)}, got "
                    f"{reader.fieldnames}"
                )
            for row in reader:
                key = row["path"]
                pid_idx = interned.get(key)
                if pid_idx is None:
                    pid_idx = len(paths)
                    interned[key] = pid_idx
                    paths.append(tuple(int(s) for s in key.split("|")))
                ts.append(float(row["ts"]))
                fids.append(int(row["flow_id"]))
                pids.append(int(row["pid"]))
                sizes.append(int(row["size"]))
                path_ids.append(pid_idx)
        # A header-only CSV is a legitimate zero-row trace (an empty
        # capture window); only a file without the header is malformed
        # and already rejected above.
        return Trace(ts, fids, pids, path_ids, sizes, paths,
                     universe=universe, name=name)

"""Network impairment engine: columnar loss / reorder / duplication.

The paper's headline robustness property is that PINT's digests
survive an unreliable network: every packet re-selects its layer,
carrier and acting set by a global hash of its own id, so *any subset*
of delivered packets still decodes and accuracy degrades gracefully
with loss (§4).  This module makes that claim testable end-to-end: it
transforms a perfect, in-order packet stream into the stream an
unreliable network would actually deliver, before the collector ever
sees it.

The unit of work is a **delivery schedule**: an int64 array of row
indices into the original trace, in delivery order.  The identity
schedule ``arange(n)`` is the perfect network; impairment models
transform schedules --

* dropping entries (loss),
* repeating entries (duplication -- the copy keeps its packet id, so
  it hashes identically everywhere, exactly like a real duplicate),
* permuting entries (reordering).

Models are **seeded** (two runs with the same models produce
bit-identical schedules), **composable** (each consumes the previous
model's output; order matters and is respected), and **columnar** (no
per-record Python loops -- masks, argsorts and run-length expansions
only, the same vectorised discipline as
:class:`~repro.replay.dataplane.TraceDataplane`).

Concrete models:

* :class:`IIDLoss` -- every delivery dropped independently;
* :class:`GilbertElliott` -- two-state bursty loss (the classic
  good/bad Markov channel), run lengths drawn geometrically in bulk;
* :class:`Reorder` -- bounded displacement: a delivery may be
  overtaken only by deliveries at most ``depth`` positions behind it,
  which bounds per-flow reordering distance by ``depth`` as well;
* :class:`Duplicate` -- independent duplication, the copy landing
  within ``lag`` positions of the original.

Entry points: :func:`plan_delivery` composes models into a schedule,
:func:`summarize_delivery` scores one against the perfect stream, and
:func:`impair_trace` materialises the delivered stream as a new
:class:`~repro.replay.trace.Trace` (the scenario-variant hook).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.replay.trace import Trace

#: Domain-separation constant folded into every model's RNG seed so an
#: impairment stream can never collide with a workload generator that
#: happens to share the user-facing seed integer.
_SEED_DOMAIN = 0x1A97


class ImpairmentModel:
    """Base class: one seeded, composable delivery-schedule transform.

    Subclasses implement :meth:`apply`, which maps a schedule (row
    indices in delivery order) to the schedule their impairment would
    deliver.  ``stage`` is the model's position in the composed
    pipeline; it salts the RNG so two identically-seeded models at
    different stages draw independent randomness while the pipeline as
    a whole stays bit-reproducible.
    """

    #: Short kind tag used by :meth:`describe` (subclasses override).
    name = "impairment"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, stage: int) -> np.random.Generator:
        """The model's deterministic RNG for one pipeline stage."""
        return np.random.default_rng((_SEED_DOMAIN, self.seed, int(stage)))

    def apply(
        self,
        rows: np.ndarray,
        flow_ids: Optional[np.ndarray],
        stage: int,
    ) -> np.ndarray:
        """Transform a delivery schedule (indices in delivery order).

        ``flow_ids`` is the *original* full flow column (models index
        it through ``rows`` when they need per-flow structure); it may
        be None for flow-agnostic pipelines.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line parameterisation, carried into reports."""
        return f"{self.name}(seed={self.seed})"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return self.describe()


class IIDLoss(ImpairmentModel):
    """Independent per-delivery loss with probability ``rate``."""

    name = "iid-loss"

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def apply(self, rows, flow_ids, stage):
        if self.rate == 0.0:
            return rows
        rng = self._rng(stage)
        keep = rng.random(rows.shape[0]) >= self.rate
        return rows[keep]

    def describe(self) -> str:
        return f"{self.name}(rate={self.rate}, seed={self.seed})"


class GilbertElliott(ImpairmentModel):
    """Two-state bursty loss: the Gilbert-Elliott channel.

    The channel alternates Good and Bad states with geometric run
    lengths -- ``p_bad`` is the per-delivery probability of entering
    Bad from Good, ``p_good`` of recovering -- and drops each delivery
    with the state's loss probability (``loss_good`` is 0 and
    ``loss_bad`` 1 in the classic Gilbert channel).  The state
    sequence starts Good and is generated by bulk geometric draws and
    one run-length expansion, not a per-record chain walk.
    """

    name = "gilbert-elliott"

    def __init__(
        self,
        p_bad: float,
        p_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= p_bad <= 1.0:
            raise ValueError(f"p_bad must be in [0, 1], got {p_bad}")
        if not 0.0 < p_good <= 1.0:
            raise ValueError(f"p_good must be in (0, 1], got {p_good}")
        if not 0.0 <= loss_good <= 1.0 or not 0.0 <= loss_bad <= 1.0:
            raise ValueError("loss probabilities must be in [0, 1]")
        self.p_bad = float(p_bad)
        self.p_good = float(p_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)

    def _bad_states(self, m: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean Bad-state column of length ``m`` (True = Bad)."""
        # Expected Good+Bad cycle length; draw ~that many cycles per
        # chunk so one pass usually covers the stream.
        cycle = 1.0 / self.p_bad + 1.0 / self.p_good
        chunks: List[np.ndarray] = []
        covered = 0
        while covered < m:
            need = max(8, int((m - covered) / cycle) + 8)
            good_runs = rng.geometric(self.p_bad, size=need)
            bad_runs = rng.geometric(self.p_good, size=need)
            lens = np.empty(2 * need, dtype=np.int64)
            lens[0::2] = good_runs
            lens[1::2] = bad_runs
            # Clip each run to the chunk's remaining need (+1 so a
            # clipped run still spills past the window): any run
            # starting inside the window then covers its remainder
            # exactly as the unclipped run would, while a tiny p_bad
            # (geometric draws of ~1/p) can no longer materialise
            # gigabytes of states for a short stream.
            lens = np.minimum(lens, m - covered + 1)
            states = np.zeros(2 * need, dtype=bool)
            states[1::2] = True
            chunk = np.repeat(states, lens)
            chunks.append(chunk)
            covered += int(chunk.shape[0])
        return np.concatenate(chunks)[:m]

    def apply(self, rows, flow_ids, stage):
        if self.p_bad == 0.0 and self.loss_good == 0.0:
            return rows
        rng = self._rng(stage)
        m = rows.shape[0]
        if m == 0:
            return rows
        if self.p_bad == 0.0:
            drop_p = np.full(m, self.loss_good)
        else:
            bad = self._bad_states(m, rng)
            drop_p = np.where(bad, self.loss_bad, self.loss_good)
        keep = rng.random(m) >= drop_p
        return rows[keep]

    def describe(self) -> str:
        return (
            f"{self.name}(p_bad={self.p_bad}, p_good={self.p_good}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad}, "
            f"seed={self.seed})"
        )


class Reorder(ImpairmentModel):
    """Bounded random reordering via jittered sort keys.

    Each delivery's sort key is its position plus, with probability
    ``prob``, a uniform jitter in ``[0, depth)``; a stable argsort of
    the keys is the reordered schedule.  A delivery at position ``j``
    can only land before one at position ``i < j`` when ``j - i <
    depth``, so displacement is bounded by ``depth`` positions in the
    stream -- and a fortiori *per flow*: two same-flow deliveries more
    than ``depth`` apart can never invert, which is the bounded
    per-flow reordering the sink's decoders are scored against
    (property-tested).  ``depth=0`` is the identity.
    """

    name = "reorder"

    def __init__(self, depth: int, prob: float = 1.0, seed: int = 0) -> None:
        super().__init__(seed)
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        self.depth = int(depth)
        self.prob = float(prob)

    def apply(self, rows, flow_ids, stage):
        if self.depth == 0 or self.prob == 0.0:
            return rows
        rng = self._rng(stage)
        m = rows.shape[0]
        if m < 2:
            return rows
        jitter = rng.uniform(0.0, float(self.depth), size=m)
        if self.prob < 1.0:
            jitter *= rng.random(m) < self.prob
        keys = np.arange(m, dtype=np.float64) + jitter
        order = np.argsort(keys, kind="stable")
        return rows[order]

    def describe(self) -> str:
        return (
            f"{self.name}(depth={self.depth}, prob={self.prob}, "
            f"seed={self.seed})"
        )


class Duplicate(ImpairmentModel):
    """Independent duplication; copies land within ``lag`` positions.

    Each delivery is duplicated with probability ``prob``.  The copy
    keeps its row index -- and therefore its packet id -- so it hashes
    identically everywhere downstream, exactly like a retransmitted or
    switch-duplicated packet; it is inserted at a uniform offset in
    ``(0, lag]`` positions after the original (stable argsort of
    fractional keys, originals on integer keys).
    """

    name = "duplicate"

    def __init__(self, prob: float, lag: int = 16, seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        if lag < 1:
            raise ValueError(f"lag must be >= 1, got {lag}")
        self.prob = float(prob)
        self.lag = int(lag)

    def apply(self, rows, flow_ids, stage):
        if self.prob == 0.0:
            return rows
        rng = self._rng(stage)
        m = rows.shape[0]
        dup = rng.random(m) < self.prob
        idx = np.flatnonzero(dup)
        if idx.size == 0:
            return rows
        # Copies get fractional keys strictly between their original's
        # integer key and original + lag, so a copy never precedes its
        # original and never outruns the lag bound.
        copy_keys = idx + rng.uniform(0.5, self.lag + 0.5, size=idx.size)
        keys = np.concatenate([np.arange(m, dtype=np.float64), copy_keys])
        all_rows = np.concatenate([rows, rows[idx]])
        order = np.argsort(keys, kind="stable")
        return all_rows[order]

    def describe(self) -> str:
        return (
            f"{self.name}(prob={self.prob}, lag={self.lag}, "
            f"seed={self.seed})"
        )


# -- composition and scoring ----------------------------------------------


def plan_delivery(
    models: Sequence[ImpairmentModel],
    n: int,
    flow_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compose ``models`` over the identity schedule of ``n`` records.

    Returns the delivered row indices, in delivery order.  Models are
    applied left to right -- composition order is semantic (loss before
    duplication cannot duplicate a dropped packet; the reverse can
    deliver one copy of a packet whose other copy was lost) -- and the
    whole composition is bit-deterministic in the models' seeds.
    """
    rows = np.arange(n, dtype=np.int64)
    fids = np.asarray(flow_ids) if flow_ids is not None else None
    for stage, model in enumerate(models):
        rows = np.asarray(model.apply(rows, fids, stage), dtype=np.int64)
    return rows


@dataclass(frozen=True)
class DeliverySummary:
    """What one schedule did to the perfect stream, in counts."""

    offered: int
    #: Deliveries (duplicates included) -- the records the sink ingests.
    delivered: int
    #: Distinct original records delivered at least once.
    unique_delivered: int
    dropped: int
    duplicated: int
    #: Deliveries arriving after a later-sent record of the same flow.
    reordered: int

    @property
    def delivery_rate(self) -> float:
        """Fraction of offered records delivered at least once.

        NaN on a zero-record stream; bench writers route it through
        :func:`benchlib.write_bench_json`, which serialises it null.
        """
        if self.offered == 0:
            return float("nan")
        return self.unique_delivered / self.offered


def _count_reordered(rows: np.ndarray, fids: np.ndarray) -> int:
    """Deliveries whose original index trails an already-delivered
    later record of the same flow (vectorised per-flow running max).

    Flows are grouped with one stable argsort (delivery order is kept
    inside each group); the per-group running max runs as a single
    ``maximum.accumulate`` over group-offset values, the contiguous-
    groups trick that avoids both a per-flow loop and a segmented
    scan.
    """
    m = rows.shape[0]
    if m < 2:
        return 0
    order = np.argsort(fids, kind="stable")
    r = rows[order]
    f = fids[order]
    starts = np.concatenate(([True], f[1:] != f[:-1]))
    group = np.cumsum(starts) - 1
    # Offset each group into its own disjoint value range so one global
    # cummax cannot leak across the boundary.
    span = np.int64(m) + np.int64(rows.max()) + 2
    shifted = r + group * span
    cummax = np.maximum.accumulate(shifted)
    # A delivery is reordered when a *previous* same-flow delivery had
    # a larger original index: compare against the exclusive cummax.
    inv = np.zeros(m, dtype=bool)
    inv[1:] = (shifted[1:] < cummax[:-1]) & ~starts[1:]
    return int(inv.sum())


def summarize_delivery(
    n: int,
    rows: np.ndarray,
    flow_ids: Optional[np.ndarray] = None,
) -> DeliverySummary:
    """Score a delivery schedule against the perfect ``arange(n)``."""
    rows = np.asarray(rows, dtype=np.int64)
    unique = int(np.unique(rows).size) if rows.size else 0
    if flow_ids is not None and rows.size:
        fids = np.asarray(flow_ids)[rows]
    else:
        fids = np.zeros(rows.shape[0], dtype=np.int64)
    return DeliverySummary(
        offered=int(n),
        delivered=int(rows.shape[0]),
        unique_delivered=unique,
        dropped=int(n) - unique,
        duplicated=int(rows.shape[0]) - unique,
        reordered=_count_reordered(rows, fids),
    )


def impair_trace(
    trace: Trace,
    models: Sequence[ImpairmentModel],
    name: Optional[str] = None,
) -> Trace:
    """Materialise the delivered stream as a new columnar trace.

    Rows are gathered in delivery order; duplicated packets keep their
    pid (the hash identity real duplicates have) and timestamps stay
    the *send* stamps, so a reordered trace is simply no longer
    time-sorted -- exactly what a capture at the sink would record.
    The path table and universe are shared unchanged.
    """
    rows = plan_delivery(models, len(trace), trace.flow_id)
    return Trace(
        trace.ts[rows],
        trace.flow_id[rows],
        trace.pid[rows],
        trace.path_id[rows],
        trace.size[rows],
        trace.paths,
        trace.universe,
        name if name is not None else f"{trace.name}+impaired",
    )


def describe_models(models: Sequence[ImpairmentModel]) -> Tuple[str, ...]:
    """The pipeline's one-line descriptions, in application order."""
    return tuple(m.describe() for m in models)

"""Operator CLI for the live collector service.

Three subcommands, one running system::

    # terminal 1: a sink for the "hadoop" scenario, all ports ephemeral
    python -m repro.service serve --scenario hadoop --query-port 0

    # terminal 2: replay the scenario's trace at it over reliable UDP
    python -m repro.service send --scenario hadoop --port <udp port>

    # terminal 3: ask it questions
    python -m repro.service query --port <query port> --op snapshot
    python -m repro.service query --port <query port> --flow-id 7

``serve`` prints one machine-parseable ready line
(``SERVICE READY udp=.. tcp=.. query=..``) once the sockets are bound
-- scripts (and the CI smoke job) wait on that -- then runs until
SIGINT/SIGTERM or ``--duration``, closes gracefully, and emits the
final snapshot as JSON on stdout.  ``send`` and ``query`` print a
single JSON object each; everything is strict JSON (non-finite floats
serialised as null), so the output pipes straight into ``jq``.

The server and the sender both derive their path-decoder
configuration from the *scenario* (same ``--scenario/--packets/--seed
/--digest-bits/--num-hashes`` on both sides reproduce the same
universe and digest layout); mismatched values are the CLI equivalent
of a mis-deployed sink and decode accordingly.
"""

from __future__ import annotations

import argparse
import json
import random
import signal
import sys
import threading
import time

import numpy as np

from repro.collector import Collector, path_consumer_factory
from repro.obs.metrics import MetricsRegistry
from repro.replay.dataplane import TraceDataplane
from repro.replay.scenarios import build_trace, scenario_names
from repro.service.client import make_sender
from repro.service.query import QueryClient, jsonable
from repro.service.server import CollectorServer


def _add_scenario_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scenario", default="hadoop", choices=scenario_names(variants=True),
        help="trace generator both sides derive their config from",
    )
    p.add_argument("--packets", type=int, default=5000,
                   help="trace length (default 5000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--digest-bits", type=int, default=8)
    p.add_argument("--num-hashes", type=int, default=1)


def _dataplane(args) -> TraceDataplane:
    trace = build_trace(args.scenario, packets=args.packets, seed=args.seed)
    return TraceDataplane(
        trace, digest_bits=args.digest_bits, num_hashes=args.num_hashes,
        mode="hash", seed=args.seed,
    )


def _emit(obj) -> None:
    json.dump(jsonable(obj), sys.stdout, allow_nan=False)
    sys.stdout.write("\n")
    sys.stdout.flush()


# -- serve -----------------------------------------------------------------

def cmd_serve(args) -> int:
    dataplane = _dataplane(args)
    # One registry shared by sink and front door: the query port's
    # `metrics` verb and the scrape endpoint see the whole pipeline.
    obs = MetricsRegistry() if args.metrics_port is not None else None
    collector = Collector(
        path_consumer_factory(
            dataplane.trace.universe, digest_bits=args.digest_bits,
            num_hashes=args.num_hashes, seed=args.seed, mode="hash",
            value_bits=dataplane.value_bits,
        ),
        num_shards=args.shards, seed=args.seed, obs=obs,
    )
    server = CollectorServer(
        collector, host=args.host, udp_port=args.udp_port,
        tcp_port=args.tcp_port, query_port=args.query_port,
        queue_frames=args.queue_frames,
        obs=obs, metrics_port=args.metrics_port,
    )
    if args.restore:
        if args.checkpoint is None:
            raise SystemExit("--restore requires --checkpoint PATH")
        try:
            server.restore_checkpoint(args.checkpoint)
            print(f"RESTORED checkpoint={args.checkpoint}", flush=True)
        except FileNotFoundError:
            # First boot of a service configured for recovery: nothing
            # to restore yet is normal, not an error.
            print(f"RESTORE SKIPPED (no {args.checkpoint})", flush=True)
    server.start()
    metrics = (
        "off" if args.metrics_port is None else str(server.metrics_port)
    )
    print(
        f"SERVICE READY udp={server.udp_port} tcp={server.tcp_port} "
        f"query={server.query_port} metrics={metrics}", flush=True,
    )
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    stop.wait(timeout=args.duration)
    if args.checkpoint is not None:
        # Checkpoint-on-shutdown (SIGTERM included): drain what was
        # admitted, persist the collector, *then* tear down -- the
        # next `serve --restore` resumes from exactly this state.
        server.save_checkpoint(args.checkpoint)
        print(f"CHECKPOINT SAVED {args.checkpoint}", flush=True)
    server.close(close_collector=True)
    _emit(server.snapshot().as_dict())
    return 0


# -- send ------------------------------------------------------------------

def cmd_send(args) -> int:
    dataplane = _dataplane(args)
    trace = dataplane.trace
    drop_fn = None
    if args.loss > 0.0:
        if args.transport != "udp":
            raise SystemExit("--loss only applies to the reliable udp transport")
        rng = random.Random(args.seed)
        drop_fn = lambda seq, attempt: rng.random() < args.loss  # noqa: E731
    kwargs = {"max_records": args.max_records}
    if drop_fn is not None:
        kwargs["drop_fn"] = drop_fn
    sender = make_sender(args.transport, args.host, args.port, **kwargs)
    hop_counts = trace.hop_counts
    start = time.perf_counter()
    with sender:
        for lo in range(0, len(trace), args.batch_size):
            hi = min(lo + args.batch_size, len(trace))
            rows = np.arange(lo, hi, dtype=np.int64)
            sender.send_batch(
                trace.flow_id[rows], trace.pid[rows], hop_counts[rows],
                dataplane.encode_rows(rows), now=float(trace.ts[hi - 1]),
            )
        sender.flush()
        seconds = time.perf_counter() - start
        _emit({
            "scenario": args.scenario,
            "transport": args.transport,
            "records": sender.records_sent,
            "batches": sender.batches_sent,
            "frames": sender.frames_sent,
            "retransmits": getattr(sender, "retransmits", 0),
            "acked_frames": getattr(sender, "acked_frames", 0),
            "seconds": seconds,
            "records_per_sec": (
                sender.records_sent / seconds if seconds > 0 else 0.0
            ),
        })
    return 0


# -- query -----------------------------------------------------------------

def cmd_query(args) -> int:
    with QueryClient(args.host, args.port, timeout=args.timeout) as client:
        if args.flow_id is not None:
            response = client.request(
                {"op": "flow", "flow_id": args.flow_id}
            )
        else:
            response = client.request({"op": args.op})
    _emit(response)
    return 0


# -- parser ----------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve, feed and query a live PINT collector.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run a collector behind the wire ports")
    _add_scenario_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--udp-port", type=int, default=0,
                   help="0 = ephemeral (see the ready line)")
    p.add_argument("--tcp-port", type=int, default=0)
    p.add_argument("--query-port", type=int, default=0)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--queue-frames", type=int, default=256)
    p.add_argument("--duration", type=float, default=None,
                   help="seconds to serve (default: until SIGINT/SIGTERM)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="bind a Prometheus /metrics HTTP port (0 = "
                        "ephemeral) and enable pipeline metrics; "
                        "omitted, instrumentation stays off")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write the collector's state here on shutdown "
                        "(SIGINT/SIGTERM/--duration included)")
    p.add_argument("--restore", action="store_true",
                   help="restore from --checkpoint before serving "
                        "(missing file = fresh start, not an error)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("send", help="replay a scenario trace at a server")
    _add_scenario_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the server's udp (or tcp) data port")
    p.add_argument("--transport", default="udp",
                   choices=["udp", "udp-unreliable", "tcp"])
    p.add_argument("--batch-size", type=int, default=2048)
    p.add_argument("--max-records", type=int, default=1024,
                   help="records per wire frame before fragmenting")
    p.add_argument("--loss", type=float, default=0.0,
                   help="simulated per-transmission drop rate (reliable udp)")
    p.set_defaults(fn=cmd_send)

    p = sub.add_parser("query", help="ask a running server for JSON answers")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the server's query port")
    p.add_argument("--op", default="snapshot",
                   choices=["ping", "snapshot", "stats", "metrics"])
    p.add_argument("--flow-id", type=int, default=None,
                   help="query one flow instead of --op")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=cmd_query)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""The collector's network front door: UDP + TCP listeners over a queue.

``CollectorServer`` is the boundary ROADMAP item 1 calls for -- the
step from "library" to "service": digest batches arrive as
:mod:`repro.service.wire` frames on a UDP socket (one frame per
datagram) or a TCP stream (frames back-to-back), pass through a
*bounded* admission queue, and a single ingest thread folds them into
the wrapped collector -- serial :class:`~repro.collector.Collector` or
:class:`~repro.collector.ParallelCollector` alike, both already speak
``ingest_batch``.

Admission is where a service differs from a library call, and every
way it can refuse work is explicit and counted (the BASEL lesson:
admission/drop policy is part of the system, not an accident):

* **queue full** -- the ingest thread is behind.  Fire-and-forget
  frames are dropped (``dropped_queue_full``); reliable frames are
  parked *unacked*, so the sender's retransmit re-offers them -- the
  drop counter then measures backpressure events, not loss.
* **bad version** -- a frame from a protocol this server does not
  speak (``dropped_bad_version``): version skew, surfaced, never
  misparsed.
* **bad frame** -- truncated/corrupt bytes (``dropped_bad_frame``).

Reliable streams (``FLAG_RELIABLE``) additionally get per-peer seq
tracking: duplicates are re-ACKed but not re-ingested, out-of-order
frames are held in a bounded reorder buffer and delivered in seq
order, and an ACK is sent only once the frame is actually handed to
the queue -- an ACK is a durability promise, not a reception note.
Fragment runs (``FLAG_MORE``) are reassembled per source before
ingesting, so the wrapped collector sees exactly the logical batches
the sender encoded and every batch-granular snapshot counter matches
the in-process run bit for bit.

Lifecycle mirrors the collector's own ``drain()/close()`` contract:
:meth:`drain` barriers until every admitted frame is folded (then
drains the collector), :meth:`close` stops the listeners, drains what
was admitted, and surfaces any ingest error that happened on the
queue-consumer side -- never silently.
"""

from __future__ import annotations

import dataclasses
import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.collector.snapshot import ServiceStats, Snapshot
from repro.exceptions import ReproError, WorkerFailedError
from repro.obs.metrics import NULL_REGISTRY, SIZE_BUCKETS, merge_metrics
from repro.obs.prom import MetricsHTTPServer
from repro.service import wire
from repro.service.query import QueryServer

#: Queue sentinel telling the ingest thread to exit.
_STOP = object()


class ServiceError(ReproError):
    """Raised on service-lifecycle failures (timeouts, post-close use)."""


class _Peer:
    """Per-sender reliable-stream state: next expected seq + holes."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: Dict[int, wire.DataFrame] = {}


class CollectorServer:
    """Serve a collector over loopback/LAN sockets.

    Parameters
    ----------
    collector:
        Any object with the collector ingest surface
        (``ingest_batch``, ``drain``, ``close``, ``snapshot``, ``flow``,
        ``result``) -- serial or parallel.
    host / udp_port / tcp_port / query_port:
        Bind addresses.  Port 0 binds an ephemeral port (read the
        resolved one back from :attr:`udp_port` etc. after
        :meth:`start`); ``None`` disables that listener entirely.
    queue_frames:
        Admission queue bound, in frames.  Small on purpose: the queue
        is a shock absorber, not a second buffer tier -- sustained
        overload must surface as drops/backpressure, not latency.
    reorder_limit:
        How far (in frames) a reliable sender may run ahead of a hole
        before further frames are refused (``dropped_window``).
    obs:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  Every
        :class:`~repro.collector.snapshot.ServiceStats` counter is
        mirrored as ``pint_service_<name>_total`` (same numbers, one
        source of truth: ``_bump``), the admission queue's depth is a
        function-backed ``pint_service_ingest_queue_depth`` gauge, and
        fold times land in ``pint_service_fold_seconds``.  Share one
        registry with the wrapped collector and the ``metrics`` query
        verb / scrape endpoint serves the whole pipeline.
    metrics_port:
        ``None`` (default) serves no HTTP.  An integer binds a
        Prometheus scrape endpoint (``GET /metrics``) on ``host``; 0
        picks an ephemeral port (read it back after :meth:`start`).
    faults:
        Optional :class:`repro.faults.FaultPlan`; the server consults
        its *frame* faults on every received UDP datagram (corrupt/
        truncate/drop before decode -- chaos at the wire boundary,
        where the version/CRC checks must catch it) and its
        ``stall_queue`` faults before folding admitted frames (a slow
        ingest thread, exercising queue backpressure).
    """

    def __init__(
        self,
        collector,
        host: str = "127.0.0.1",
        udp_port: Optional[int] = 0,
        tcp_port: Optional[int] = 0,
        query_port: Optional[int] = None,
        queue_frames: int = 256,
        reorder_limit: int = 4096,
        obs=None,
        metrics_port: Optional[int] = None,
        faults=None,
    ) -> None:
        if udp_port is None and tcp_port is None:
            raise ValueError("enable at least one of udp_port/tcp_port")
        if queue_frames < 1:
            raise ValueError("queue_frames must be >= 1")
        if reorder_limit < 1:
            raise ValueError("reorder_limit must be >= 1")
        self.collector = collector
        self.host = host
        self.udp_port = udp_port
        self.tcp_port = tcp_port
        self.query_port = query_port
        self.queue_frames = queue_frames
        self.reorder_limit = reorder_limit
        self.faults = faults

        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_frames)
        self._peers: Dict[Tuple, _Peer] = {}
        #: Reassembly state: source key -> frames of the open batch.
        self._pending: Dict[Tuple, List[wire.DataFrame]] = {}
        #: Guards the wrapped collector (ingest thread vs query port).
        self._lock = threading.RLock()
        #: Guards the counters below.
        self._stats_lock = threading.Lock()
        self._counters = {f.name: 0 for f in
                          dataclasses.fields(ServiceStats)}
        self._ingest_errors: List[str] = []
        self._suppressed_errors = 0

        self._stopping = threading.Event()
        self._started = False
        self._closed = False
        self._udp_sock: Optional[socket.socket] = None
        self._tcp_sock: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conn_threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._query_server: Optional[QueryServer] = None
        self.metrics_port = metrics_port
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._init_obs()

    def _init_obs(self) -> None:
        obs = self.obs
        #: One registry counter per ServiceStats field, bumped in
        #: lock-step with the dataclass counter -- the registry is a
        #: mirror, never a second source of truth.
        self._m = {
            name: obs.counter(
                f"pint_service_{name}_total",
                f"Front-door counter: ServiceStats.{name}.",
            )
            for name in self._counters
        }
        obs.gauge(
            "pint_service_ingest_queue_depth",
            "Frames sitting in the admission queue right now.",
        ).set_function(self._queue.qsize)
        self._m_fold_records = obs.histogram(
            "pint_service_fold_records",
            "Records per reassembled logical batch folded to the sink.",
            buckets=SIZE_BUCKETS,
        )
        self._sp_fold = obs.span(
            "pint_service_fold_seconds",
            "Time folding one reassembled batch into the collector.",
        )

    # -- counters ----------------------------------------------------------

    def _bump(self, name: str, by: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += by
        self._m[name].inc(by)

    def service_stats(self) -> ServiceStats:
        """Point-in-time copy of the front-door counters."""
        with self._stats_lock:
            return ServiceStats(**self._counters)

    def snapshot(self) -> Snapshot:
        """The wrapped collector's snapshot with service counters attached."""
        with self._lock:
            snap = self.collector.snapshot()
        snap = dataclasses.replace(snap, service=self.service_stats())
        if self.obs.enabled and getattr(
            self.collector, "obs", None
        ) is not self.obs:
            # A private server registry (the shared-registry case
            # already rode in on the collector's own snapshot).
            snap = snap.with_metrics(self.obs.as_dict())
        return snap

    def metrics(self) -> Optional[dict]:
        """Merged metrics dump: this server's registry + the sink's.

        ``None`` when nothing is instrumented -- the query port's
        ``metrics`` verb turns that into a structured error rather
        than an empty registry, so a scraper can tell "no metrics
        here" from "metrics enabled, nothing recorded yet".
        """
        parts = []
        if self.obs.enabled:
            parts.append(self.obs.as_dict())
        sink_obs = getattr(self.collector, "obs", None)
        if sink_obs is not None and sink_obs.enabled \
                and sink_obs is not self.obs:
            parts.append(sink_obs.as_dict())
        return merge_metrics(parts)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CollectorServer":
        """Bind sockets and spawn the listener/ingest threads (idempotent)."""
        if self._closed:
            raise ServiceError("server is closed")
        if self._started:
            return self
        if self.udp_port is not None:
            self._udp_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._udp_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21
            )
            self._udp_sock.bind((self.host, self.udp_port))
            # Closing a socket does not reliably wake a thread already
            # blocked in recvfrom/accept; a short timeout turns the
            # listener loops into stop-aware polls so close() joins
            # promptly instead of riding out its full timeout.
            self._udp_sock.settimeout(0.2)
            self.udp_port = self._udp_sock.getsockname()[1]
            self._threads.append(threading.Thread(
                target=self._udp_loop, name="service-udp", daemon=True,
            ))
        if self.tcp_port is not None:
            self._tcp_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._tcp_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._tcp_sock.bind((self.host, self.tcp_port))
            self._tcp_sock.settimeout(0.2)
            self._tcp_sock.listen(16)
            self.tcp_port = self._tcp_sock.getsockname()[1]
            self._threads.append(threading.Thread(
                target=self._accept_loop, name="service-tcp", daemon=True,
            ))
        self._threads.append(threading.Thread(
            target=self._ingest_loop, name="service-ingest", daemon=True,
        ))
        if self.query_port is not None:
            self._query_server = QueryServer(
                self.collector, self._lock,
                host=self.host, port=self.query_port,
                stats_fn=self.service_stats,
                snapshot_fn=self.snapshot,
                metrics_fn=self.metrics,
            ).start()
            self.query_port = self._query_server.port
        if self.metrics_port is not None:
            self._metrics_server = MetricsHTTPServer(
                lambda: self.metrics() or {"families": {}},
                host=self.host, port=self.metrics_port,
            ).start()
            self.metrics_port = self._metrics_server.port
        for t in self._threads:
            t.start()
        self._started = True
        return self

    def drain(self, timeout: float = 30.0) -> None:
        """Barrier: every frame admitted so far is folded into the collector.

        Covers the admission queue (a popped frame mid-fold included),
        then delegates to the collector's own ``drain()``; a deferred
        ingest-side failure surfaces here (same contract as the
        parallel collector's drain).  Not waited for: frames still in
        flight on the network, frames parked unacked in a reorder
        buffer, and fragment runs whose terminating frame has not
        arrived (half a logical batch cannot be folded) -- callers who
        need "everything I sent arrived" wait on
        :meth:`wait_for_records` or the reliable sender's ACKs.
        """
        self._check_open()
        deadline = _Deadline(timeout)
        # unfinished_tasks (not empty()): a popped frame still being
        # folded counts as unfinished until the ingest thread calls
        # task_done, so the barrier covers the in-flight batch too.
        while self._queue.unfinished_tasks:
            if deadline.expired:
                raise ServiceError(
                    f"drain timed out after {timeout}s with "
                    f"{self._queue.unfinished_tasks} frame(s) unapplied"
                )
            deadline.sleep()
        with self._lock:
            self.collector.drain()
        self._raise_ingest_errors()

    def wait_for_records(self, n: int, timeout: float = 30.0) -> None:
        """Block until ``n`` records have been ingested (or time out).

        The cross-network drain: a sender that shipped ``n`` records
        (reliable, or fire-and-forget over a loss-free loopback) waits
        here for the last datagram to clear socket, queue and ingest
        thread.  Raises :class:`ServiceError` on timeout, carrying the
        shortfall -- which under fire-and-forget loss is the honest
        answer.
        """
        self._check_open()
        deadline = _Deadline(timeout)
        while True:
            with self._stats_lock:
                got = self._counters["records_ingested"]
            if got >= n:
                break
            if deadline.expired:
                raise ServiceError(
                    f"waited {timeout}s for {n} records; only {got} "
                    "arrived (lost datagrams, or a stalled sender)"
                )
            deadline.sleep()
        self._raise_ingest_errors()

    def close(self, close_collector: bool = False, timeout: float = 30.0) -> None:
        """Graceful drain-then-close (idempotent).

        Stops accepting new frames (sockets closed), folds everything
        already admitted, joins the threads, and re-raises any
        deferred ingest failure -- nothing admitted is ever silently
        discarded.  The wrapped collector is left open unless
        ``close_collector`` is set (the caller may still be scoring
        its flows).
        """
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        for sock in (self._udp_sock, self._tcp_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for t in self._conn_threads:
            t.join(timeout=5.0)
        # Listener threads exit on their closed sockets; the ingest
        # thread drains the queue to the sentinel then exits.
        if self._started:
            try:
                self._queue.put(_STOP, timeout=timeout)
            except queue.Full:  # pragma: no cover - ingest thread wedged
                pass
            for t in self._threads:
                t.join(timeout=timeout)
        if self._query_server is not None:
            self._query_server.close()
        if self._metrics_server is not None:
            self._metrics_server.close()
        with self._lock:
            self.collector.drain()
            if close_collector:
                self.collector.close()
        self._raise_ingest_errors()

    # -- checkpoint/restore ------------------------------------------------

    def save_checkpoint(self, path: str) -> None:
        """Drain, then write the wrapped collector's state to ``path``.

        The service-side half of crash recovery (``repro.service
        serve --checkpoint``): on a live server the admission queue is
        drained first, so the blob covers every frame the server ever
        ACKed or admitted; the write then happens under the ingest
        lock and goes through the atomic tmp+rename writer, so a
        crash mid-save leaves the previous file intact.
        Requires a collector with ``state_dict`` (the serial
        :class:`~repro.collector.Collector`); a supervised
        :class:`~repro.collector.ParallelCollector` checkpoints its
        workers internally instead.
        """
        from repro.collector.recovery import (
            capture_checkpoint, write_checkpoint,
        )
        if not hasattr(self.collector, "state_dict"):
            raise ServiceError(
                f"{type(self.collector).__name__} has no state_dict(): "
                "server-side checkpoints need a serial Collector (a "
                "supervised ParallelCollector checkpoints internally)"
            )
        if self._started and not self._closed:
            self.drain()
        with self._lock:
            self.collector.drain()
            data = capture_checkpoint(self.collector)
        write_checkpoint(path, data)

    def restore_checkpoint(self, path: str) -> None:
        """Install a checkpoint file into the wrapped collector.

        Call before :meth:`start` (or at least before senders connect):
        frames folded between restore and the first post-restore
        checkpoint are covered by sender-side retransmission, not by
        this file.  Typed checkpoint errors (bad CRC, version skew)
        propagate -- serving queries off a half-trusted blob is worse
        than refusing to start.
        """
        from repro.collector.recovery import read_checkpoint
        if not hasattr(self.collector, "load_state"):
            raise ServiceError(
                f"{type(self.collector).__name__} has no load_state(): "
                "server-side restore needs a serial Collector"
            )
        state = read_checkpoint(path)
        with self._lock:
            self.collector.load_state(state["collector"])

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("server is closed")
        if not self._started:
            raise ServiceError("server is not started (call start())")

    def _raise_ingest_errors(self) -> None:
        with self._stats_lock:
            if not self._ingest_errors:
                return
            text = "\n".join(self._ingest_errors)
            if self._suppressed_errors:
                text += (f"\n... and {self._suppressed_errors} further "
                         "ingest failure(s) suppressed")
            self._ingest_errors = []
            self._suppressed_errors = 0
        raise WorkerFailedError(f"service ingest failed:\n{text}")

    def __enter__(self) -> "CollectorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission (shared by both listeners) ------------------------------

    def _on_datagram(self, data: bytes, addr) -> None:
        """Decode and admit one UDP datagram (may carry several frames)."""
        if self.faults is not None:
            mutated = self.faults.mutate_frame(data)
            if mutated is None:
                return  # injected drop: the datagram never existed
            data = mutated
        try:
            frames = wire.decode_frames(data)
        except wire.BadVersionError:
            self._bump("dropped_bad_version")
            return
        except wire.WireError:
            self._bump("dropped_bad_frame")
            return
        for frame in frames:
            if isinstance(frame, wire.DataFrame):
                self._admit(frame, ("udp", addr), addr)

    def _admit(self, frame: wire.DataFrame, source: Tuple, addr) -> None:
        """Run one decoded data frame through the admission policy."""
        self._bump("frames_received")
        if not frame.reliable or addr is None:
            # Fire-and-forget (or TCP, which is ordered and reliable
            # by transport): straight to the queue, drop when full.
            if not self._enqueue(frame, source, block=addr is None):
                self._bump("dropped_queue_full")
            return
        peer = self._peers.setdefault(source, _Peer())
        if frame.seq < peer.expected or frame.seq in peer.buffer:
            # Already delivered (or parked): the ACK was lost or the
            # retransmit raced it.  Re-promise, do not re-ingest.
            self._bump("duplicate_frames")
            if frame.seq < peer.expected:
                self._send_ack(addr, frame.seq)
            else:
                self._drain_peer(peer, source, addr)
            return
        if frame.seq - peer.expected > self.reorder_limit:
            self._bump("dropped_window")
            return
        peer.buffer[frame.seq] = frame
        self._drain_peer(peer, source, addr)

    def _drain_peer(self, peer: _Peer, source: Tuple, addr) -> None:
        """Deliver the peer's in-order prefix; ACK what was delivered."""
        while peer.expected in peer.buffer:
            frame = peer.buffer[peer.expected]
            if not self._enqueue(frame, source, block=False):
                # Queue full: park (still buffered, still unacked) --
                # the retransmit will re-offer it.  Counted as a
                # backpressure event, not a loss.
                self._bump("dropped_queue_full")
                return
            del peer.buffer[peer.expected]
            self._send_ack(addr, peer.expected)
            peer.expected += 1

    def _enqueue(self, frame: wire.DataFrame, source: Tuple,
                 block: bool) -> bool:
        """Hand one frame to the ingest queue.

        TCP connections block (with a stop-aware timeout loop): not
        reading the socket *is* the backpressure signal TCP was built
        to carry.  UDP paths never block -- a full queue answers
        immediately so the listener keeps the socket drained.
        """
        item = (source, frame)
        if not block:
            try:
                self._queue.put_nowait(item)
                return True
            except queue.Full:
                return False
        while not self._stopping.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _send_ack(self, addr, seq: int) -> None:
        sock = self._udp_sock
        if sock is None:  # pragma: no cover - reliable implies UDP here
            return
        try:
            sock.sendto(wire.encode_ack(seq), addr)
            self._bump("acks_sent")
        except OSError:  # pragma: no cover - racing close()
            pass

    # -- listener threads --------------------------------------------------

    def _udp_loop(self) -> None:
        sock = self._udp_sock
        while not self._stopping.is_set():
            try:
                data, addr = sock.recvfrom(1 << 16)
            except socket.timeout:
                continue  # poll tick: re-check _stopping
            except OSError:
                break  # socket closed by close()
            self._on_datagram(data, addr)

    def _accept_loop(self) -> None:
        sock = self._tcp_sock
        while not self._stopping.is_set():
            try:
                conn, addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(0.2)
            self._conns.append(conn)
            t = threading.Thread(
                target=self._conn_loop, args=(conn, addr),
                name="service-tcp-conn", daemon=True,
            )
            self._conn_threads.append(t)
            t.start()

    def _conn_loop(self, conn: socket.socket, addr) -> None:
        """One TCP connection: stream-decode frames until EOF or poison."""
        source = ("tcp", addr)
        decoder = wire.StreamDecoder()
        try:
            while not self._stopping.is_set():
                try:
                    data = conn.recv(1 << 16)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except wire.BadVersionError:
                    self._bump("dropped_bad_version")
                    break  # framing is lost; drop the connection
                except wire.WireError:
                    self._bump("dropped_bad_frame")
                    break
                for frame in frames:
                    if isinstance(frame, wire.DataFrame):
                        self._admit(frame, source, None)
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- ingest thread -----------------------------------------------------

    def _ingest_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                break
            source, frame = item
            if self.faults is not None:
                # Injected ingest-thread stall: the queue keeps
                # admitting (or backpressuring) while the fold lags.
                delay = self.faults.stall_seconds()
                if delay > 0.0:
                    time.sleep(delay)
            run = self._pending.setdefault(source, [])
            run.append(frame)
            if not frame.more:  # the batch's terminating fragment
                del self._pending[source]
                self._ingest_run(run)
            self._queue.task_done()

    def _ingest_run(self, run: List[wire.DataFrame]) -> None:
        """Fold one reassembled logical batch into the collector."""
        last = run[-1]
        if len(run) == 1:
            fids, pids = last.flow_ids, last.pids
            hops, digs = last.hop_counts, last.digests
        else:
            fids = np.concatenate([f.flow_ids for f in run])
            pids = np.concatenate([f.pids for f in run])
            hops = np.concatenate([f.hop_counts for f in run])
            digs = np.concatenate([f.digests for f in run])
        try:
            with self._sp_fold, self._lock:
                n = self.collector.ingest_batch(
                    fids, pids, hops, digs, now=last.now
                )
        except Exception as exc:
            with self._stats_lock:
                if len(self._ingest_errors) < 8:
                    self._ingest_errors.append(
                        f"{type(exc).__name__}: {exc}"
                    )
                else:
                    self._suppressed_errors += 1
            return
        with self._stats_lock:
            self._counters["records_ingested"] += int(n)
            self._counters["batches_ingested"] += 1
        self._m["records_ingested"].inc(int(n))
        self._m["batches_ingested"].inc()
        self._m_fold_records.observe(int(n))


class _Deadline:
    """Tiny poll helper: expiry check + a short fixed sleep."""

    __slots__ = ("_deadline",)

    def __init__(self, timeout: float) -> None:
        self._deadline = time.monotonic() + timeout

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._deadline

    def sleep(self) -> None:
        time.sleep(0.002)

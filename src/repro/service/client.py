"""Digest-batch senders: fire-and-forget UDP, reliable UDP, and TCP.

Three ways to get a columnar batch from a dataplane to a
:class:`~repro.service.server.CollectorServer`, all sharing the same
``send_batch(flow_ids, pids, hop_counts, digests, now=...)`` signature
as ``Collector.ingest_batch`` -- the replay driver swaps one for the
other without touching its loop:

* :class:`UDPSender` -- fire and forget.  Cheapest, lossy under
  pressure; what a switch ASIC streaming digests would do.
* :class:`ReliableUDPSender` -- the SNIPPETS 1-2 idiom: seq-numbered
  frames, an inflight map, per-ACK RTT samples folded into EWMA
  ``srtt``/``rttvar`` (RFC 6298 shape: ``RTO = srtt + 4*rttvar``,
  clamped), retransmit on RTO expiry, a bounded send window for flow
  control, and Karn's rule (retransmitted frames contribute no RTT
  sample -- the ACK is ambiguous).  Delivery is exactly-once end to
  end: the server dedups on seq and ACKs only frames it has admitted.
* :class:`TCPSender` -- hand reliability to the kernel; frames ride a
  stream, so a logical batch need not fragment at the datagram cap.

``drop_fn`` on the reliable sender is a deterministic loss hook for
tests and demos: when it returns True for ``(seq, attempt)``, the
frame is *not* put on the wire (simulating network loss ahead of the
sink) but stays inflight and retries -- this is how the lossy-loopback
example drives a seeded :class:`~repro.replay.impair.IIDLoss`-style
channel without root or tc.
"""

from __future__ import annotations

import random
import select
import socket
import time
from typing import Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.obs.metrics import NULL_REGISTRY
from repro.service import wire


class DeliveryError(ReproError):
    """A reliable send could not be completed (retries/flush exhausted)."""


class _SenderBase:
    """Shared frame numbering + accounting for all senders."""

    def __init__(self, host: str, port: int, max_records: int) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.addr = (host, port)
        self.max_records = max_records
        self.next_seq = 0
        self.frames_sent = 0      # transmissions, retransmits included
        self.records_sent = 0
        self.batches_sent = 0

    def _frames(self, flow_ids, pids, hop_counts, digests, now,
                reliable: bool) -> List[bytes]:
        frames = wire.encode_frames(
            flow_ids, pids, hop_counts, digests, now,
            start_seq=self.next_seq, max_records=self.max_records,
            reliable=reliable,
        )
        self.next_seq += len(frames)
        return frames

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything sent is out the door (no-op unless
        the transport buffers)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class UDPSender(_SenderBase):
    """Fire-and-forget datagram sender: no ACKs, no retransmit."""

    def __init__(self, host: str, port: int,
                 max_records: int = 1024) -> None:
        if max_records > wire.MAX_UDP_RECORDS:
            raise ValueError(
                f"max_records {max_records} exceeds the UDP frame cap "
                f"({wire.MAX_UDP_RECORDS})"
            )
        super().__init__(host, port, max_records)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 21)

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        """Ship one columnar batch; returns the record count."""
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=False)
        records = 0
        for payload in frames:
            self.sock.sendto(payload, self.addr)
        for payload in frames:
            records += (len(payload) - 21) // 32
        self.frames_sent += len(frames)
        self.records_sent += records
        if frames:
            self.batches_sent += 1
        return records

    def close(self) -> None:
        self.sock.close()


class _InFlight:
    """One unacked frame: payload + timing for RTO and RTT sampling.

    ``rto`` is this frame's *own* current timeout -- the base EWMA RTO
    scaled exponentially by its retry count and jittered, so a burst
    of frames lost together fans its retransmissions out instead of
    re-colliding in lockstep every cycle.
    """

    __slots__ = ("payload", "first_sent", "last_sent", "retries", "rto")

    def __init__(self, payload: bytes, now: float, rto: float) -> None:
        self.payload = payload
        self.first_sent = now
        self.last_sent = now
        self.retries = 0
        self.rto = rto


class ReliableUDPSender(_SenderBase):
    """Seq/ACK/RTO reliable delivery over UDP (SNIPPETS 1-2 idiom).

    Parameters
    ----------
    window:
        Max unacked frames in flight; :meth:`send_batch` blocks (on
        ACK progress) when the window is full -- sender-side flow
        control matching the server's bounded admission queue.
    max_retries:
        Retransmissions per frame before :class:`DeliveryError` (the
        sink is gone; buffering forever is not reliability).
    alpha / beta / min_rto / max_rto / initial_rto:
        EWMA RTT estimator constants (RFC 6298 defaults, clamped to
        loopback-friendly bounds).
    backoff / jitter / rto_seed:
        Retry pacing: the ``n``-th retransmission of a frame waits
        ``rto * backoff**n`` (capped at ``max_rto``), stretched by up
        to ``jitter`` fraction of itself from a dedicated seeded RNG.
        Exponential spacing stops a dead sink from being hammered at a
        constant rate; the jitter de-synchronises frames that timed
        out together.  ``rto_seed`` makes the jitter sequence
        reproducible in tests.
    send_timeout:
        Cap on the *total* time :meth:`send_batch` may block waiting
        for window space; past it a :class:`DeliveryError` is raised
        even if no single frame has exhausted ``max_retries`` yet (a
        stalled-but-slowly-acking sink must not wedge the caller
        forever).
    drop_fn:
        Optional ``(seq, attempt) -> bool`` simulated-loss hook; True
        suppresses the actual ``sendto`` for that transmission.
    obs / obs_labels:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (plus
        static labels, e.g. ``{"sink": "path"}``): live
        ``pint_sender_srtt_seconds`` / ``pint_sender_rttvar_seconds``
        gauges updated per RTT sample, a
        ``pint_sender_retransmits_total`` counter, and
        function-backed inflight/acked views -- the sender-side half
        of the wire picture the server's drop counters can't see.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_records: int = 1024,
        window: int = 64,
        max_retries: int = 16,
        alpha: float = 0.125,
        beta: float = 0.25,
        min_rto: float = 0.02,
        max_rto: float = 2.0,
        initial_rto: float = 0.2,
        backoff: float = 2.0,
        jitter: float = 0.1,
        rto_seed: Optional[int] = None,
        send_timeout: float = 60.0,
        drop_fn: Optional[Callable[[int, int], bool]] = None,
        obs=None,
        obs_labels: Optional[dict] = None,
    ) -> None:
        if max_records > wire.MAX_UDP_RECORDS:
            raise ValueError(
                f"max_records {max_records} exceeds the UDP frame cap "
                f"({wire.MAX_UDP_RECORDS})"
            )
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__(host, port, max_records)
        self.window = window
        self.max_retries = max_retries
        self.alpha = alpha
        self.beta = beta
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.initial_rto = initial_rto
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.backoff = backoff
        self.jitter = jitter
        self.send_timeout = send_timeout
        self._rng = random.Random(rto_seed)
        self.drop_fn = drop_fn
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.acked_frames = 0
        self.retransmits = 0
        self.inflight: Dict[int, _InFlight] = {}
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        self.obs = obs if obs is not None else NULL_REGISTRY
        labels = dict(obs_labels) if obs_labels else {}
        self._g_srtt = self.obs.gauge(
            "pint_sender_srtt_seconds",
            "Smoothed RTT estimate (RFC 6298 EWMA).", labels=labels,
        )
        self._g_rttvar = self.obs.gauge(
            "pint_sender_rttvar_seconds",
            "RTT variance estimate (RFC 6298 EWMA).", labels=labels,
        )
        self._m_retx = self.obs.counter(
            "pint_sender_retransmits_total",
            "Frames retransmitted on RTO expiry.", labels=labels,
        )
        self.obs.gauge(
            "pint_sender_inflight_frames",
            "Unacked frames currently in the send window.", labels=labels,
        ).set_function(lambda: len(self.inflight))
        self.obs.counter(
            "pint_sender_acked_frames_total",
            "Frames acknowledged by the server.", labels=labels,
        ).set_function(lambda: self.acked_frames)

    # -- RTO ---------------------------------------------------------------

    @property
    def rto(self) -> float:
        """Current retransmission timeout (EWMA RTT + 4 deviations)."""
        if self.srtt is None:
            return self.initial_rto
        return min(self.max_rto,
                   max(self.min_rto, self.srtt + 4.0 * self.rttvar))

    def _scaled_rto(self, retries: int) -> float:
        """Per-transmission timeout: base RTO backed off and jittered.

        The cap applies to the deterministic part only; the jitter
        then stretches it by up to ``jitter`` fraction, so even frames
        pinned at ``max_rto`` stay de-synchronised.
        """
        base = min(self.max_rto, self.rto * self.backoff ** retries)
        return base * (1.0 + self.jitter * self._rng.random())

    def _sample_rtt(self, r: float) -> None:
        if self.srtt is None:
            self.srtt = r
            self.rttvar = r / 2.0
        else:
            self.rttvar = ((1.0 - self.beta) * self.rttvar
                           + self.beta * abs(self.srtt - r))
            self.srtt = (1.0 - self.alpha) * self.srtt + self.alpha * r
        self._g_srtt.set(self.srtt)
        self._g_rttvar.set(self.rttvar)

    # -- send path ---------------------------------------------------------

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        """Ship one batch reliably; blocks while the window is full.

        The window wait is bounded by ``send_timeout`` *in total* for
        the batch: per-frame ``max_retries`` catches a dead sink, but
        a sink acking at a trickle can hold the window full without
        any frame ever exhausting its retries -- the deadline catches
        that.
        """
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=True)
        records = 0
        base_seq = self.next_seq - len(frames)
        deadline = time.monotonic() + self.send_timeout
        for i, payload in enumerate(frames):
            while len(self.inflight) >= self.window:
                if time.monotonic() >= deadline:
                    raise DeliveryError(
                        f"send window still full after "
                        f"{self.send_timeout}s "
                        f"({len(self.inflight)} frame(s) unacked); "
                        "sink stalled"
                    )
                self._pump(self.rto)
            state = _InFlight(payload, time.monotonic(),
                              self._scaled_rto(0))
            self.inflight[base_seq + i] = state
            self._transmit(base_seq + i, state)
            records += (len(payload) - 21) // 32
        self.records_sent += records
        if frames:
            self.batches_sent += 1
        return records

    def _transmit(self, seq: int, state: _InFlight) -> None:
        state.last_sent = time.monotonic()
        self.frames_sent += 1
        if self.drop_fn is not None and self.drop_fn(seq, state.retries):
            return  # simulated network loss: never reaches the wire
        try:
            self.sock.sendto(state.payload, self.addr)
        except (BlockingIOError, InterruptedError):  # pragma: no cover
            pass  # RTO covers it: an unsendable frame just retries

    def _pump(self, max_wait: float) -> None:
        """Receive ACKs and retransmit expired frames (one cycle).

        Waits at most ``max_wait`` (or until the next RTO deadline,
        whichever is sooner) for socket readability, drains every
        pending ACK, then sweeps the inflight map for expiries.
        """
        now = time.monotonic()
        wait = max(0.0, min(
            max_wait,
            min((st.last_sent + st.rto - now
                 for st in self.inflight.values()), default=max_wait),
        ))
        readable, _, _ = select.select([self.sock], [], [], wait)
        if readable:
            while True:
                try:
                    data, _ = self.sock.recvfrom(1 << 12)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    break
                try:
                    frame = wire.decode_frame(data)
                except wire.WireError:
                    continue  # not ours; ignore
                if not isinstance(frame, wire.AckFrame):
                    continue
                state = self.inflight.pop(frame.seq, None)
                if state is None:
                    continue  # duplicate ACK
                self.acked_frames += 1
                if state.retries == 0:
                    # Karn's rule: only a first-transmission ACK is an
                    # unambiguous RTT sample.
                    self._sample_rtt(time.monotonic() - state.first_sent)
        now = time.monotonic()
        for seq, state in list(self.inflight.items()):
            if now - state.last_sent < state.rto:
                continue
            if state.retries >= self.max_retries:
                raise DeliveryError(
                    f"frame seq={seq} unacked after {self.max_retries} "
                    f"retransmissions (rto={state.rto:.3f}s); sink "
                    "unreachable"
                )
            state.retries += 1
            self.retransmits += 1
            self._m_retx.inc()
            state.rto = self._scaled_rto(state.retries)
            self._transmit(seq, state)

    def flush(self, timeout: float = 30.0) -> None:
        """Block until every sent frame is ACKed (or raise)."""
        deadline = time.monotonic() + timeout
        while self.inflight:
            if time.monotonic() >= deadline:
                raise DeliveryError(
                    f"flush timed out after {timeout}s with "
                    f"{len(self.inflight)} frame(s) unacked"
                )
            self._pump(0.05)

    def close(self) -> None:
        """Flush, then release the socket."""
        try:
            if self.inflight:
                self.flush()
        finally:
            self.sock.close()


class TCPSender(_SenderBase):
    """Stream sender: the kernel's reliability, our framing.

    ``max_records=None`` (the default) ships each logical batch as a
    single frame -- a stream has no datagram cap, so the server-side
    reassembly path is exercised only when the batch tops
    ``MAX_FRAME_RECORDS``.

    Reconnect: a send that hits a dead connection (server restarted,
    RST, broken pipe) redials with jittered exponential backoff and
    resends the *whole* batch on the fresh connection.  The delivery
    contract at this boundary is **at-least-once**: bytes the kernel
    buffered before the failure may or may not have reached the old
    server, and TCP frames carry no seq for the server to dedup on --
    a batch straddling a reconnect can be folded twice.  That is the
    deliberate trade (DESIGN.md section 9): the fire-and-forget TCP
    path keeps its zero-overhead framing, and callers needing
    exactly-once use the reliable UDP transport, whose seq/ACK dedup
    survives server restarts that preserve collector state.
    """

    def __init__(self, host: str, port: int,
                 max_records: Optional[int] = None,
                 timeout: float = 30.0,
                 reconnect_attempts: int = 5,
                 reconnect_base: float = 0.05,
                 reconnect_max: float = 2.0,
                 jitter: float = 0.1,
                 reconnect_seed: Optional[int] = None) -> None:
        super().__init__(host, port,
                         max_records or wire.MAX_FRAME_RECORDS)
        self.timeout = timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.jitter = jitter
        self.reconnects = 0
        self._rng = random.Random(reconnect_seed)
        self.sock = self._dial()

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(self.addr, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _reconnect(self, cause: Exception) -> None:
        """Redial with jittered exponential backoff, or give up loudly."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already gone
            pass
        for attempt in range(self.reconnect_attempts):
            delay = min(self.reconnect_max,
                        self.reconnect_base * (2.0 ** attempt))
            time.sleep(delay * (1.0 + self.jitter * self._rng.random()))
            try:
                self.sock = self._dial()
            except OSError:
                continue
            self.reconnects += 1
            return
        raise DeliveryError(
            f"could not reconnect to {self.addr[0]}:{self.addr[1]} "
            f"after {self.reconnect_attempts} attempts"
        ) from cause

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=False)
        records = 0
        if frames:
            payload = b"".join(frames)
            try:
                self.sock.sendall(payload)
            except OSError as exc:
                self._reconnect(exc)
                # At-least-once: the batch is resent whole; any prefix
                # the dead connection delivered may be folded again.
                self.sock.sendall(payload)
            for frame in frames:
                records += (len(frame) - 21) // 32
            self.frames_sent += len(frames)
            self.records_sent += records
            self.batches_sent += 1
        return records

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:  # pragma: no cover - already closed/reset
            pass
        self.sock.close()


def make_sender(transport: str, host: str, port: int, **kwargs):
    """Build a sender by transport name ("udp" / "udp-unreliable" / "tcp")."""
    if transport == "udp":
        return ReliableUDPSender(host, port, **kwargs)
    if transport == "udp-unreliable":
        return UDPSender(host, port, **kwargs)
    if transport == "tcp":
        return TCPSender(host, port, **kwargs)
    raise ValueError(
        f"unknown transport {transport!r} "
        "(expected 'udp', 'udp-unreliable' or 'tcp')"
    )

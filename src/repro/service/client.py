"""Digest-batch senders: fire-and-forget UDP, reliable UDP, and TCP.

Three ways to get a columnar batch from a dataplane to a
:class:`~repro.service.server.CollectorServer`, all sharing the same
``send_batch(flow_ids, pids, hop_counts, digests, now=...)`` signature
as ``Collector.ingest_batch`` -- the replay driver swaps one for the
other without touching its loop:

* :class:`UDPSender` -- fire and forget.  Cheapest, lossy under
  pressure; what a switch ASIC streaming digests would do.
* :class:`ReliableUDPSender` -- the SNIPPETS 1-2 idiom: seq-numbered
  frames, an inflight map, per-ACK RTT samples folded into EWMA
  ``srtt``/``rttvar`` (RFC 6298 shape: ``RTO = srtt + 4*rttvar``,
  clamped), retransmit on RTO expiry, a bounded send window for flow
  control, and Karn's rule (retransmitted frames contribute no RTT
  sample -- the ACK is ambiguous).  Delivery is exactly-once end to
  end: the server dedups on seq and ACKs only frames it has admitted.
* :class:`TCPSender` -- hand reliability to the kernel; frames ride a
  stream, so a logical batch need not fragment at the datagram cap.

``drop_fn`` on the reliable sender is a deterministic loss hook for
tests and demos: when it returns True for ``(seq, attempt)``, the
frame is *not* put on the wire (simulating network loss ahead of the
sink) but stays inflight and retries -- this is how the lossy-loopback
example drives a seeded :class:`~repro.replay.impair.IIDLoss`-style
channel without root or tc.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.obs.metrics import NULL_REGISTRY
from repro.service import wire


class DeliveryError(ReproError):
    """A reliable send could not be completed (retries/flush exhausted)."""


class _SenderBase:
    """Shared frame numbering + accounting for all senders."""

    def __init__(self, host: str, port: int, max_records: int) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.addr = (host, port)
        self.max_records = max_records
        self.next_seq = 0
        self.frames_sent = 0      # transmissions, retransmits included
        self.records_sent = 0
        self.batches_sent = 0

    def _frames(self, flow_ids, pids, hop_counts, digests, now,
                reliable: bool) -> List[bytes]:
        frames = wire.encode_frames(
            flow_ids, pids, hop_counts, digests, now,
            start_seq=self.next_seq, max_records=self.max_records,
            reliable=reliable,
        )
        self.next_seq += len(frames)
        return frames

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything sent is out the door (no-op unless
        the transport buffers)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class UDPSender(_SenderBase):
    """Fire-and-forget datagram sender: no ACKs, no retransmit."""

    def __init__(self, host: str, port: int,
                 max_records: int = 1024) -> None:
        if max_records > wire.MAX_UDP_RECORDS:
            raise ValueError(
                f"max_records {max_records} exceeds the UDP frame cap "
                f"({wire.MAX_UDP_RECORDS})"
            )
        super().__init__(host, port, max_records)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 21)

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        """Ship one columnar batch; returns the record count."""
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=False)
        records = 0
        for payload in frames:
            self.sock.sendto(payload, self.addr)
        for payload in frames:
            records += (len(payload) - 21) // 32
        self.frames_sent += len(frames)
        self.records_sent += records
        if frames:
            self.batches_sent += 1
        return records

    def close(self) -> None:
        self.sock.close()


class _InFlight:
    """One unacked frame: payload + timing for RTO and RTT sampling."""

    __slots__ = ("payload", "first_sent", "last_sent", "retries")

    def __init__(self, payload: bytes, now: float) -> None:
        self.payload = payload
        self.first_sent = now
        self.last_sent = now
        self.retries = 0


class ReliableUDPSender(_SenderBase):
    """Seq/ACK/RTO reliable delivery over UDP (SNIPPETS 1-2 idiom).

    Parameters
    ----------
    window:
        Max unacked frames in flight; :meth:`send_batch` blocks (on
        ACK progress) when the window is full -- sender-side flow
        control matching the server's bounded admission queue.
    max_retries:
        Retransmissions per frame before :class:`DeliveryError` (the
        sink is gone; buffering forever is not reliability).
    alpha / beta / min_rto / max_rto / initial_rto:
        EWMA RTT estimator constants (RFC 6298 defaults, clamped to
        loopback-friendly bounds).
    drop_fn:
        Optional ``(seq, attempt) -> bool`` simulated-loss hook; True
        suppresses the actual ``sendto`` for that transmission.
    obs / obs_labels:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (plus
        static labels, e.g. ``{"sink": "path"}``): live
        ``pint_sender_srtt_seconds`` / ``pint_sender_rttvar_seconds``
        gauges updated per RTT sample, a
        ``pint_sender_retransmits_total`` counter, and
        function-backed inflight/acked views -- the sender-side half
        of the wire picture the server's drop counters can't see.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_records: int = 1024,
        window: int = 64,
        max_retries: int = 16,
        alpha: float = 0.125,
        beta: float = 0.25,
        min_rto: float = 0.02,
        max_rto: float = 2.0,
        initial_rto: float = 0.2,
        drop_fn: Optional[Callable[[int, int], bool]] = None,
        obs=None,
        obs_labels: Optional[dict] = None,
    ) -> None:
        if max_records > wire.MAX_UDP_RECORDS:
            raise ValueError(
                f"max_records {max_records} exceeds the UDP frame cap "
                f"({wire.MAX_UDP_RECORDS})"
            )
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__(host, port, max_records)
        self.window = window
        self.max_retries = max_retries
        self.alpha = alpha
        self.beta = beta
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.initial_rto = initial_rto
        self.drop_fn = drop_fn
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.acked_frames = 0
        self.retransmits = 0
        self.inflight: Dict[int, _InFlight] = {}
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        self.obs = obs if obs is not None else NULL_REGISTRY
        labels = dict(obs_labels) if obs_labels else {}
        self._g_srtt = self.obs.gauge(
            "pint_sender_srtt_seconds",
            "Smoothed RTT estimate (RFC 6298 EWMA).", labels=labels,
        )
        self._g_rttvar = self.obs.gauge(
            "pint_sender_rttvar_seconds",
            "RTT variance estimate (RFC 6298 EWMA).", labels=labels,
        )
        self._m_retx = self.obs.counter(
            "pint_sender_retransmits_total",
            "Frames retransmitted on RTO expiry.", labels=labels,
        )
        self.obs.gauge(
            "pint_sender_inflight_frames",
            "Unacked frames currently in the send window.", labels=labels,
        ).set_function(lambda: len(self.inflight))
        self.obs.counter(
            "pint_sender_acked_frames_total",
            "Frames acknowledged by the server.", labels=labels,
        ).set_function(lambda: self.acked_frames)

    # -- RTO ---------------------------------------------------------------

    @property
    def rto(self) -> float:
        """Current retransmission timeout (EWMA RTT + 4 deviations)."""
        if self.srtt is None:
            return self.initial_rto
        return min(self.max_rto,
                   max(self.min_rto, self.srtt + 4.0 * self.rttvar))

    def _sample_rtt(self, r: float) -> None:
        if self.srtt is None:
            self.srtt = r
            self.rttvar = r / 2.0
        else:
            self.rttvar = ((1.0 - self.beta) * self.rttvar
                           + self.beta * abs(self.srtt - r))
            self.srtt = (1.0 - self.alpha) * self.srtt + self.alpha * r
        self._g_srtt.set(self.srtt)
        self._g_rttvar.set(self.rttvar)

    # -- send path ---------------------------------------------------------

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        """Ship one batch reliably; blocks while the window is full."""
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=True)
        records = 0
        base_seq = self.next_seq - len(frames)
        for i, payload in enumerate(frames):
            while len(self.inflight) >= self.window:
                self._pump(self.rto)
            state = _InFlight(payload, time.monotonic())
            self.inflight[base_seq + i] = state
            self._transmit(base_seq + i, state)
            records += (len(payload) - 21) // 32
        self.records_sent += records
        if frames:
            self.batches_sent += 1
        return records

    def _transmit(self, seq: int, state: _InFlight) -> None:
        state.last_sent = time.monotonic()
        self.frames_sent += 1
        if self.drop_fn is not None and self.drop_fn(seq, state.retries):
            return  # simulated network loss: never reaches the wire
        try:
            self.sock.sendto(state.payload, self.addr)
        except (BlockingIOError, InterruptedError):  # pragma: no cover
            pass  # RTO covers it: an unsendable frame just retries

    def _pump(self, max_wait: float) -> None:
        """Receive ACKs and retransmit expired frames (one cycle).

        Waits at most ``max_wait`` (or until the next RTO deadline,
        whichever is sooner) for socket readability, drains every
        pending ACK, then sweeps the inflight map for expiries.
        """
        now = time.monotonic()
        wait = max(0.0, min(
            max_wait,
            min((st.last_sent + self.rto - now
                 for st in self.inflight.values()), default=max_wait),
        ))
        readable, _, _ = select.select([self.sock], [], [], wait)
        if readable:
            while True:
                try:
                    data, _ = self.sock.recvfrom(1 << 12)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    break
                try:
                    frame = wire.decode_frame(data)
                except wire.WireError:
                    continue  # not ours; ignore
                if not isinstance(frame, wire.AckFrame):
                    continue
                state = self.inflight.pop(frame.seq, None)
                if state is None:
                    continue  # duplicate ACK
                self.acked_frames += 1
                if state.retries == 0:
                    # Karn's rule: only a first-transmission ACK is an
                    # unambiguous RTT sample.
                    self._sample_rtt(time.monotonic() - state.first_sent)
        now = time.monotonic()
        rto = self.rto
        for seq, state in list(self.inflight.items()):
            if now - state.last_sent < rto:
                continue
            if state.retries >= self.max_retries:
                raise DeliveryError(
                    f"frame seq={seq} unacked after {self.max_retries} "
                    f"retransmissions (rto={rto:.3f}s); sink unreachable"
                )
            state.retries += 1
            self.retransmits += 1
            self._m_retx.inc()
            self._transmit(seq, state)

    def flush(self, timeout: float = 30.0) -> None:
        """Block until every sent frame is ACKed (or raise)."""
        deadline = time.monotonic() + timeout
        while self.inflight:
            if time.monotonic() >= deadline:
                raise DeliveryError(
                    f"flush timed out after {timeout}s with "
                    f"{len(self.inflight)} frame(s) unacked"
                )
            self._pump(0.05)

    def close(self) -> None:
        """Flush, then release the socket."""
        try:
            if self.inflight:
                self.flush()
        finally:
            self.sock.close()


class TCPSender(_SenderBase):
    """Stream sender: the kernel's reliability, our framing.

    ``max_records=None`` (the default) ships each logical batch as a
    single frame -- a stream has no datagram cap, so the server-side
    reassembly path is exercised only when the batch tops
    ``MAX_FRAME_RECORDS``.
    """

    def __init__(self, host: str, port: int,
                 max_records: Optional[int] = None,
                 timeout: float = 30.0) -> None:
        super().__init__(host, port,
                         max_records or wire.MAX_FRAME_RECORDS)
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send_batch(self, flow_ids, pids, hop_counts, digests,
                   now: Optional[float] = None) -> int:
        frames = self._frames(flow_ids, pids, hop_counts, digests, now,
                              reliable=False)
        records = 0
        if frames:
            self.sock.sendall(b"".join(frames))
            for payload in frames:
                records += (len(payload) - 21) // 32
            self.frames_sent += len(frames)
            self.records_sent += records
            self.batches_sent += 1
        return records

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:  # pragma: no cover - already closed/reset
            pass
        self.sock.close()


def make_sender(transport: str, host: str, port: int, **kwargs):
    """Build a sender by transport name ("udp" / "udp-unreliable" / "tcp")."""
    if transport == "udp":
        return ReliableUDPSender(host, port, **kwargs)
    if transport == "udp-unreliable":
        return UDPSender(host, port, **kwargs)
    if transport == "tcp":
        return TCPSender(host, port, **kwargs)
    raise ValueError(
        f"unknown transport {transport!r} "
        "(expected 'udp', 'udp-unreliable' or 'tcp')"
    )

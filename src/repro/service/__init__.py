"""Live collector service: the network front door to a PINT sink.

``repro.collector`` is a library -- you call ``ingest_batch`` on an
object you hold.  This package is the same sink as a *service*: digest
batches travel a versioned binary wire format (:mod:`~repro.service.
wire`) over UDP or TCP into a :class:`CollectorServer` that admits,
reassembles and folds them through a bounded queue, while a JSON query
port (:mod:`~repro.service.query`) serves snapshots and per-flow
answers to anything that can open a socket.  Senders come in three
reliability classes (:mod:`~repro.service.client`); ``python -m
repro.service`` is the operator CLI over all of it.

See DESIGN.md section 7 for the wire layout, the admission/drop
taxonomy, and why an ACK is a durability promise.
"""

from repro.service.client import (
    DeliveryError,
    ReliableUDPSender,
    TCPSender,
    UDPSender,
    make_sender,
)
from repro.service.query import QueryClient, QueryError, QueryHandler, QueryServer
from repro.service.server import CollectorServer, ServiceError
from repro.service.wire import (
    FLAG_MORE,
    FLAG_NO_TIME,
    FLAG_RELIABLE,
    FT_ACK,
    FT_DATA,
    MAGIC,
    MAX_FRAME_RECORDS,
    MAX_UDP_RECORDS,
    VERSION,
    AckFrame,
    BadFrameError,
    BadMagicError,
    BadVersionError,
    DataFrame,
    StreamDecoder,
    TruncatedFrameError,
    WireError,
    decode_frame,
    decode_frames,
    encode_ack,
    encode_frame,
    encode_frames,
)

__all__ = [
    "AckFrame",
    "BadFrameError",
    "BadMagicError",
    "BadVersionError",
    "CollectorServer",
    "DataFrame",
    "DeliveryError",
    "FLAG_MORE",
    "FLAG_NO_TIME",
    "FLAG_RELIABLE",
    "FT_ACK",
    "FT_DATA",
    "MAGIC",
    "MAX_FRAME_RECORDS",
    "MAX_UDP_RECORDS",
    "QueryClient",
    "QueryError",
    "QueryHandler",
    "QueryServer",
    "ReliableUDPSender",
    "ServiceError",
    "StreamDecoder",
    "TCPSender",
    "TruncatedFrameError",
    "UDPSender",
    "VERSION",
    "WireError",
    "decode_frame",
    "decode_frames",
    "encode_ack",
    "encode_frame",
    "encode_frames",
    "make_sender",
]

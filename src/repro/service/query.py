"""JSON query port: snapshots and per-flow answers over a TCP socket.

The read side of the service boundary.  The protocol is deliberately
boring -- newline-delimited JSON objects, one request per line, one
response per line, many requests per connection -- because the answers
are small and operators will point ``jq``/scripts at it, not a binary
codec.

Requests (``op`` selects the verb)::

    {"op": "ping"}
    {"op": "snapshot"}                 -> Snapshot.as_dict() + service counters
    {"op": "stats"}                    -> front-door ServiceStats
    {"op": "metrics"}                  -> merged obs registry dump
    {"op": "flow",   "flow_id": 17}    -> decode state + answer for one flow
    {"op": "result", "flow_id": 17}    -> just the answer
    {"op": "flows",  "flow_ids": [..]} -> bulk "flow" (one round-trip)

Every response carries ``"ok": true`` or ``"ok": false`` with an
``"error"`` string; a malformed line gets an error response rather
than a dropped connection, and a line longer than ``MAX_LINE`` is
answered with one error and discarded as it streams past (the buffer
never grows with it).  Non-finite floats are serialised as JSON
``null`` (same policy as the bench writers), and latency answers --
dicts keyed by hop index -- arrive with string keys because JSON
object keys are strings.

``QueryHandler`` is the transport-free core (also what the CLI and
tests exercise); ``QueryServer`` wraps it in an accept loop sharing
the ingest thread's collector lock; ``QueryClient`` is the matching
blocking client.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
from typing import Callable, List, Optional

from repro.exceptions import ReproError
from repro.jsonutil import jsonable

__all__ = [
    "MAX_LINE",
    "QueryClient",
    "QueryError",
    "QueryHandler",
    "QueryServer",
    "jsonable",  # canonical home: repro.jsonutil; re-exported for compat
]

#: Longest request line the server will parse (bytes, newline
#: excluded).  No legitimate query comes close (the largest is a
#: ``flows`` list); anything longer is a bug or abuse, and buffering
#: it unboundedly would let one connection grow the server's memory
#: without ever sending a newline.
MAX_LINE = 1 << 20


class QueryError(ReproError):
    """Raised client-side when the server answers ``ok: false``."""


class QueryHandler:
    """Answer query dicts against a collector (transport-free).

    ``lock`` serialises reads against the server's ingest thread;
    pass a fresh ``threading.Lock()`` when wrapping a bare collector.
    """

    def __init__(
        self,
        collector,
        lock,
        stats_fn: Optional[Callable] = None,
        snapshot_fn: Optional[Callable] = None,
        metrics_fn: Optional[Callable] = None,
    ) -> None:
        self.collector = collector
        self.lock = lock
        self._stats_fn = stats_fn
        self._snapshot_fn = snapshot_fn
        self._metrics_fn = metrics_fn

    def handle(self, request) -> dict:
        """One request dict in, one JSON-ready response dict out.

        Never raises: a handler bug (or a hostile request shape no
        verb anticipated) becomes an ``ok: false`` envelope, because
        one bad request must cost one error line, not the connection.
        """
        try:
            return self._handle(request)
        except Exception as exc:  # the connection outlives any bug
            return {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }

    def _handle(self, request) -> dict:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "snapshot":
                if self._snapshot_fn is not None:
                    snap = self._snapshot_fn()
                else:
                    with self.lock:
                        snap = self.collector.snapshot()
                return {"ok": True, "op": op,
                        "snapshot": jsonable(snap.as_dict())}
            if op == "stats":
                if self._stats_fn is None:
                    return {"ok": False,
                            "error": "no service stats on this endpoint"}
                return {"ok": True, "op": op,
                        "stats": dataclasses.asdict(self._stats_fn())}
            if op == "metrics":
                metrics = (
                    self._metrics_fn() if self._metrics_fn is not None
                    else None
                )
                if metrics is None:
                    return {"ok": False,
                            "error": "no metrics on this endpoint "
                                     "(serve with an obs registry)"}
                return {"ok": True, "op": op,
                        "metrics": jsonable(metrics)}
            if op == "flow":
                return self._flow(request)
            if op == "flows":
                fids = request.get("flow_ids")
                if not isinstance(fids, list):
                    return {"ok": False,
                            "error": "'flows' needs a flow_ids list"}
                return {"ok": True, "op": op,
                        "flows": [self._flow({"flow_id": f})
                                  for f in fids]}
            if op == "result":
                fid = _flow_id(request)
                with self.lock:
                    result = self.collector.result(fid)
                return {"ok": True, "op": op, "flow_id": fid,
                        "result": jsonable(result)}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}

    def _flow(self, request) -> dict:
        fid = _flow_id(request)
        with self.lock:
            consumer = self.collector.flow(fid)
            if consumer is None:
                return {"ok": True, "op": "flow", "flow_id": fid,
                        "known": False}
            return {
                "ok": True,
                "op": "flow",
                "flow_id": fid,
                "known": True,
                "complete": bool(consumer.is_complete),
                "coverage": jsonable(float(consumer.coverage)),
                "result": jsonable(consumer.result()),
            }


def _flow_id(request) -> int:
    fid = request.get("flow_id")
    if not isinstance(fid, int) or isinstance(fid, bool):
        raise ValueError(f"flow_id must be an integer, got {fid!r}")
    return fid


class QueryServer:
    """Serve a :class:`QueryHandler` on a TCP port (one thread + conn threads)."""

    def __init__(
        self,
        collector,
        lock,
        host: str = "127.0.0.1",
        port: int = 0,
        stats_fn: Optional[Callable] = None,
        snapshot_fn: Optional[Callable] = None,
        metrics_fn: Optional[Callable] = None,
    ) -> None:
        self.handler = QueryHandler(
            collector, lock, stats_fn=stats_fn, snapshot_fn=snapshot_fn,
            metrics_fn=metrics_fn,
        )
        self.host = host
        self.port = port
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    def start(self) -> "QueryServer":
        if self._sock is not None:
            return self
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self.port))
        # Stop-aware accept/recv polls: a closed socket does not
        # reliably wake an already-blocked thread, a timeout does.
        self._sock.settimeout(0.2)
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(
            target=self._accept_loop, name="service-query", daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        for t in self._conn_threads:
            t.join(timeout=5.0)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(0.2)
            t = threading.Thread(
                target=self._conn_loop, args=(conn,),
                name="service-query-conn", daemon=True,
            )
            self._conn_threads.append(t)
            t.start()

    def _conn_loop(self, conn: socket.socket) -> None:
        buf = b""
        # True while streaming past an over-MAX_LINE request: its
        # error was already sent, its remaining bytes are discarded
        # (never buffered) until the terminating newline re-syncs the
        # line protocol.
        discarding = False
        try:
            while not self._stopping.is_set():
                try:
                    data = conn.recv(1 << 16)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                if discarding:
                    cut = data.find(b"\n")
                    if cut < 0:
                        continue  # still inside the oversized line
                    data = data[cut + 1:]
                    discarding = False
                buf += data
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    if len(line) > MAX_LINE:
                        response = {
                            "ok": False,
                            "error": f"request line exceeds {MAX_LINE} "
                                     "bytes",
                        }
                    else:
                        try:
                            request = json.loads(line)
                        except ValueError as exc:
                            # ValueError, not just JSONDecodeError:
                            # non-UTF8 bytes raise UnicodeDecodeError
                            # before the parser even sees JSON.
                            response = {"ok": False,
                                        "error": f"bad JSON: {exc}"}
                        else:
                            response = self.handler.handle(request)
                    payload = json.dumps(
                        response, allow_nan=False
                    ).encode() + b"\n"
                    try:
                        conn.sendall(payload)
                    except OSError:
                        return
                if len(buf) > MAX_LINE:
                    # The open line already blew the cap without a
                    # newline in sight: answer once, drop the bytes,
                    # and discard the rest of the line as it arrives.
                    try:
                        conn.sendall(json.dumps({
                            "ok": False,
                            "error": f"request line exceeds {MAX_LINE} "
                                     "bytes",
                        }).encode() + b"\n")
                    except OSError:
                        return
                    buf = b""
                    discarding = True
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


class QueryClient:
    """Blocking line-JSON client for :class:`QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self.sock.makefile("rb")

    def request(self, obj: dict) -> dict:
        """One round-trip; raises :class:`QueryError` on ``ok: false``."""
        self.sock.sendall(json.dumps(obj, allow_nan=False).encode() + b"\n")
        line = self._fh.readline()
        if not line:
            raise QueryError("query connection closed by server")
        response = json.loads(line)
        if not response.get("ok"):
            raise QueryError(response.get("error", "unknown query failure"))
        return response

    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def snapshot(self) -> dict:
        return self.request({"op": "snapshot"})["snapshot"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})["metrics"]

    def flow(self, flow_id: int) -> dict:
        return self.request({"op": "flow", "flow_id": int(flow_id)})

    def result(self, flow_id: int):
        return self.request(
            {"op": "result", "flow_id": int(flow_id)}
        )["result"]

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

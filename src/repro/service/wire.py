"""Versioned binary wire format for columnar digest batches.

The unit a PINT sink receives off the network is a **frame**: a fixed
struct-packed header followed (for data frames) by four little-endian
``int64`` columns -- ``flow_id``, ``pid``, ``hop_count``, ``digest`` --
exactly the columnar batch :meth:`repro.collector.Collector.
ingest_batch` consumes, so a received frame feeds the collector with
zero per-record Python work (``np.frombuffer`` views straight into the
payload bytes).

Layout (all little-endian, no padding)::

    common   magic:u16 = 0x4950 ("PI")   version:u8   ftype:u8
    DATA     seq:u32  count:u32  flags:u8  now:f64
             flow_id[count]:i64  pid[count]:i64
             hop_count[count]:i64  digest[count]:i64
    ACK      seq:u32

``version`` is checked before anything else in the frame is trusted:
a frame from a newer protocol is rejected as
:class:`BadVersionError` (and counted separately by the server), so
the format can evolve without a flag day -- old sinks refuse loudly
instead of misparsing, new sinks can keep a decoder per version.

Flags:

* ``FLAG_RELIABLE`` -- the sender numbers frames contiguously from 0,
  expects a per-frame ACK, and retransmits on RTO; the server
  deduplicates and delivers in seq order.
* ``FLAG_MORE`` -- this frame is a *fragment* of a larger logical
  batch (a UDP datagram caps a frame at ~64 KiB); the server
  coalesces a run of MORE frames with its terminating non-MORE frame
  back into one ``ingest_batch`` call, so batch boundaries -- and
  therefore every batch-granular counter in the snapshot -- survive
  the wire bit-identically.
* ``FLAG_NO_TIME`` -- the sender has no clock column; the sink
  ingests with ``now=None`` (records-driven collector clock).

Malformed input is rejected with typed errors, never a crash: short
buffers raise :class:`TruncatedFrameError`, wrong magic
:class:`BadMagicError`, unknown frame types / impossible counts /
trailing datagram bytes :class:`BadFrameError`.  All subclass
:class:`WireError` (itself a :class:`~repro.exceptions.ReproError`),
which is what the server catches to count a drop and move on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.collector.records import Column, normalize_batch
from repro.exceptions import ReproError

#: First two bytes of every frame: ``b"PI"`` read as a little-endian u16.
MAGIC = 0x4950
#: Current protocol version; bump on any layout change.
VERSION = 1

FT_DATA = 1
FT_ACK = 2

FLAG_RELIABLE = 0x01
FLAG_MORE = 0x02
FLAG_NO_TIME = 0x04
_KNOWN_FLAGS = FLAG_RELIABLE | FLAG_MORE | FLAG_NO_TIME

_COMMON = struct.Struct("<HBB")
_DATA_HDR = struct.Struct("<HBBIIBd")
_ACK = struct.Struct("<HBBI")

#: Hard per-frame record cap: a count field beyond this is corruption,
#: not a big batch, and must not drive a gigabyte allocation.
MAX_FRAME_RECORDS = 1 << 20
#: Largest record count that still fits one UDP datagram (65507-byte
#: payload ceiling minus the data header, 32 bytes per record).
MAX_UDP_RECORDS = (65507 - _DATA_HDR.size) // 32

_COL_BYTES = 8  # one little-endian int64 per column cell
_COLS = 4


class WireError(ReproError):
    """Base class for wire-format violations (always typed, never a crash)."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame its header promises."""


class BadMagicError(WireError):
    """The first two bytes are not the protocol magic."""


class BadVersionError(WireError):
    """The frame's protocol version is not one this decoder speaks."""

    def __init__(self, version: int) -> None:
        super().__init__(
            f"unsupported wire protocol version {version} "
            f"(this decoder speaks {VERSION})"
        )
        self.version = version


class BadFrameError(WireError):
    """Structurally invalid frame (unknown type, bad count, trailing bytes)."""


@dataclass(frozen=True)
class DataFrame:
    """One decoded data frame: a (fragment of a) columnar digest batch."""

    seq: int
    #: Batch clock reading, or None when the sender set FLAG_NO_TIME.
    now: Optional[float]
    reliable: bool
    #: True when this frame is a non-final fragment of a logical batch.
    more: bool
    flow_ids: np.ndarray
    pids: np.ndarray
    hop_counts: np.ndarray
    digests: np.ndarray

    @property
    def count(self) -> int:
        return int(self.flow_ids.shape[0])


@dataclass(frozen=True)
class AckFrame:
    """Server acknowledgement of one reliable data frame."""

    seq: int


Frame = Union[DataFrame, AckFrame]


# -- encoding --------------------------------------------------------------

def encode_frame(
    flow_ids: Column,
    pids: Column,
    hop_counts: Column,
    digests: Column,
    now: Optional[float],
    seq: int,
    *,
    reliable: bool = False,
    more: bool = False,
) -> bytes:
    """Pack one data frame (zero-record frames are legal keepalives)."""
    fids, ps, hops, digs = normalize_batch(flow_ids, pids, hop_counts, digests)
    n = int(fids.shape[0])
    if n > MAX_FRAME_RECORDS:
        raise ValueError(
            f"frame of {n} records exceeds MAX_FRAME_RECORDS "
            f"({MAX_FRAME_RECORDS}); fragment with encode_frames"
        )
    flags = 0
    if reliable:
        flags |= FLAG_RELIABLE
    if more:
        flags |= FLAG_MORE
    if now is None:
        flags |= FLAG_NO_TIME
        now = 0.0
    header = _DATA_HDR.pack(
        MAGIC, VERSION, FT_DATA, seq & 0xFFFFFFFF, n, flags, float(now)
    )
    return b"".join((
        header,
        fids.astype("<i8", copy=False).tobytes(),
        ps.astype("<i8", copy=False).tobytes(),
        hops.astype("<i8", copy=False).tobytes(),
        digs.astype("<i8", copy=False).tobytes(),
    ))


def encode_frames(
    flow_ids: Column,
    pids: Column,
    hop_counts: Column,
    digests: Column,
    now: Optional[float] = None,
    *,
    start_seq: int = 0,
    max_records: int = 1024,
    reliable: bool = False,
) -> List[bytes]:
    """Pack one columnar batch as a run of frames (vectorised).

    Batches larger than ``max_records`` are fragmented; every fragment
    but the last carries ``FLAG_MORE`` so the receiver reassembles the
    original batch boundary before ingesting.  Frames are numbered
    contiguously from ``start_seq``.  An empty batch encodes to no
    frames (there is nothing to ship).
    """
    if max_records < 1:
        raise ValueError("max_records must be >= 1")
    fids, ps, hops, digs = normalize_batch(flow_ids, pids, hop_counts, digests)
    n = int(fids.shape[0])
    if n == 0:
        return []
    out: List[bytes] = []
    seq = start_seq
    for lo in range(0, n, max_records):
        hi = min(lo + max_records, n)
        out.append(encode_frame(
            fids[lo:hi], ps[lo:hi], hops[lo:hi], digs[lo:hi],
            now, seq, reliable=reliable, more=hi < n,
        ))
        seq += 1
    return out


def encode_ack(seq: int) -> bytes:
    """Pack one ACK frame."""
    return _ACK.pack(MAGIC, VERSION, FT_ACK, seq & 0xFFFFFFFF)


# -- decoding --------------------------------------------------------------

def _check_common(buf: bytes, offset: int) -> int:
    """Validate magic + version at ``offset``; return the frame type."""
    if len(buf) - offset < _COMMON.size:
        raise TruncatedFrameError(
            f"{len(buf) - offset} bytes is shorter than the "
            f"{_COMMON.size}-byte frame prefix"
        )
    magic, version, ftype = _COMMON.unpack_from(buf, offset)
    if magic != MAGIC:
        raise BadMagicError(
            f"bad frame magic 0x{magic:04x} (expected 0x{MAGIC:04x})"
        )
    if version != VERSION:
        raise BadVersionError(version)
    return ftype


def _frame_length(buf: bytes, offset: int) -> Optional[int]:
    """Total byte length of the frame at ``offset``, or None if the
    header itself is still incomplete (stream decoding needs to tell
    "wait for more bytes" apart from "reject").  Raises on anything
    already provably invalid."""
    avail = len(buf) - offset
    if avail < _COMMON.size:
        return None
    ftype = _check_common(buf, offset)
    if ftype == FT_ACK:
        return _ACK.size
    if ftype == FT_DATA:
        if avail < _DATA_HDR.size:
            return None
        _, _, _, _, count, flags, _ = _DATA_HDR.unpack_from(buf, offset)
        if count > MAX_FRAME_RECORDS:
            raise BadFrameError(
                f"frame claims {count} records "
                f"(cap {MAX_FRAME_RECORDS}); rejecting as corrupt"
            )
        if flags & ~_KNOWN_FLAGS:
            raise BadFrameError(f"unknown flag bits 0x{flags:02x}")
        return _DATA_HDR.size + _COLS * _COL_BYTES * count
    raise BadFrameError(f"unknown frame type {ftype}")


def _decode_at(buf: bytes, offset: int) -> Tuple[Frame, int]:
    """Decode the frame at ``offset``; return it and the next offset."""
    length = _frame_length(buf, offset)
    if length is None or len(buf) - offset < length:
        raise TruncatedFrameError(
            f"frame at offset {offset} is truncated "
            f"({len(buf) - offset} bytes available)"
        )
    ftype = _COMMON.unpack_from(buf, offset)[2]
    if ftype == FT_ACK:
        seq = _ACK.unpack_from(buf, offset)[3]
        return AckFrame(seq=seq), offset + length
    _, _, _, seq, count, flags, now = _DATA_HDR.unpack_from(buf, offset)
    base = offset + _DATA_HDR.size
    cols = [
        np.frombuffer(buf, dtype="<i8", count=count,
                      offset=base + i * _COL_BYTES * count)
        for i in range(_COLS)
    ]
    frame = DataFrame(
        seq=seq,
        now=None if flags & FLAG_NO_TIME else now,
        reliable=bool(flags & FLAG_RELIABLE),
        more=bool(flags & FLAG_MORE),
        flow_ids=cols[0], pids=cols[1], hop_counts=cols[2], digests=cols[3],
    )
    return frame, offset + length


def decode_frame(datagram: bytes) -> Frame:
    """Decode exactly one frame (the UDP unit: one frame per datagram).

    Strict: trailing bytes after the frame are rejected -- a datagram
    is either one well-formed frame or garbage, and garbage must be
    counted, not half-ingested.
    """
    frame, end = _decode_at(datagram, 0)
    if end != len(datagram):
        raise BadFrameError(
            f"{len(datagram) - end} trailing byte(s) after the frame"
        )
    return frame


def decode_frames(data: bytes) -> List[Frame]:
    """Decode a buffer holding whole frames back-to-back.

    Every byte must be consumed: a partial frame at the tail raises
    :class:`TruncatedFrameError` (stream receivers that legitimately
    see partial tails use :class:`StreamDecoder` instead).
    """
    frames: List[Frame] = []
    offset = 0
    while offset < len(data):
        frame, offset = _decode_at(data, offset)
        frames.append(frame)
    return frames


class StreamDecoder:
    """Incremental frame decoder for byte streams (the TCP receive path).

    Feed arbitrary chunks; complete frames come back as they close.  A
    wire error poisons the stream permanently -- after losing framing
    there is no way to resynchronise a length-prefixed stream, so the
    caller must drop the connection (and count the drop).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned: Optional[WireError] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Frame]:
        """Append ``data``; return every frame completed by it."""
        if self._poisoned is not None:
            raise self._poisoned
        self._buf.extend(data)
        frames: List[Frame] = []
        offset = 0
        buf = bytes(self._buf)
        while True:
            try:
                length = _frame_length(buf, offset)
            except WireError as err:
                self._poisoned = err
                raise
            if length is None or len(buf) - offset < length:
                break
            try:
                frame, offset = _decode_at(buf, offset)
            except WireError as err:  # pragma: no cover - length checked
                self._poisoned = err
                raise
            frames.append(frame)
        if offset:
            del self._buf[:offset]
        return frames


def frames_payload_records(frames: Sequence[Frame]) -> int:
    """Total records across the data frames of ``frames``."""
    return sum(f.count for f in frames if isinstance(f, DataFrame))

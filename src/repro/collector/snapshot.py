"""Metrics export: point-in-time snapshots of collector state.

The operational surface a monitoring stack scrapes: per-shard flow
counts, ingest counters, eviction counters, decode-completion rates and
estimated resident bytes, plus whole-collector aggregates.  Snapshots
are plain frozen dataclasses -- cheap to take, trivially serialisable
(``as_dict``) and comparable in tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import merge_metrics


@dataclass(frozen=True)
class ShardStats:
    """One shard's counters at snapshot time."""

    shard_id: int
    flows: int
    records: int
    batches: int
    created: int
    lru_evictions: int
    ttl_evictions: int
    completed_flows: int
    state_bytes: int
    #: Sum of per-flow decode coverage (see
    #: :attr:`DigestConsumer.coverage`) over the shard's live flows --
    #: the decode-under-loss aggregate impaired replays degrade.
    coverage_sum: float = 0.0
    #: True when worker recovery exceeded the replay-journal window
    #: for this shard: it keeps serving, but ``records_lost`` records
    #: were neither restored nor replayed and its answers may
    #: undercount.  Always False/0 on a fault-free run, so degraded
    #: accounting never perturbs bit-identity assertions.
    degraded: bool = False
    records_lost: int = 0

    @property
    def completion_rate(self) -> float:
        """Fraction of live flows with a decodable answer."""
        return self.completed_flows / self.flows if self.flows else 0.0

    @property
    def mean_coverage(self) -> float:
        """Mean per-flow decode coverage (NaN with no live flows)."""
        return self.coverage_sum / self.flows if self.flows else float("nan")


@dataclass(frozen=True)
class ServiceStats:
    """Network front-door counters (see :mod:`repro.service.server`).

    The wire boundary can lose work the in-process collector never
    could -- a malformed datagram, a frame from a future protocol
    version, an admission queue already full -- and each loss reason
    gets its own counter so operators can tell overload
    (``dropped_queue_full``) from version skew (``dropped_bad_version``)
    from corruption (``dropped_bad_frame``).  ``dropped_queue_full``
    counts *admission rejections*: for fire-and-forget frames the
    records are gone, while a reliable frame is parked unacked and
    re-admitted on the sender's retransmit, so there it measures
    backpressure events rather than loss.
    """

    frames_received: int = 0
    records_ingested: int = 0
    batches_ingested: int = 0
    acks_sent: int = 0
    duplicate_frames: int = 0
    dropped_queue_full: int = 0
    dropped_bad_version: int = 0
    dropped_bad_frame: int = 0
    #: Reliable frames beyond the per-peer reorder window (a sender
    #: too far ahead of a stalled stream); unacked, so retransmitted.
    dropped_window: int = 0

    @classmethod
    def merged(
        cls, parts: Iterable[Optional["ServiceStats"]]
    ) -> Optional["ServiceStats"]:
        """Field-wise sum over the non-``None`` parts (all counters).

        ``None`` parts contribute nothing -- a sink that never stood
        behind a front door has no wire counters, not zero wire
        counters -- and an all-``None`` merge stays ``None`` so merged
        and bare snapshots remain ``==``-comparable.
        """
        present = [p for p in parts if p is not None]
        if not present:
            return None
        totals = {
            f.name: sum(getattr(p, f.name) for p in present)
            for f in fields(cls)
        }
        return cls(**totals)

    @property
    def dropped_total(self) -> int:
        """All admission rejections, every reason summed."""
        return (
            self.dropped_queue_full + self.dropped_bad_version
            + self.dropped_bad_frame + self.dropped_window
        )


@dataclass(frozen=True)
class RecoveryStats:
    """Supervision counters (see :mod:`repro.collector.parallel`).

    The fault-tolerance ledger: how often workers were restarted, how
    much checkpoint/journal machinery ran, and what -- if anything --
    was actually lost.  Rides on :attr:`Snapshot.recovery` with
    ``compare=False`` (like :attr:`Snapshot.metrics`): a recovered run
    and a fault-free run with bit-identical collector state must still
    compare equal, restarts and all.
    """

    #: Worker processes replaced (restore + journal replay each).
    restarts: int = 0
    #: Checkpoints accepted / rejected (dropped write, bad CRC, ...).
    checkpoints_taken: int = 0
    checkpoints_rejected: int = 0
    #: Journal messages / records re-sent to replacement workers.
    replayed_batches: int = 0
    replayed_records: int = 0
    #: Journal evictions (checkpointing was failing): *potential* loss.
    journal_dropped_batches: int = 0
    journal_dropped_records: int = 0
    #: Shards currently marked degraded and their summed actual loss
    #: (filled from the merged shard stats at snapshot time).
    degraded_shards: int = 0
    records_lost: int = 0

    @classmethod
    def merged(
        cls, parts: Iterable[Optional["RecoveryStats"]]
    ) -> Optional["RecoveryStats"]:
        """Field-wise sum over non-``None`` parts (all counters);
        an all-``None`` merge stays ``None`` -- the
        :meth:`ServiceStats.merged` contract."""
        present = [p for p in parts if p is not None]
        if not present:
            return None
        totals = {
            f.name: sum(getattr(p, f.name) for p in present)
            for f in fields(cls)
        }
        return cls(**totals)


@dataclass(frozen=True)
class Snapshot:
    """Whole-collector view: per-shard stats + aggregates.

    ``service`` is populated only by the network front door
    (:meth:`repro.service.server.CollectorServer.snapshot`); snapshots
    taken straight off a collector carry ``None`` there, so in-process
    and behind-the-wire snapshots of the same collector state still
    compare equal on every shard counter.

    ``metrics`` carries the owning registry's dump
    (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`) when the
    collector was built with ``obs=``; it is excluded from equality
    *and* from :meth:`as_dict` on purpose -- metrics contain wall-time
    histograms, and two bit-identical collector states must keep
    comparing equal regardless of how long their runs took.  Read it
    explicitly (or via the query port's ``metrics`` verb).
    """

    taken_at: float
    shards: List[ShardStats] = field(default_factory=list)
    service: Optional[ServiceStats] = None  # repro-lint: disable=R004 reason=wire counters are part of the delivery contract the service benches assert on, so service is deliberately equality-bearing
    metrics: Optional[Dict] = field(default=None, compare=False)
    #: Supervision ledger (restarts, replay volume, loss) attached by
    #: a supervised :class:`~repro.collector.parallel.
    #: ParallelCollector`; ``compare=False`` and excluded from
    #: :meth:`as_dict` for the same reason as ``metrics`` -- how a
    #: state was *reached* (cleanly or through recovery) must never
    #: break equality of bit-identical states.
    recovery: Optional[RecoveryStats] = field(default=None, compare=False)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def flows(self) -> int:
        """Live flows across all shards."""
        return sum(s.flows for s in self.shards)

    @property
    def records(self) -> int:
        """Records ingested since construction."""
        return sum(s.records for s in self.shards)

    @property
    def evictions(self) -> int:
        """LRU + TTL evictions across all shards."""
        return sum(s.lru_evictions + s.ttl_evictions for s in self.shards)

    @property
    def completed_flows(self) -> int:
        """Flows with a decodable answer across all shards."""
        return sum(s.completed_flows for s in self.shards)

    @property
    def completion_rate(self) -> float:
        """Decode-completion rate over all live flows."""
        flows = self.flows
        return self.completed_flows / flows if flows else 0.0

    @property
    def coverage_sum(self) -> float:
        """Summed per-flow decode coverage across all shards."""
        return sum(s.coverage_sum for s in self.shards)

    @property
    def mean_coverage(self) -> float:
        """Mean per-flow decode coverage across all live flows.

        NaN when no flows are live (e.g. every flow of an impaired
        replay was fully dropped); JSON writers must route snapshots
        through :func:`benchlib.write_bench_json`, which serialises
        the NaN as null instead of crashing strict parsers.
        """
        flows = self.flows
        return self.coverage_sum / flows if flows else float("nan")

    @property
    def state_bytes(self) -> int:
        """Estimated resident consumer state, bytes."""
        return sum(s.state_bytes for s in self.shards)

    @property
    def max_shard_flows(self) -> int:
        """Hottest shard's flow count (skew / balance check)."""
        return max((s.flows for s in self.shards), default=0)

    @property
    def degraded_shards(self) -> List[int]:
        """Shard ids currently marked degraded (empty when healthy)."""
        return [s.shard_id for s in self.shards if s.degraded]

    @property
    def records_lost(self) -> int:
        """Records recovery could not restore or replay, all shards."""
        return sum(s.records_lost for s in self.shards)

    @classmethod
    def merged(
        cls,
        parts: Iterable["Snapshot"],
        taken_at: Optional[float] = None,
    ) -> "Snapshot":
        """Merge partial snapshots over *disjoint* shard subsets.

        The parallel collector scatters shards across worker processes;
        each worker snapshots only the shards it owns, and this merge
        reassembles the whole-collector view -- shard lists are
        concatenated and ordered by ``shard_id``, so the result is
        field-for-field identical to the snapshot a single-process
        collector over the same shards would have taken.  Overlapping
        shard ids are rejected (a shard's counters live in exactly one
        worker; summing duplicates would double-count).

        ``taken_at`` defaults to the latest part (workers trail the
        front-door clock only by in-flight batches; pass the front
        door's own clock for an exact stamp).

        Heterogeneous sidecars merge too: per-part ``service``
        counters sum field-wise and per-part ``metrics`` registries
        fold via :func:`~repro.obs.metrics.merge_metrics` -- parts
        carrying ``None`` (an idle or uninstrumented worker) simply
        contribute nothing, and when *every* part carries ``None`` the
        merged field stays ``None``, keeping merged snapshots
        ``==``-comparable with bare ones.
        """
        parts = list(parts)
        shards = [s for p in parts for s in p.shards]
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError(
                "cannot merge snapshots with overlapping shard ids "
                f"(got {sorted(ids)})"
            )
        if taken_at is None:
            taken_at = max((p.taken_at for p in parts), default=0.0)
        return cls(
            taken_at=taken_at,
            shards=sorted(shards, key=lambda s: s.shard_id),
            service=ServiceStats.merged(p.service for p in parts),
            metrics=merge_metrics(p.metrics for p in parts),
            recovery=RecoveryStats.merged(p.recovery for p in parts),
        )

    def with_metrics(self, extra: Optional[Dict]) -> "Snapshot":
        """This snapshot with ``extra`` metrics folded in (or as-is)."""
        if extra is None:
            return self
        return replace(self, metrics=merge_metrics([self.metrics, extra]))

    def with_recovery(
        self, recovery: Optional["RecoveryStats"]
    ) -> "Snapshot":
        """This snapshot with the supervision ledger attached (or as-is)."""
        if recovery is None:
            return self
        return replace(self, recovery=recovery)

    def as_dict(self) -> Dict:
        """JSON-friendly dump, aggregates included."""
        return {
            "taken_at": self.taken_at,
            "flows": self.flows,
            "records": self.records,
            "evictions": self.evictions,
            "completed_flows": self.completed_flows,
            "completion_rate": self.completion_rate,
            "coverage_sum": self.coverage_sum,
            # None (JSON null), not NaN, when no flows are live: the
            # dump stays strict-JSON and snapshot dicts stay ==-
            # comparable (NaN != NaN would break the serial/parallel
            # equivalence assertions on idle collectors).
            "mean_coverage": self.mean_coverage if self.flows else None,
            "state_bytes": self.state_bytes,
            # Healthy runs dump [] / 0 here, so degraded accounting
            # never perturbs the bit-identity comparisons bench gates
            # make on these dicts.  `recovery` itself is deliberately
            # excluded, like `metrics`: it describes the journey, not
            # the state.
            "degraded_shards": self.degraded_shards,
            "records_lost": self.records_lost,
            "shards": [asdict(s) for s in self.shards],
            "service": asdict(self.service) if self.service else None,  # repro-lint: disable=R004 reason=service is equality-bearing (see field declaration), so it serializes with the answer
        }

"""The collector front door: sharded, batched sink-side ingestion.

``Collector`` is the service boundary a telemetry sink exposes: feed it
``(flow_id, pid, hop_count, digest)`` tuples -- one at a time from a DES
hook, or in columnar batches from a capture pipeline -- and query
per-flow answers and operational metrics back out.

Two ingestion paths:

* :meth:`ingest` -- scalar; routes with one hash, touches one flow
  table entry, dispatches one consumer call.  Per-record Python
  overhead dominates at scale.
* :meth:`ingest_batch` -- columnar; routes the whole batch with one
  vectorised hash, lexsorts by (shard, flow) in C, and hands each
  flow's contiguous slice to its consumer in a single
  ``consume_batch`` call.  The sort replaces per-record routing and
  table touches with per-*group* work, which is where the >=5x
  throughput of ``benchmarks/bench_collector_throughput.py`` comes
  from (mirroring the vectorised-encoder work on the switch side).

Time: every ingest accepts an optional ``now`` (sim seconds when driven
from the DES).  When omitted the collector free-runs on a logical clock
of records ingested, so TTLs are then expressed in records.  The first
ingest pins the mode; mixing the two on one collector raises (record
counts added to a seconds clock would TTL-evict everything).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.collector.consumers import ConsumerFactory, DigestConsumer
from repro.collector.records import Column, normalize_batch
from repro.collector.shard import Shard, ShardRouter
from repro.collector.snapshot import Snapshot


class Collector:
    """Sharded streaming collector over per-flow digest consumers.

    Parameters
    ----------
    consumer_factory:
        Called once per live flow to build its :class:`DigestConsumer`
        (see :mod:`repro.collector.consumers` for the three queries).
    num_shards:
        Share-nothing partitions; flows hash-route to one shard each.
    max_flows_per_shard / ttl:
        Flow-table bounds (LRU capacity, idle expiry) applied per shard.
    router:
        Optional :class:`ShardRouter` override (custom placement).
    """

    def __init__(
        self,
        consumer_factory: ConsumerFactory,
        num_shards: int = 8,
        max_flows_per_shard: Optional[int] = None,
        ttl: Optional[float] = None,
        seed: int = 0,
        router: Optional[ShardRouter] = None,
    ) -> None:
        if router is not None and router.num_shards != num_shards:
            raise ValueError("router/num_shards mismatch")
        self.router = router if router is not None else ShardRouter(
            num_shards, seed
        )
        self.num_shards = self.router.num_shards
        self.shards: List[Shard] = [
            Shard(i, consumer_factory, max_flows_per_shard, ttl)
            for i in range(self.num_shards)
        ]
        self._clock = 0.0
        #: "time" (caller supplies now) or "records" (free-running),
        #: fixed by the first ingest; the two units cannot mix.
        self._clock_mode: Optional[str] = None

    # -- clock -------------------------------------------------------------

    def _tick(self, now: Optional[float], records: int) -> float:
        """Advance the collector clock (caller time wins when given).

        Mixing ``now``-driven and free-running ingests would add raw
        record counts onto a seconds clock and TTL-evict everything on
        the next sweep, so the first ingest pins the mode and a mixed
        call fails loudly instead.
        """
        mode = "records" if now is None else "time"
        if self._clock_mode is None:
            self._clock_mode = mode
        elif self._clock_mode != mode:
            hint = "without" if now is None else "with"
            raise ValueError(
                f"collector clock is {self._clock_mode}-driven; cannot "
                f"ingest {hint} an explicit 'now' (mixing units corrupts "
                "TTL accounting)"
            )
        if now is None:
            self._clock += records
        else:
            self._clock = max(self._clock, float(now))
        return self._clock

    @property
    def now(self) -> float:
        """The collector's current clock reading."""
        return self._clock

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self,
        flow_id: int,
        pid: int,
        hop_count: int,
        digest: int,
        now: Optional[float] = None,
    ) -> None:
        """Fold one record into its flow's consumer (scalar path)."""
        t = self._tick(now, 1)
        shard = self.shards[self.router.shard_of(flow_id)]
        shard.ingest(flow_id, pid, hop_count, digest, t)

    def ingest_batch(
        self,
        flow_ids: Column,
        pids: Column,
        hop_counts: Column,
        digests: Column,
        now: Optional[float] = None,
    ) -> int:
        """Fold a columnar batch; returns the number of records.

        Records of the same flow are applied in their batch order;
        ordering *across* flows is unspecified.  Decoding state never
        notices (flows are independent problems), but LRU recency is
        per-*batch* under batched ingestion: every flow in the batch
        is touched at the same clock reading, so with
        ``max_flows_per_shard`` set, eviction victims among same-batch
        flows can differ from a record-at-a-time replay of the stream.
        """
        fids, ps, hops, digs = normalize_batch(
            flow_ids, pids, hop_counts, digests
        )
        n = int(fids.shape[0])
        if n == 0:
            return 0
        t = self._tick(now, n)
        if self.num_shards == 1:
            shard_ids = None
            order = np.argsort(fids, kind="stable")
        else:
            shard_ids = self.router.shard_of_array(fids)
            # Stable grouping: shard-major, flow-minor; ties keep batch
            # order so per-flow streams stay sequential.
            order = np.lexsort((fids, shard_ids))
        fids = fids[order]
        ps = ps[order]
        hops = hops[order]
        digs = digs[order]
        # Group boundaries: wherever the flow id changes (a shard change
        # implies a flow change, so flow boundaries cover both).  Group
        # keys are pulled out as Python lists in one shot: per-group
        # NumPy scalar indexing would cost more than the group body.
        cuts = np.flatnonzero(fids[1:] != fids[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        bounds = np.append(starts, n).tolist()
        group_fids = fids[starts].tolist()
        if shard_ids is None:
            group_sids = [0] * len(group_fids)
        else:
            group_sids = shard_ids[order[starts]].tolist()
        shards = self.shards
        touched = set()
        for idx, fid in enumerate(group_fids):
            sid = group_sids[idx]
            shards[sid].ingest_group(
                fid, ps, hops, digs, t, bounds[idx], bounds[idx + 1]
            )
            touched.add(sid)
        for sid in touched:
            shards[sid].batches += 1
            shards[sid].table.maybe_expire(t)
        return n

    # -- queries -----------------------------------------------------------

    def flow(self, flow_id: int) -> Optional[DigestConsumer]:
        """The flow's live consumer, or None if absent/evicted."""
        shard = self.shards[self.router.shard_of(flow_id)]
        entry = shard.table.get(flow_id)
        return entry.consumer if entry is not None else None

    def result(self, flow_id: int):
        """The flow's query answer, or None (unknown flow / undecoded)."""
        consumer = self.flow(flow_id)
        return consumer.result() if consumer is not None else None

    def __len__(self) -> int:
        """Live flows across all shards."""
        return sum(len(s.table) for s in self.shards)

    # -- operations --------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> int:
        """Force a TTL sweep on every shard; returns evicted flows.

        Subject to the same clock-mode guard as ingestion: a
        wall-clock ``now`` against a records-driven collector would
        silently evict everything.
        """
        if now is not None and self._clock_mode == "records":
            raise ValueError(
                "collector clock is records-driven; cannot expire with "
                "an explicit 'now' (mixing units corrupts TTL accounting)"
            )
        t = self._clock if now is None else float(now)
        return sum(shard.expire(t) for shard in self.shards)

    def evict(self, flow_id: int) -> bool:
        """Drop one flow's state (e.g. its FIN was observed)."""
        shard = self.shards[self.router.shard_of(flow_id)]
        return shard.table.evict(flow_id)

    def snapshot(self) -> Snapshot:
        """Point-in-time metrics across all shards."""
        return Snapshot(
            taken_at=self._clock,
            shards=[shard.stats() for shard in self.shards],
        )

"""The collector front door: sharded, batched sink-side ingestion.

``Collector`` is the service boundary a telemetry sink exposes: feed it
``(flow_id, pid, hop_count, digest)`` tuples -- one at a time from a DES
hook, or in columnar batches from a capture pipeline -- and query
per-flow answers and operational metrics back out.

Two ingestion paths:

* :meth:`ingest` -- scalar; routes with one hash, touches one flow
  table entry, dispatches one consumer call.  Per-record Python
  overhead dominates at scale.
* :meth:`ingest_batch` -- columnar; routes the whole batch with one
  vectorised hash, lexsorts by (shard, flow) in C, and hands each
  flow's contiguous slice to its consumer in a single
  ``consume_batch`` call.  The sort replaces per-record routing and
  table touches with per-*group* work, which is where the >=5x
  throughput of ``benchmarks/bench_collector_throughput.py`` comes
  from (mirroring the vectorised-encoder work on the switch side).

Time: every ingest accepts an optional ``now`` (sim seconds when driven
from the DES).  When omitted the collector free-runs on a logical clock
of records ingested, so TTLs are then expressed in records.  The first
ingest pins the mode; mixing the two on one collector raises (record
counts added to a seconds clock would TTL-evict everything).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.collector.consumers import ConsumerFactory, DigestConsumer
from repro.collector.records import Column, normalize_batch
from repro.collector.shard import Shard, ShardRouter
from repro.collector.snapshot import Snapshot
from repro.exceptions import CollectorClosedError
from repro.obs.metrics import NULL_REGISTRY, SIZE_BUCKETS


class IngestClock:
    """The collector's clock: caller-driven seconds or free-running records.

    Every ingest accepts an optional ``now``; the first call pins which
    of the two units the clock runs on.  Mixing ``now``-driven and
    free-running ingests would add raw record counts onto a seconds
    clock and TTL-evict everything on the next sweep, so a mixed call
    fails loudly instead.  Factored out of :class:`Collector` so the
    multi-process front door (:class:`repro.collector.parallel.
    ParallelCollector`) ticks the *same* clock parent-side and hands
    workers an explicit ``now`` -- keeping worker TTL accounting
    bit-identical to a single-process collector.
    """

    __slots__ = ("now", "mode")

    def __init__(self) -> None:
        self.now = 0.0
        #: "time" (caller supplies now) or "records" (free-running),
        #: fixed by the first tick; the two units cannot mix.
        self.mode: Optional[str] = None

    def tick(self, now: Optional[float], records: int) -> float:
        """Advance the clock (caller time wins when given)."""
        mode = "records" if now is None else "time"
        if self.mode is None:
            self.mode = mode
        elif self.mode != mode:
            hint = "without" if now is None else "with"
            raise ValueError(
                f"collector clock is {self.mode}-driven; cannot "
                f"ingest {hint} an explicit 'now' (mixing units corrupts "
                "TTL accounting)"
            )
        if now is None:
            self.now += records
        else:
            self.now = max(self.now, float(now))
        return self.now

    def expire_time(self, now: Optional[float]) -> float:
        """Resolve an ``expire(now)`` argument under the same guard."""
        if now is None:
            return self.now
        if self.mode == "records":
            raise ValueError(
                "collector clock is records-driven; cannot expire with "
                "an explicit 'now' (mixing units corrupts TTL accounting)"
            )
        return float(now)


class Collector:
    """Sharded streaming collector over per-flow digest consumers.

    Parameters
    ----------
    consumer_factory:
        Called once per live flow to build its :class:`DigestConsumer`
        (see :mod:`repro.collector.consumers` for the three queries).
    num_shards:
        Share-nothing partitions; flows hash-route to one shard each.
    max_flows_per_shard / ttl:
        Flow-table bounds (LRU capacity, idle expiry) applied per shard.
    router:
        Optional :class:`ShardRouter` override (custom placement).
    obs / obs_labels:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (shared
        freely across components) and static labels distinguishing
        this collector's series (e.g. ``{"sink": "path"}``).  Omitted,
        all instrumentation collapses to shared no-ops; enabled, the
        hot path pays per-*batch* work only -- batch-size histogram,
        two stage spans, per-batch counter bumps -- while
        eviction/creation totals and the live-flow gauge are read
        straight off the flow tables at export time.  Either way the
        ingested state is bit-identical (metrics observe, they never
        steer), which ``bench_obs_overhead.py`` pins alongside the
        <5% overhead ceiling.
    """

    def __init__(
        self,
        consumer_factory: ConsumerFactory,
        num_shards: int = 8,
        max_flows_per_shard: Optional[int] = None,
        ttl: Optional[float] = None,
        seed: int = 0,
        router: Optional[ShardRouter] = None,
        obs=None,
        obs_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if router is not None and router.num_shards != num_shards:
            raise ValueError("router/num_shards mismatch")
        self.router = router if router is not None else ShardRouter(
            num_shards, seed
        )
        self.num_shards = self.router.num_shards
        self.max_flows_per_shard = max_flows_per_shard
        self.ttl = ttl
        self.shards: List[Shard] = [
            Shard(i, consumer_factory, max_flows_per_shard, ttl)
            for i in range(self.num_shards)
        ]
        self.clock = IngestClock()
        self._closed = False
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._init_obs(dict(obs_labels) if obs_labels else {})

    def _init_obs(self, labels: Dict[str, str]) -> None:
        """Bind this collector's instruments once, up front.

        Hot-path sites touch pre-bound attributes only; registry
        lookups (dict + lock) happen here, never per batch.
        """
        obs = self.obs
        self._m_records = obs.counter(
            "pint_collector_records_total",
            "Records folded into consumers", labels,
        )
        self._m_batches = obs.counter(
            "pint_collector_batches_total",
            "ingest_batch calls applied", labels,
        )
        self._m_batch_size = obs.histogram(
            "pint_collector_batch_records",
            "Records per ingest_batch call", labels, buckets=SIZE_BUCKETS,
        )
        self._sp_group = obs.span(
            "pint_collector_group_seconds",
            "Per-batch normalize + route + lexsort grouping time", labels,
        )
        self._sp_consume = obs.span(
            "pint_collector_consume_seconds",
            "Per-batch flow-table touch + consumer dispatch time", labels,
        )
        # Totals that already live in the flow tables are *read* at
        # export time rather than double-counted on the hot path.
        shards = self.shards
        obs.counter(
            "pint_collector_flows_created_total",
            "Flow-table entries ever created", labels,
        ).set_function(lambda: sum(s.table.created for s in shards))
        obs.counter(
            "pint_collector_lru_evictions_total",
            "Flows evicted by LRU capacity pressure", labels,
        ).set_function(lambda: sum(s.table.lru_evictions for s in shards))
        obs.counter(
            "pint_collector_ttl_evictions_total",
            "Flows evicted by idle TTL", labels,
        ).set_function(lambda: sum(s.table.ttl_evictions for s in shards))
        obs.gauge(
            "pint_collector_live_flows",
            "Flow-table entries currently live", labels,
        ).set_function(lambda: sum(len(s.table) for s in shards))

    # -- clock -------------------------------------------------------------

    def _tick(self, now: Optional[float], records: int) -> float:
        """Advance the collector clock (caller time wins when given)."""
        return self.clock.tick(now, records)

    @property
    def now(self) -> float:
        """The collector's current clock reading."""
        return self.clock.now

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self,
        flow_id: int,
        pid: int,
        hop_count: int,
        digest: int,
        now: Optional[float] = None,
    ) -> None:
        """Fold one record into its flow's consumer (scalar path)."""
        self._check_open()
        t = self._tick(now, 1)
        shard = self.shards[self.router.shard_of(flow_id)]
        shard.ingest(flow_id, pid, hop_count, digest, t)
        self._m_records.inc()

    def ingest_batch(
        self,
        flow_ids: Column,
        pids: Column,
        hop_counts: Column,
        digests: Column,
        now: Optional[float] = None,
    ) -> int:
        """Fold a columnar batch; returns the number of records.

        Records of the same flow are applied in their batch order;
        ordering *across* flows is unspecified.  Decoding state never
        notices (flows are independent problems).  Table semantics at
        batch granularity:

        * unbounded, no TTL -- recency order among same-batch flows is
          group order rather than record order, which nothing
          observes;
        * ``ttl`` set -- every touched flow shares the batch's clock
          reading, so TTL is batch-granular: a flow idle past its TTL
          whose next record arrives *in this batch* is revived with
          its state intact, where a record-at-a-time replay might
          sweep it first (depending on which record triggers the
          amortised sweep) and rebuild it fresh.  Keeping the state is
          the cheaper side of the race -- TTL eviction is a resource
          policy and PINT state is always rebuildable -- and it buys
          the per-group fast path;
        * ``max_flows_per_shard`` set -- capacity eviction *is*
          order-sensitive and observable, so the front door switches
          to a record-faithful walk (:meth:`_ingest_batch_lru`) whose
          eviction victims, counters and surviving consumer state are
          exactly those of a record-at-a-time replay (TTL sweeps
          included: the walk re-checks them per record).
        """
        self._check_open()
        with self._sp_group:
            fids, ps, hops, digs = normalize_batch(
                flow_ids, pids, hop_counts, digests
            )
            n = int(fids.shape[0])
            if n == 0:
                return 0
            t = self._tick(now, n)
            if self.num_shards == 1:
                shard_ids = None
                order = np.argsort(fids, kind="stable")
            else:
                shard_ids = self.router.shard_of_array(fids)
                # Stable grouping: shard-major, flow-minor; ties keep
                # batch order so per-flow streams stay sequential.
                order = np.lexsort((fids, shard_ids))
            sfids = fids[order]
            sps = ps[order]
            shops = hops[order]
            sdigs = digs[order]
            # Group boundaries: wherever the flow id changes (a shard
            # change implies a flow change, so flow boundaries cover
            # both).  Group keys are pulled out as Python lists in one
            # shot: per-group NumPy scalar indexing would cost more
            # than the group body.
            cuts = np.flatnonzero(sfids[1:] != sfids[:-1]) + 1
            starts = np.concatenate(([0], cuts))
            bounds = np.append(starts, n).tolist()
            group_fids = sfids[starts].tolist()
            if shard_ids is None:
                group_sids = [0] * len(group_fids)
            else:
                group_sids = shard_ids[order[starts]].tolist()
        self._m_batch_size.observe(n)
        self._m_records.inc(n)
        self._m_batches.inc()
        if self.max_flows_per_shard is not None:
            with self._sp_consume:
                self._ingest_batch_lru(
                    fids, shard_ids, sps, shops, sdigs, t,
                    group_fids, group_sids, bounds,
                )
            return n
        with self._sp_consume:
            shards = self.shards
            touched = set()
            for idx, fid in enumerate(group_fids):
                sid = group_sids[idx]
                shards[sid].ingest_group(
                    fid, sps, shops, sdigs, t, bounds[idx], bounds[idx + 1]
                )
                touched.add(sid)
            for sid in touched:
                shards[sid].batches += 1
                shards[sid].table.maybe_expire(t)
        return n

    def _ingest_batch_lru(
        self,
        fids: np.ndarray,
        shard_ids: Optional[np.ndarray],
        sps: np.ndarray,
        shops: np.ndarray,
        sdigs: np.ndarray,
        t: float,
        group_fids: List[int],
        group_sids: List[int],
        bounds: List[int],
    ) -> None:
        """Record-faithful batch ingestion for LRU-bounded tables.

        Replays each shard's records in original batch order for the
        *table* operations only -- touch, capacity eviction, amortised
        TTL sweep -- so eviction victims and counters are exactly those
        of record-at-a-time ingestion, then folds each surviving flow
        incarnation's contiguous slice into its consumer in one call.
        Records that preceded a mid-batch eviction of their flow are
        dropped without consumer work: the scalar path folds them into
        a consumer that is then discarded, so skipping the fold is
        state-identical and strictly cheaper.

        The walk costs one dict touch per record (instead of one per
        flow group), which is the price of exact LRU semantics; tables
        without ``max_flows`` keep the per-group fast path.
        """
        slice_of = {}
        by_shard: dict = {}
        for idx, fid in enumerate(group_fids):
            slice_of[fid] = (bounds[idx], bounds[idx + 1])
            by_shard.setdefault(group_sids[idx], []).append(fid)
        # Each shard's records in original batch order, via one stable
        # shard-major sort (a per-shard boolean mask would rescan the
        # whole column once per touched shard).
        if shard_ids is None:
            shard_stream = {0: fids}
        else:
            so = np.argsort(shard_ids, kind="stable")
            ssids = shard_ids[so]
            seg_cuts = np.flatnonzero(ssids[1:] != ssids[:-1]) + 1
            seg_lo = np.concatenate(([0], seg_cuts)).tolist()
            seg_hi = np.append(seg_cuts, len(so)).tolist()
            shard_stream = {
                int(ssids[a]): fids[so[a:b]]
                for a, b in zip(seg_lo, seg_hi)
            }
        for sid, flows in by_shard.items():
            shard = self.shards[sid]
            table = shard.table
            sub = shard_stream[sid]
            #: records of each flow seen before its live incarnation
            #: was (re-)created -- those belong to evicted consumers.
            start_at: dict = {}
            seen: dict = {}
            for f in sub.tolist():
                created_before = table.created
                entry = table.touch(f, t)
                if table.created != created_before:
                    start_at[f] = seen.get(f, 0)
                entry.records += 1
                seen[f] = seen.get(f, 0) + 1
                table.maybe_expire(t)
            for f in flows:
                entry = table.get(f)
                if entry is None:
                    continue  # evicted after its last record
                lo, hi = slice_of[f]
                entry.consumer.consume_slice(
                    sps, shops, sdigs, lo + start_at.get(f, 0), hi
                )
            shard.records += int(sub.shape[0])
            shard.batches += 1

    # -- queries -----------------------------------------------------------

    def flow(self, flow_id: int) -> Optional[DigestConsumer]:
        """The flow's live consumer, or None if absent/evicted."""
        shard = self.shards[self.router.shard_of(flow_id)]
        entry = shard.table.get(flow_id)
        return entry.consumer if entry is not None else None

    def flows(self, flow_ids) -> List[Optional[DigestConsumer]]:
        """Bulk :meth:`flow`, in input order.

        Trivial in-process; exists so callers scoring many flows can
        treat serial and parallel collectors alike (the parallel bulk
        form batches one RPC per worker).
        """
        return [self.flow(int(f)) for f in flow_ids]

    def result(self, flow_id: int):
        """The flow's query answer, or None (unknown flow / undecoded)."""
        consumer = self.flow(flow_id)
        return consumer.result() if consumer is not None else None

    def __len__(self) -> int:
        """Live flows across all shards."""
        return sum(len(s.table) for s in self.shards)

    # -- operations --------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> int:
        """Force a TTL sweep on every shard; returns evicted flows.

        Subject to the same clock-mode guard as ingestion: a
        wall-clock ``now`` against a records-driven collector would
        silently evict everything.
        """
        t = self.clock.expire_time(now)
        return sum(shard.expire(t) for shard in self.shards)

    def evict(self, flow_id: int) -> bool:
        """Drop one flow's state (e.g. its FIN was observed)."""
        shard = self.shards[self.router.shard_of(flow_id)]
        return shard.table.evict(flow_id)

    def snapshot(self) -> Snapshot:
        """Point-in-time metrics across all shards.

        When an ``obs`` registry is attached its full dump rides on
        :attr:`Snapshot.metrics` (excluded from ``as_dict`` and
        equality -- timings may never break bit-identity checks).
        """
        return Snapshot(
            taken_at=self.clock.now,
            shards=[shard.stats() for shard in self.shards],
            metrics=self.obs.as_dict() if self.obs.enabled else None,
        )

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict:
        """Capture full collector state for a checkpoint.

        Everything a bit-identical rebuild needs: the clock (value
        *and* mode -- a restored collector must keep rejecting mixed
        units), and per shard the ingest counters, degradation marks
        and the flow table's :meth:`~repro.collector.flowtable.
        FlowTable.state_dict` (consumers included; they pickle whole,
        decoders and sketches and all).  Plain picklable dict -- the
        framing/CRC/versioning lives in :mod:`repro.collector.
        recovery`, not here.
        """
        return {
            "num_shards": self.num_shards,
            "clock": {"now": self.clock.now, "mode": self.clock.mode},
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "records": s.records,
                    "batches": s.batches,
                    "degraded": s.degraded,
                    "records_lost": s.records_lost,
                    "table": s.table.state_dict(),
                }
                for s in self.shards
            ],
        }

    def load_state(self, state: Dict) -> None:
        """Install a :meth:`state_dict` capture, replacing live state.

        Restores *into* the existing shard/table objects (never
        replaces them): pre-bound obs instruments hold function
        closures over ``self.shards``, and those must keep reading the
        restored counters.  The collector must have been built with
        the same layout the capture came from; a shard-count mismatch
        raises :class:`~repro.exceptions.RestoreError` rather than
        scattering state across the wrong partitions.
        """
        from repro.exceptions import RestoreError

        if state["num_shards"] != self.num_shards:
            raise RestoreError(
                f"checkpoint has {state['num_shards']} shards, this "
                f"collector has {self.num_shards}; restore requires an "
                "identical layout"
            )
        self.clock.now = state["clock"]["now"]
        self.clock.mode = state["clock"]["mode"]
        for shard_state in state["shards"]:
            shard = self.shards[shard_state["shard_id"]]
            shard.records = shard_state["records"]
            shard.batches = shard_state["batches"]
            shard.degraded = shard_state["degraded"]
            shard.records_lost = shard_state["records_lost"]
            shard.table.load_state(shard_state["table"])

    def _check_open(self) -> None:
        """Writes into a closed collector must fail like the parallel
        front door's do -- silently accepting records after close()
        would hide a lifecycle bug a process-backed deployment turns
        into data loss."""
        if self._closed:
            raise CollectorClosedError(
                "collector is closed; ingest before close(), not after"
            )

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def drain(self) -> None:
        """Wait until every ingested record is applied (no-op here).

        The single-process collector applies records synchronously, so
        there is nothing to wait for; the method exists so callers can
        treat :class:`Collector` and :class:`repro.collector.parallel.
        ParallelCollector` interchangeably.
        """

    def close(self) -> None:
        """Mark the collector closed (idempotent).

        There are no processes to stop here, but the lifecycle
        contract is shared with :class:`~repro.collector.parallel.
        ParallelCollector`: after ``close()``, :meth:`ingest` and
        :meth:`ingest_batch` raise :class:`~repro.exceptions.
        CollectorClosedError` on both implementations.  Reads
        (:meth:`flow`, :meth:`snapshot`, ...) stay valid on the serial
        collector -- its state lives in this process, not in workers
        that close() tore down -- which is the one deliberate
        asymmetry (a parallel collector's state is *gone*, so its
        reads raise too; see DESIGN.md section 5).
        """
        self._closed = True

    def __enter__(self) -> "Collector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Columnar batch-decode engine: the sink's vectorised hot path.

PR 1 made ingest *routing* columnar (one vectorised shard hash, one
lexsort) and PR 2 made the *encode* dataplane columnar, but every
digest still crossed a scalar ``observe()`` per packet on its way into
the per-flow decoders -- exactly where the paper concentrates the
sink's decoding cost (§4).  This module is the execution layer that
closes that gap: it takes the lexsort-grouped ``(flow_id, pid,
hop_count, digest)`` column slices that :meth:`Collector.ingest_batch`
already produces and decodes whole flow groups at once.

Layering contract (see DESIGN.md §4):

* the *scalar reference decoders* (``repro.coding`` peeling decoders,
  per-sample KLL updates) define the semantics and keep serving the
  one-record ``Collector.ingest`` path;
* this *columnar execution layer* replays the same ``GlobalHash``
  decisions in array passes (layer selection, reservoir carriers, XOR
  acting sets, fragment scatter) and dispatches
  ``observe_batch`` / ``extend_array`` / ``decode_array``;
* equivalence tests pin the two layers together: path decode is
  bit-identical record-for-record (including ``DecodingError`` resets
  mid-column), latency decode is sample-identical in raw mode and
  guarantee-identical in sketch mode (the KLL compaction coin order
  differs -- see :meth:`KLLSketch.extend_array`).
"""

from __future__ import annotations

import numpy as np

from repro.coding.encoder import unpack_reps_array
from repro.exceptions import DecodingError
from repro.hashing import GlobalHash, reservoir_carrier_zip


class CarrierCache:
    """Whole-batch reservoir-carrier replay, shared across flow groups.

    The carrier hop depends only on the packet id, the hop count and
    the query's reservoir hash -- never on the flow -- so one
    vectorised replay over the *batch* columns serves every flow group
    the batch fans out into, instead of paying ``O(hops)`` small array
    passes per group.  ``ingest_batch`` hands every group the same
    column objects with different bounds, which is what the cache keys
    on; it holds the keyed columns alive so a recycled object id
    cannot alias the next batch.

    Contract: callers must key on columns that are *immutable once
    ingested* -- ``ingest_batch`` satisfies this by construction (its
    lexsort fancy-indexing materialises fresh arrays every batch).
    The cache is deliberately not used by the public whole-column
    entry points, whose callers may legitimately refill one buffer in
    place between calls.
    """

    def __init__(self, g: GlobalHash) -> None:
        self.g = g
        self._pids = None
        self._hops = None
        self._carriers = None

    def carriers(self, pids: np.ndarray, hops: np.ndarray) -> np.ndarray:
        """Carrier hops for the whole column pair (cached per batch)."""
        if pids is not self._pids or hops is not self._hops:
            self._pids = pids
            self._hops = hops
            self._carriers = reservoir_carrier_zip(self.g, pids, hops)
        return self._carriers


def decode_path_columns(consumer, pids, hop_counts, digests) -> None:
    """Feed one flow's column slice through its peeling decoder.

    Bit-identical to the scalar per-record loop, including reset
    semantics: a digest that contradicts the candidate sets makes the
    decoder raise :class:`DecodingError` with the offending row in
    ``batch_pos``; the consumer's error counter bumps, the decoder is
    rebuilt from the *next* row's hop count, and decoding resumes
    behind the conflict -- the same re-convergence a reroute triggers
    on the scalar path.
    """
    pids = np.asarray(pids)
    hops = np.asarray(hop_counts)
    digs = np.asarray(digests)
    n = int(pids.shape[0])
    if n == 0:
        return
    reps = unpack_reps_array(digs, consumer.digest_bits, consumer.num_hashes)
    start = 0
    while start < n:
        if consumer._decoder is None:
            consumer._ensure_decoder(int(hops[start]))
        try:
            consumer._decoder.observe_batch(pids[start:], reps[start:])
            return
        except DecodingError as err:
            consumer.decode_errors += 1
            consumer._decoder = None
            start += getattr(err, "batch_pos", 0) + 1


def decode_latency_slice(
    consumer, pids, hop_counts, digests, lo: int, hi: int,
    carriers=None,
) -> None:
    """Attribute and store rows ``[lo, hi)`` of a latency column.

    Carrier hops come from the consumer's :class:`CarrierCache` -- one
    vectorised reservoir replay over the *whole batch*, shared by
    every flow group (and, through the factory, by every flow) -- then
    one table gather decodes the slice's digests and each carrier's
    samples land in its store via a single ``add_array``.  Store
    creation mirrors the scalar path: the first record (in column
    order) that hits a carrier sizes its sketch from *that* record's
    hop count.  ``carriers`` accepts a pre-sliced carrier column for
    callers that must not touch the cache.
    """
    n = hi - lo
    if n <= 0:
        return
    if n == 1:
        # One row: the scalar path is cheaper than the array passes.
        consumer.consume(int(pids[lo]), int(hop_counts[lo]), int(digests[lo]))
        return
    if carriers is None:
        carriers = consumer._carrier_cache.carriers(pids, hop_counts)[lo:hi]
    values = consumer.compressor.decode_array(digests[lo:hi])
    hops = hop_counts[lo:hi]
    for carrier in np.unique(carriers).tolist():
        lane = carriers == carrier
        first = int(np.argmax(lane))
        store = consumer._store_for(int(carrier), int(hops[first]))
        store.add_array(values[lane])


def decode_latency_columns(consumer, pids, hop_counts, digests) -> None:
    """Attribute and store one flow's latency column (whole-column form).

    The standalone entry point behind ``consume_batch``.  Computes the
    carrier column directly instead of going through the
    :class:`CarrierCache`: external callers may refill the same buffer
    objects between calls, which an identity-keyed cache would wrongly
    treat as a hit.
    """
    pids = np.asarray(pids)
    hops = np.asarray(hop_counts, dtype=np.int64)
    digs = np.asarray(digests, dtype=np.int64)
    n = int(pids.shape[0])
    if n == 0:
        return
    carriers = reservoir_carrier_zip(consumer.g, pids, hops) if n > 1 else None
    decode_latency_slice(consumer, pids, hops, digs, 0, n, carriers)

"""Per-shard flow state: LRU/TTL-bounded table of digest consumers.

A production sink cannot keep state for every flow it ever saw; the
paper's storage argument (O(1) digests per packet, bounded per-flow
state) only pays off if the collector also *bounds the number of live
flows*.  The table enforces two orthogonal limits:

* ``max_flows`` -- hard capacity; inserting past it evicts the least
  recently touched flow (LRU, via ``OrderedDict`` move-to-end);
* ``ttl`` -- idle expiry; a periodic sweep evicts flows whose last
  record is older than ``ttl`` on the caller's clock (sim seconds when
  driven from the DES, ingested-record count when free-running).

Evicted state is simply dropped: PINT's decoders are rebuildable from
future packets of the same flow (every packet re-selects its layer and
carrier by global hash), so eviction costs extra packets, not
correctness -- the same trade BASEL makes between buffer occupancy and
admission (PAPERS.md).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.collector.consumers import ConsumerFactory, DigestConsumer


class FlowEntry:
    """One live flow: its consumer plus bookkeeping."""

    __slots__ = ("flow_id", "consumer", "last_seen", "records", "generation")

    def __init__(
        self, flow_id: int, consumer: DigestConsumer, now: float, generation: int
    ) -> None:
        self.flow_id = flow_id
        self.consumer = consumer
        self.last_seen = now
        self.records = 0
        #: Table-wide creation sequence number: a re-created entry
        #: (post-eviction) always carries a higher generation than its
        #: predecessor, letting tests assert clean re-init without the
        #: table remembering every flow_id it ever saw.
        self.generation = generation


class FlowTable:
    """LRU/TTL-bounded mapping of flow_id -> :class:`FlowEntry`."""

    def __init__(
        self,
        consumer_factory: ConsumerFactory,
        max_flows: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        if max_flows is not None and max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.consumer_factory = consumer_factory
        self.max_flows = max_flows
        self.ttl = ttl
        self._entries: "OrderedDict[int, FlowEntry]" = OrderedDict()
        # Counters surfaced in snapshots.
        self.created = 0
        self.lru_evictions = 0
        self.ttl_evictions = 0
        self._last_sweep = float("-inf")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._entries

    def get(self, flow_id: int) -> Optional[FlowEntry]:
        """Look up a flow without touching LRU order."""
        return self._entries.get(flow_id)

    def touch(self, flow_id: int, now: float) -> FlowEntry:
        """Fetch-or-create the flow's entry and mark it most recent."""
        entry = self._entries.get(flow_id)
        if entry is not None:
            entry.last_seen = now
            self._entries.move_to_end(flow_id)
            return entry
        self.created += 1
        entry = FlowEntry(
            flow_id, self.consumer_factory(flow_id), now, self.created
        )
        self._entries[flow_id] = entry
        if self.max_flows is not None:
            while len(self._entries) > self.max_flows:
                self._entries.popitem(last=False)
                self.lru_evictions += 1
        return entry

    def evict(self, flow_id: int) -> bool:
        """Drop one flow's state explicitly (e.g. on flow FIN)."""
        return self._entries.pop(flow_id, None) is not None

    def expire(self, now: float) -> int:
        """Sweep out flows idle for longer than ``ttl``; return count."""
        if self.ttl is None:
            return 0
        deadline = now - self.ttl
        evicted = 0
        # Entries are LRU-ordered, so expiry stops at the first keeper.
        while self._entries:
            flow_id, entry = next(iter(self._entries.items()))
            if entry.last_seen > deadline:
                break
            del self._entries[flow_id]
            evicted += 1
        self.ttl_evictions += evicted
        return evicted

    def maybe_expire(self, now: float) -> int:
        """Amortised expiry: sweep at most every ``ttl / 4`` clock units."""
        if self.ttl is None:
            return 0
        if now - self._last_sweep < self.ttl / 4.0:
            return 0
        self._last_sweep = now
        return self.expire(now)

    # -- accounting --------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, FlowEntry]]:
        """Iterate (flow_id, entry), LRU-oldest first."""
        return iter(self._entries.items())

    def completed_flows(self) -> int:
        """Flows whose consumer currently has a decodable answer."""
        return sum(
            1 for e in self._entries.values() if e.consumer.is_complete
        )

    def coverage_sum(self) -> float:
        """Sum of per-flow decode coverage over live flows.

        The snapshot-side decode-under-loss aggregate: dividing by the
        flow count gives the mean fraction of each flow's answer the
        sink knows.  Summed in LRU order, which is the same on every
        record-identical replay, so parallel workers reproduce the
        serial sum bit-for-bit.
        """
        return float(
            sum(e.consumer.coverage for e in self._entries.values())
        )

    def state_bytes(self) -> int:
        """Estimated resident bytes across all live consumers.

        Each consumer reports its own footprint, and the decoders
        report theirs (``HashDecoder``/``RawDecoder``/
        ``FragmentDecoder.state_bytes``), so the total covers the
        array-backed decode state -- candidate matrices, the decoded-
        value arrays the batched consistency scans cache, pending XOR
        entries -- not just the scalar dict/list state.  The estimate
        is a sum of non-negative terms over live entries only, so it
        shrinks with eviction and can never go negative (tested
        invariant).

        The table's own overhead is a *content-based* estimate (base
        plus a per-entry slot cost), never ``sys.getsizeof`` of the
        dict: a dict's allocated size depends on its insertion/
        deletion history, and a checkpoint-restored table -- same
        entries, fresh dict -- must report byte-identical snapshots
        (the ``restore(checkpoint(c)) == c`` property).
        """
        per_entry = 96  # dict slot + FlowEntry slots, roughly
        table_overhead = 64 + 8 * len(self._entries)
        return sum(
            e.consumer.state_bytes() + per_entry
            for e in self._entries.values()
        ) + table_overhead

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> dict:
        """Everything needed to rebuild this table bit-for-bit.

        Entries are captured in LRU order (oldest first) with their
        generations, so a restored table evicts the same victims in
        the same order and re-creates entries with the same sequence
        numbers a never-crashed table would have used.
        """
        return {
            "created": self.created,
            "lru_evictions": self.lru_evictions,
            "ttl_evictions": self.ttl_evictions,
            "last_sweep": self._last_sweep,
            "entries": [
                (fid, e.consumer, e.last_seen, e.records, e.generation)
                for fid, e in self._entries.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Install a :meth:`state_dict` capture, replacing live state.

        Counters are restored verbatim (``created`` keeps generation
        numbering continuous across the restart) and entries are
        reinserted in captured LRU order into a fresh dict.
        """
        self._entries = OrderedDict()
        for fid, consumer, last_seen, records, generation in state["entries"]:
            entry = FlowEntry(fid, consumer, last_seen, generation)
            entry.records = records
            self._entries[fid] = entry
        self.created = state["created"]
        self.lru_evictions = state["lru_evictions"]
        self.ttl_evictions = state["ttl_evictions"]
        self._last_sweep = state["last_sweep"]

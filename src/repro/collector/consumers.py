"""Per-flow digest consumers: the collector-side Recording/Inference glue.

A :class:`DigestConsumer` owns the decoding state for one flow under one
query and is fed digests incrementally as the collector ingests packets.
Each concrete consumer wraps an existing decoder stack so the collector
adds the *service* layer (sharding, eviction, batching) without forking
any decoding logic:

* :class:`PathDigestConsumer` -- incremental path decoding via
  :class:`repro.coding.HashDecoder` (the §4.2 peeling decoder);
* :class:`LatencyDigestConsumer` -- per-hop latency samples attributed by
  the reservoir-carrier hash, stored in :class:`repro.sketch.KLLSketch`;
* :class:`CongestionDigestConsumer` -- running bottleneck (max) link
  utilisation via :class:`repro.apps.congestion.UtilizationCodec`.

Consumers expose ``consume_batch`` so shards can hand over a whole
per-flow column slice at once.  The default implementation loops over
:meth:`consume` (the scalar reference path, still serving the
one-record ``Collector.ingest`` fallback); every concrete consumer
overrides it with a columnar path -- path and latency decode through
the :mod:`repro.collector.batchdecode` engine, congestion through a
single vectorised ``max`` -- so batched ingestion is array passes end
to end.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.apps.congestion import UtilizationCodec
from repro.apps.latency import HopLatencyStore, LatencyCompressor
from repro.coding import (
    CodingScheme,
    FragmentDecoder,
    HashDecoder,
    RawDecoder,
    multilayer_scheme,
    unpack_reps,
)
from repro.collector.batchdecode import (
    CarrierCache,
    decode_latency_columns,
    decode_latency_slice,
    decode_path_columns,
)
from repro.exceptions import DecodingError
from repro.hashing import GlobalHash, reservoir_carrier

#: A factory the flow table calls to build one consumer per live flow.
ConsumerFactory = Callable[[int], "DigestConsumer"]


class DigestConsumer:
    """Base class: per-flow decoding state fed one digest at a time."""

    #: Human-readable query kind, surfaced in snapshots.
    kind = "abstract"

    def consume(self, pid: int, hop_count: int, digest: int) -> None:
        """Fold one packet's digest into the flow state."""
        raise NotImplementedError

    def consume_batch(
        self,
        pids: Sequence[int],
        hop_counts: Sequence[int],
        digests: Sequence[int],
    ) -> None:
        """Fold a column slice of records (default: scalar loop)."""
        for pid, hops, digest in zip(pids, hop_counts, digests):
            self.consume(int(pid), int(hops), int(digest))

    def consume_slice(
        self,
        pids: np.ndarray,
        hop_counts: np.ndarray,
        digests: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Fold rows ``[lo, hi)`` of whole batch columns.

        The batched hot path: consumers that only read some columns
        override this to skip slicing the rest (slice views cost real
        time when a batch fans out into thousands of groups).
        """
        self.consume_batch(pids[lo:hi], hop_counts[lo:hi], digests[lo:hi])

    @property
    def is_complete(self) -> bool:
        """True when the flow's query has a decodable answer."""
        return False

    @property
    def coverage(self) -> float:
        """How much of the flow's answer is known, in [0, 1].

        The decode-under-loss metric: impaired streams leave flows
        partially decoded, and snapshots/reports aggregate this per
        flow (see ``Snapshot.mean_coverage``).  Consumers whose answer
        is all-or-nothing report 1.0 once complete.
        """
        return 1.0 if self.is_complete else 0.0

    def result(self):
        """The query answer so far (None while undecodable)."""
        return None

    def state_bytes(self) -> int:
        """Rough resident-state estimate (snapshot memory accounting)."""
        return sys.getsizeof(self)


class PathDigestConsumer(DigestConsumer):
    """Incremental per-flow path decoding (paper §4.2 peeling).

    The decoder is built lazily from the first record's ``hop_count``
    (the sink learns the path length from the packet itself), so one
    factory serves flows of any length: by default the coding scheme
    is likewise derived per flow from that hop count, matching
    encoders tuned to each flow's actual path.  Pass ``d`` to pin the
    scheme to a typical diameter (the :class:`PathTracer` harness
    convention) or ``scheme`` to pin it outright -- the scheme must
    match the flow's encoder or nothing decodes.  ``mode`` selects the
    digest representation the flow's encoders used: ``"hash"`` (the
    default) peels with a :class:`HashDecoder` over ``universe``,
    ``"raw"`` with a :class:`RawDecoder`, ``"fragment"`` with a
    :class:`FragmentDecoder` whose fragment count derives from
    ``value_bits`` (universe-wide width by default -- pass the same
    value the encoders fragmented against).  A digest that contradicts
    the candidate sets -- a reroute mid-flow, or state that was
    evicted and re-created against a stale path -- raises
    :class:`DecodingError` inside the decoder; the consumer counts it
    and resets, so the flow re-converges on the new path instead of
    wedging the shard.

    Decode-under-loss contract: gaps in the packet stream only slow
    convergence (every packet re-draws its role by hash) and
    duplicates only re-confirm, so at any point the consumer exposes a
    well-defined partial answer -- :attr:`coverage` (fraction of hops
    known) and :meth:`partial_path` (known hops, None elsewhere).
    """

    kind = "path"

    def __init__(
        self,
        universe: Sequence[int],
        digest_bits: int = 8,
        num_hashes: int = 1,
        seed: int = 0,
        scheme: Optional[CodingScheme] = None,
        d: Optional[int] = None,
        adjacency=None,
        mode: str = "hash",
        value_bits: Optional[int] = None,
    ) -> None:
        if mode not in ("raw", "hash", "fragment"):
            raise ValueError(
                f"mode must be 'raw', 'hash' or 'fragment', got {mode!r}"
            )
        if mode != "hash" and num_hashes != 1:
            raise ValueError("multiple hash instantiations need hash mode")
        self.universe = tuple(universe)
        self.digest_bits = digest_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self.mode = mode
        # Fragment layout width: the universe-wide block width unless
        # the caller pins it (must match the encoders' value_bits).
        if value_bits is None and self.universe:
            value_bits = max(1, max(self.universe).bit_length())
        if mode == "fragment" and value_bits is None:
            raise ValueError(
                "fragment mode needs value_bits (or a non-empty "
                "universe to derive it from)"
            )
        self.value_bits = value_bits
        # Scheme resolution: explicit scheme > tuned-for-d scheme >
        # (default) per-flow scheme derived from the observed hop
        # count, for sinks whose encoders tune to each flow's length.
        if scheme is not None:
            self.scheme: Optional[CodingScheme] = scheme
        elif d is not None:
            self.scheme = multilayer_scheme(d)
        else:
            self.scheme = None
        self.adjacency = adjacency
        self.decode_errors = 0
        self._decoder: Optional[HashDecoder] = None

    def _unpack(self, digest: int) -> tuple:
        return unpack_reps(digest, self.digest_bits, self.num_hashes)

    def _ensure_decoder(self, hop_count: int):
        """Build the flow's mode-matching decoder from a hop count."""
        if self._decoder is None:
            scheme = (
                self.scheme
                if self.scheme is not None
                else multilayer_scheme(hop_count)
            )
            if self.mode == "raw":
                self._decoder = RawDecoder(
                    hop_count, scheme, self.digest_bits, self.seed
                )
            elif self.mode == "fragment":
                self._decoder = FragmentDecoder(
                    hop_count, self.value_bits, scheme,
                    self.digest_bits, self.seed,
                )
            else:
                self._decoder = HashDecoder(
                    hop_count,
                    self.universe,
                    scheme,
                    self.digest_bits,
                    self.num_hashes,
                    self.seed,
                    adjacency=self.adjacency,
                )
        return self._decoder

    def consume(self, pid: int, hop_count: int, digest: int) -> None:
        """Feed one digest to the flow's peeling decoder."""
        self._ensure_decoder(hop_count)
        try:
            self._decoder.observe(pid, self._unpack(digest))
        except DecodingError:
            self.decode_errors += 1
            self._decoder = None

    def consume_batch(
        self,
        pids: Sequence[int],
        hop_counts: Sequence[int],
        digests: Sequence[int],
    ) -> None:
        """Columnar decode of a whole flow-group slice.

        Dispatches to the batch-decode engine
        (:func:`repro.collector.batchdecode.decode_path_columns`),
        which is bit-identical to the scalar loop including
        ``DecodingError`` resets.  Slices too small to amortise the
        array passes take the scalar reference loop -- the two paths
        produce the same state, so the cutoff is purely a speed knob.
        """
        if len(pids) <= 4:
            super().consume_batch(pids, hop_counts, digests)
            return
        decode_path_columns(self, pids, hop_counts, digests)

    @property
    def is_complete(self) -> bool:
        """True once every hop has a unique candidate."""
        return self._decoder is not None and self._decoder.is_complete

    @property
    def progress(self) -> tuple:
        """(decoded hops, total hops) so far."""
        if self._decoder is None:
            return (0, 0)
        return (self._decoder.k - self._decoder.missing, self._decoder.k)

    @property
    def coverage(self) -> float:
        """Fraction of the flow's hops with a *reportable* value.

        Counted from ``known_blocks()`` so it always agrees with
        :meth:`partial_path`: in fragment mode a hop counts only once
        every fragment is decoded (``FragmentDecoder.missing`` rounds
        partially-fragmented hops optimistically, which would overstate
        what the sink can actually answer).  0.0 before the first
        record (no decoder, no path length); a flow whose packets were
        all dropped by the network never grows past that, which is
        exactly the degradation the impairment sweeps chart.
        """
        if self._decoder is None:
            return 0.0
        return len(self._decoder.known_blocks()) / self._decoder.k

    def partial_path(self) -> Optional[List[Optional[int]]]:
        """Known hops in order, None where still undecoded.

        None (not a list) before the first record: without a hop count
        the consumer does not yet know the path length.
        """
        if self._decoder is None:
            return None
        known = self._decoder.known_blocks()
        return [known.get(h) for h in range(1, self._decoder.k + 1)]

    def result(self) -> Optional[List[int]]:
        """The decoded switch path, or None while incomplete."""
        if not self.is_complete:
            return None
        return self._decoder.path()

    def state_bytes(self) -> int:
        """Candidate arrays dominate the decoder's footprint."""
        if self._decoder is None:
            return sys.getsizeof(self)
        return sys.getsizeof(self) + self._decoder.state_bytes()


class LatencyDigestConsumer(DigestConsumer):
    """Per-hop latency quantiles from reservoir-sampled digests (§6.2).

    Recomputes the reservoir-carrier hash to attribute each digest to
    its hop and feeds a per-hop KLL sketch (or raw list when
    ``sketch_size`` is None), mirroring
    :class:`repro.apps.latency.LatencyRuntime` flow-locally.
    """

    kind = "latency"

    def __init__(
        self,
        bits: int = 8,
        seed: int = 0,
        sketch_size: Optional[int] = None,
        max_latency_s: float = 4.0,
        carrier_cache: Optional[CarrierCache] = None,
    ) -> None:
        self.compressor = LatencyCompressor(bits, max_latency_s, seed)
        self.g = GlobalHash(seed, "latency-reservoir")
        self.sketch_size = sketch_size
        self._stores: Dict[int, HopLatencyStore] = {}
        # The carrier hash is flow-independent, so the factory shares
        # one batch-level cache across every flow's consumer; a
        # standalone consumer gets a private one.
        self._carrier_cache = (
            carrier_cache if carrier_cache is not None
            else CarrierCache(self.g)
        )

    def _store_for(self, carrier: int, hop_count: int) -> HopLatencyStore:
        """Fetch-or-create the carrier hop's store.

        A new store's sketch budget is sized from the hop count of the
        record that creates it (the per-flow space budget split of
        §4.1), on the scalar and batch paths alike.
        """
        store = self._stores.get(carrier)
        if store is None:
            per_hop = None
            if self.sketch_size:
                per_hop = max(4, self.sketch_size // max(1, hop_count))
            store = HopLatencyStore(per_hop)
            self._stores[carrier] = store
        return store

    def consume(self, pid: int, hop_count: int, digest: int) -> None:
        """Attribute the sample to its carrier hop and record it."""
        carrier = reservoir_carrier(self.g, pid, hop_count)
        store = self._store_for(carrier, hop_count)
        store.add(self.compressor.decode(digest))

    def consume_batch(
        self,
        pids: Sequence[int],
        hop_counts: Sequence[int],
        digests: Sequence[int],
    ) -> None:
        """Columnar attribution and storage of a flow-group slice.

        Dispatches to the batch-decode engine
        (:func:`repro.collector.batchdecode.decode_latency_columns`):
        vectorised carrier replay, table-gather digest decode, one
        ``add_array`` per carrier.  Sample-identical to the scalar loop
        in raw-list mode; sketch mode differs only in the KLL
        compaction coin order (same guarantees).
        """
        decode_latency_columns(self, pids, hop_counts, digests)

    def consume_slice(
        self,
        pids: np.ndarray,
        hop_counts: np.ndarray,
        digests: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Batched hot path over whole batch columns.

        Receiving the un-sliced columns lets the shared
        :class:`CarrierCache` replay the reservoir hash once per
        *batch* instead of once per flow group -- the carrier depends
        only on (pid, hop count), so every group reads from the same
        cached column.
        """
        decode_latency_slice(self, pids, hop_counts, digests, lo, hi)

    @property
    def is_complete(self) -> bool:
        """A latency stream is answerable once any hop has samples."""
        return bool(self._stores)

    def quantile(self, hop: int, phi: float) -> float:
        """Estimated phi-quantile of this flow's latency at ``hop``.

        Raises a descriptive ``KeyError`` when the reservoir carrier
        never attributed a sample to ``hop`` (short flows routinely
        miss hops); probe with :meth:`samples_at` first.
        """
        store = self._stores.get(hop)
        if store is None:
            raise KeyError(
                f"hop {hop}: no samples attributed yet "
                f"(samples_at({hop}) == 0)"
            )
        return store.quantile(phi)

    def samples_at(self, hop: int) -> int:
        """Samples attributed to ``hop`` so far."""
        store = self._stores.get(hop)
        return store.count if store else 0

    def result(self) -> Dict[int, int]:
        """Per-hop sample counts (the cheap always-available answer)."""
        return {hop: s.count for hop, s in sorted(self._stores.items())}

    def state_bytes(self) -> int:
        """Stored digests across hops, at 8 bytes apiece."""
        items = sum(s.stored_items() for s in self._stores.values())
        return sys.getsizeof(self) + 8 * items + 64 * len(self._stores)


class CongestionDigestConsumer(DigestConsumer):
    """Running bottleneck-utilisation aggregation (§4.3 Example #3).

    The multiplicative code is monotone in the value, so the max over
    codes equals the code of the max -- aggregation is a compare on the
    *encoded* digests and one decode at query time, which is also why
    ``consume_batch`` is a single vectorised ``max``.
    """

    kind = "congestion"

    def __init__(
        self,
        bits: int = 8,
        epsilon: float = 0.025,
        seed: int = 0,
        codec: Optional[UtilizationCodec] = None,
    ) -> None:
        self.codec = codec if codec is not None else UtilizationCodec(
            bits, epsilon, seed=seed
        )
        self.max_code = -1
        self.last_code = -1
        self.records = 0

    def consume(self, pid: int, hop_count: int, digest: int) -> None:
        """Keep the running max of the encoded utilisation."""
        self.records += 1
        self.last_code = digest
        if digest > self.max_code:
            self.max_code = digest

    def consume_batch(
        self,
        pids: Sequence[int],
        hop_counts: Sequence[int],
        digests: Sequence[int],
    ) -> None:
        """Vectorised fold over a whole column slice."""
        n = len(digests)
        if n == 0:
            return
        digs = np.asarray(digests)
        self.consume_slice(pids, hop_counts, digs, 0, n)

    def consume_slice(
        self,
        pids: np.ndarray,
        hop_counts: np.ndarray,
        digests: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Group fold touching only the digest column.

        NumPy reductions carry ~microseconds of fixed dispatch cost, so
        small slices (the common case when a batch spans many flows)
        take a plain-Python ``max`` over ``tolist()`` instead.
        """
        n = hi - lo
        self.records += n
        if n > 64:
            digs = digests[lo:hi]
            self.last_code = int(digs[-1])
            top = int(digs.max())
        else:
            lst = digests[lo:hi].tolist()
            self.last_code = lst[-1]
            top = max(lst)
        if top > self.max_code:
            self.max_code = top

    @property
    def is_complete(self) -> bool:
        """Answerable as soon as one digest arrived."""
        return self.records > 0

    def bottleneck(self) -> Optional[float]:
        """Decoded max path utilisation seen so far."""
        if self.max_code < 0:
            return None
        return self.codec.decode(self.max_code)

    def latest(self) -> Optional[float]:
        """Decoded most-recent digest (the per-ACK HPCC feedback)."""
        if self.last_code < 0:
            return None
        return self.codec.decode(self.last_code)

    def result(self) -> Optional[float]:
        """The bottleneck utilisation (None before any record)."""
        return self.bottleneck()

    def state_bytes(self) -> int:
        """Constant-size state: two codes and a counter."""
        return sys.getsizeof(self)


def path_consumer_factory(universe: Sequence[int], **kwargs) -> ConsumerFactory:
    """Factory of :class:`PathDigestConsumer`, one per flow."""
    return lambda flow_id: PathDigestConsumer(universe, **kwargs)


def latency_consumer_factory(**kwargs) -> ConsumerFactory:
    """Factory of :class:`LatencyDigestConsumer`, one per flow.

    All flows share one :class:`CarrierCache`: the reservoir-carrier
    hash is keyed on (pid, hop count) only, so a batch's carrier
    column is computed once and read by every flow group in it.
    """
    cache = CarrierCache(
        GlobalHash(kwargs.get("seed", 0), "latency-reservoir")
    )
    return lambda flow_id: LatencyDigestConsumer(
        carrier_cache=cache, **kwargs
    )


def congestion_consumer_factory(**kwargs) -> ConsumerFactory:
    """Factory of :class:`CongestionDigestConsumer`, sharing one codec."""
    codec = UtilizationCodec(
        kwargs.pop("bits", 8), kwargs.pop("epsilon", 0.025),
        seed=kwargs.pop("seed", 0), **kwargs,
    )
    return lambda flow_id: CongestionDigestConsumer(codec=codec)

"""Hash-sharded partitioning of flow state.

A :class:`ShardRouter` maps ``flow_id -> shard`` with a keyed global
hash, so the mapping is stable across processes and restarts (the same
property the switches rely on for implicit coordination, §4.1).  Every
flow's entire record stream lands on one :class:`Shard`, which owns a
private :class:`FlowTable` -- shards share nothing, so a deployment can
pin them to worker threads/processes and scale to millions of flows
with O(1) lookups per shard.

The router's scalar and vectorised paths agree bit-for-bit (they reuse
:class:`repro.hashing.GlobalHash`'s paired APIs), so a record routed
one-at-a-time and the same record inside a columnar batch always reach
the same shard.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collector.consumers import ConsumerFactory
from repro.collector.flowtable import FlowEntry, FlowTable
from repro.collector.snapshot import ShardStats
from repro.hashing import GlobalHash


class ShardRouter:
    """Stable flow_id -> shard index mapping via a keyed hash."""

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._hash = GlobalHash(seed, "collector-shard")

    def shard_of(self, flow_id: int) -> int:
        """Shard index for one flow."""
        return self._hash.choice(self.num_shards, flow_id)

    def shard_of_array(self, flow_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of`, lane-for-lane identical."""
        return self._hash.choice_array(self.num_shards, np.asarray(flow_ids))


class Shard:
    """One share-nothing partition: a flow table plus ingest counters."""

    def __init__(
        self,
        shard_id: int,
        consumer_factory: ConsumerFactory,
        max_flows: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        self.shard_id = shard_id
        self.table = FlowTable(consumer_factory, max_flows=max_flows, ttl=ttl)
        self.records = 0
        #: ingest_batch calls that touched this shard (records/batches
        #: is the snapshot's amortisation metric; the front door bumps
        #: this once per batch, not once per flow group).
        self.batches = 0
        #: Set by the supervisor when recovery could not replay every
        #: lost message for this shard (journal window exceeded): the
        #: shard keeps serving, but its answers may undercount by
        #: ``records_lost`` records.  Sticky until the process ends --
        #: degradation is a fact about the data, not a transient.
        self.degraded = False
        self.records_lost = 0

    def mark_degraded(self, records_lost: int) -> None:
        """Record unreplayable loss against this shard."""
        self.degraded = True
        self.records_lost += int(records_lost)

    def ingest(
        self, flow_id: int, pid: int, hop_count: int, digest: int, now: float
    ) -> FlowEntry:
        """Fold one record into the flow's consumer."""
        entry = self.table.touch(flow_id, now)
        entry.records += 1
        entry.consumer.consume(pid, hop_count, digest)
        self.records += 1
        self.table.maybe_expire(now)
        return entry

    def ingest_group(
        self,
        flow_id: int,
        pids: np.ndarray,
        hop_counts: np.ndarray,
        digests: np.ndarray,
        now: float,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> FlowEntry:
        """Fold one flow's rows ``[lo, hi)`` of whole batch columns.

        The flow-table touch and the consumer dispatch are paid once
        per (batch, flow) instead of once per record -- the batching
        win the front door's grouping exists to unlock.  Columns are
        passed whole with bounds so consumers slice only what they
        read (see :meth:`DigestConsumer.consume_slice`).
        """
        if hi is None:
            hi = len(pids)
        entry = self.table.touch(flow_id, now)
        n = hi - lo
        entry.records += n
        entry.consumer.consume_slice(pids, hop_counts, digests, lo, hi)
        self.records += n
        return entry

    def expire(self, now: float) -> int:
        """TTL sweep of this shard's table."""
        return self.table.expire(now)

    def stats(self) -> ShardStats:
        """Counters for the metrics snapshot."""
        table = self.table
        return ShardStats(
            shard_id=self.shard_id,
            flows=len(table),
            records=self.records,
            batches=self.batches,
            created=table.created,
            lru_evictions=table.lru_evictions,
            ttl_evictions=table.ttl_evictions,
            completed_flows=table.completed_flows(),
            coverage_sum=table.coverage_sum(),
            state_bytes=table.state_bytes(),
            degraded=self.degraded,
            records_lost=self.records_lost,
        )

"""Checkpoint/restore + replay journal: the collector's crash story.

A PINT sink shard is pure deterministic fold state -- flow tables,
peeling decoders, KLL sketches, counters -- so the whole fault-
tolerance design reduces to two primitives (the Basil discipline from
PAPERS.md: keep enough replayable state that a restarted participant
reconverges to the *exact* answer):

* **checkpoint** -- a worker serialises its full collector state
  (:meth:`~repro.collector.collector.Collector.state_dict`) into a
  versioned, CRC-guarded binary blob on a configurable cadence;
* **journal** -- the parent keeps every message sent since the last
  checkpoint ACK in a bounded :class:`BatchJournal`.

``restore(checkpoint) ; replay(journal)`` then reconstructs the exact
pre-crash state: a SIGKILL mid-batch takes the partially-applied batch
with it, the restore rewinds to the checkpoint, and the replay applies
every since-checkpoint message exactly once -- exactly-once semantics
*by reconstruction*, not by dedup.  The round-trip property
``restore(checkpoint(c)) == c`` is asserted at snapshot and
per-flow-answer granularity in ``tests/test_recovery.py``.

Checkpoint wire format (version rules in DESIGN.md section 9)::

    magic  b"PCKP"   | 4 bytes
    version u16 LE   | bumped on any layout change; no silent skew
    length  u32 LE   | payload byte count (truncation detection)
    crc32   u32 LE   | zlib.crc32 of the payload (torn-write detection)
    payload          | pickled state dict (consumers included)

Decoding rejects, with typed errors, exactly the failure modes a
crash-during-write produces: short header, bad magic, version skew
(:class:`~repro.exceptions.CheckpointVersionError`), length or CRC
mismatch (:class:`~repro.exceptions.CheckpointError`).  File writes go
through a tmp-and-rename so a torn write leaves the *previous*
checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.exceptions import CheckpointError, CheckpointVersionError

#: Bump on any change to the pickled state layout.  A restore across
#: versions must fail loudly (CheckpointVersionError), never misread.
CHECKPOINT_VERSION = 1

_MAGIC = b"PCKP"
_HEADER = struct.Struct("<4sHII")  # magic, version, payload len, crc32


def encode_checkpoint(state: dict) -> bytes:
    """Serialise one state dict into the framed checkpoint format."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(
        _MAGIC, CHECKPOINT_VERSION, len(payload), zlib.crc32(payload)
    ) + payload


def validate_checkpoint(data: bytes, worker=None) -> None:
    """Header + CRC check without unpickling (cheap accept/reject).

    Raises :class:`CheckpointError` /
    :class:`CheckpointVersionError`; returns None on a valid blob.
    """
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"checkpoint truncated: {len(data)} bytes < "
            f"{_HEADER.size}-byte header", worker=worker,
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise CheckpointError(
            f"bad checkpoint magic {magic!r}", worker=worker,
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint version {version} != supported "
            f"{CHECKPOINT_VERSION}", version=version, worker=worker,
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint payload truncated: {len(payload)} bytes, "
            f"header promised {length}", worker=worker,
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(
            "checkpoint CRC mismatch (torn or corrupted write)",
            worker=worker,
        )


def decode_checkpoint(data: bytes, worker=None) -> dict:
    """Validate and unpickle one checkpoint blob."""
    validate_checkpoint(data, worker=worker)
    return pickle.loads(data[_HEADER.size:])


def write_checkpoint(path: str, data: bytes) -> None:
    """Atomic file write: tmp + fsync + rename.

    A crash mid-write leaves either the old checkpoint or the new one,
    never a torn file -- the on-disk half of the fallback-to-previous
    contract (the in-memory half is the parent keeping the last valid
    blob until a new one validates).
    """
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_checkpoint(path: str, worker=None) -> dict:
    """Read + validate + unpickle a checkpoint file."""
    with open(path, "rb") as fh:
        return decode_checkpoint(fh.read(), worker=worker)


class JournalEntry:
    """One journalled message: the raw pipe tuple plus loss accounting."""

    __slots__ = ("msg", "records", "shard_counts")

    def __init__(
        self, msg: tuple, records: int, shard_counts: Dict[int, int]
    ) -> None:
        self.msg = msg
        self.records = records
        self.shard_counts = shard_counts


class BatchJournal:
    """Bounded FIFO of messages sent since the last checkpoint ACK.

    The window arithmetic (DESIGN.md section 9): with a checkpoint
    every ``C`` messages and capacity ``J >= C``, the journal never
    evicts on the healthy path -- a checkpoint ACK clears it before it
    fills.  Eviction therefore only happens when checkpointing itself
    is failing (write dropped/corrupted, worker wedged at the sync
    point); the evicted entries' per-shard record counts accrue in
    ``dropped_by_shard`` so a later recovery can mark exactly which
    shards lost exactly how many records.  An eviction is *potential*
    loss: if the worker survives to its next valid checkpoint the
    dropped entries were long applied and the accrual is discarded.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self.entries: Deque[JournalEntry] = deque()
        self.dropped_batches = 0
        self.dropped_records = 0
        self.dropped_by_shard: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def records(self) -> int:
        """Records across the retained entries (replay volume)."""
        return sum(e.records for e in self.entries)

    def append(
        self, msg: tuple, records: int, shard_counts: Dict[int, int]
    ) -> Optional[JournalEntry]:
        """Retain one message; returns the evicted entry when full.

        The caller decides what an eviction means (degrade vs raise);
        the journal only does the bounded-FIFO accounting.
        """
        evicted: Optional[JournalEntry] = None
        if len(self.entries) >= self.capacity:
            evicted = self.entries.popleft()
            self.dropped_batches += 1
            self.dropped_records += evicted.records
            for sid, n in evicted.shard_counts.items():
                self.dropped_by_shard[sid] = (
                    self.dropped_by_shard.get(sid, 0) + n
                )
        self.entries.append(JournalEntry(msg, records, shard_counts))
        return evicted

    def clear(self) -> None:
        """Checkpoint ACK: everything retained is now covered."""
        self.entries.clear()

    def clear_dropped(self) -> None:
        """A valid checkpoint also covers previously evicted entries
        (the worker applied them before the snapshot was cut)."""
        self.dropped_batches = 0
        self.dropped_records = 0
        self.dropped_by_shard = {}

    def replay_messages(self) -> List[tuple]:
        """The retained messages, oldest first (FIFO replay order)."""
        return [e.msg for e in self.entries]


def capture_checkpoint(collector, metrics: Optional[dict] = None,
                       worker: int = 0) -> bytes:
    """Encode one collector's full state as a checkpoint blob.

    ``metrics`` (a registry dump) rides along for forensics and
    continuity -- the restore path reinstates collector state exactly
    but starts a fresh registry, so the dump is how a post-mortem
    still sees the pre-crash counters.
    """
    return encode_checkpoint({
        "worker": worker,
        "collector": collector.state_dict(),
        "metrics": metrics,
    })


def restore_collector(collector, data: bytes, worker=None) -> dict:
    """Decode a checkpoint blob and install it into ``collector``.

    Returns the decoded state dict (callers may want the ``metrics``
    sidecar).  Raises the typed checkpoint errors on a bad blob and
    :class:`~repro.exceptions.RestoreError` on a layout mismatch.
    """
    state = decode_checkpoint(data, worker=worker)
    collector.load_state(state["collector"])
    return state


__all__ = [
    "BatchJournal",
    "CHECKPOINT_VERSION",
    "JournalEntry",
    "capture_checkpoint",
    "decode_checkpoint",
    "encode_checkpoint",
    "read_checkpoint",
    "restore_collector",
    "validate_checkpoint",
    "write_checkpoint",
]

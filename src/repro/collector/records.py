"""Ingestion record shapes for the sink-side collector.

The collector's wire unit is the 4-tuple ``(flow_id, pid, hop_count,
digest)`` -- everything a PINT sink learns from one data packet: which
flow it belongs to, the packet identifier every switch hashed, how many
hops it traversed, and the digest those hops folded into it.

Two call shapes are supported:

* scalar -- one :class:`TelemetryRecord` per packet (the DES hook);
* columnar -- four parallel sequences (lists or NumPy arrays), the
  shape a batching ingestion front-end hands over.  Columnar batches
  are normalised once into ``int64`` arrays so the router and the
  per-flow grouping run vectorised.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple, Union

import numpy as np

#: Anything a columnar ingest column may arrive as.
Column = Union[Sequence[int], np.ndarray]


class TelemetryRecord(NamedTuple):
    """One sink observation: the per-packet PINT export."""

    flow_id: int
    pid: int
    hop_count: int
    digest: int


def normalize_batch(
    flow_ids: Column,
    pids: Column,
    hop_counts: Column,
    digests: Column,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Coerce a columnar batch into equal-length ``int64`` arrays.

    Raises ``ValueError`` on ragged columns -- a malformed batch must
    fail loudly at the front door, not deep inside a shard.
    """
    fids = np.asarray(flow_ids, dtype=np.int64)
    ps = np.asarray(pids, dtype=np.int64)
    hops = np.asarray(hop_counts, dtype=np.int64)
    digs = np.asarray(digests, dtype=np.int64)
    if fids.ndim != 1:
        raise ValueError(
            f"columnar batch requires 1-D columns, flow_ids has shape "
            f"{fids.shape}"
        )
    n = fids.shape[0]
    if not (ps.shape == hops.shape == digs.shape == (n,)):
        raise ValueError(
            "columnar batch requires four equal-length 1-D columns, got "
            f"shapes {fids.shape}/{ps.shape}/{hops.shape}/{digs.shape}"
        )
    return fids, ps, hops, digs

"""Multi-process sharded collector: scatter batches across CPU cores.

PINT's sink state is embarrassingly partitionable by flow -- each flow
is an independent decoding problem, and the :class:`~repro.collector.
shard.ShardRouter` already assigns every flow's whole record stream to
one share-nothing shard.  :class:`ParallelCollector` takes that
partition across *process* boundaries: N worker processes each own a
subset of the shards (round-robin, ``shard_id % workers``) and run a
private single-process :class:`~repro.collector.collector.Collector`
over them, so decode work uses every core instead of one.  This is the
same partition-for-admission trade BASEL makes explicit (PAPERS.md):
the front door spends a little routing work to buy independent,
boundable back-end state.

Data flow::

      ingest_batch(columns)                 parent process
            │ ShardRouter.shard_of_array → worker = shard % N
            ▼
      scatter: one boolean mask per worker; sub-columns written
      into the worker's shared-memory ring slot (zero-copy on the
      far side), or -- oversized / scalar -- pickled over the pipe
      behind a ring tombstone that pins their place in the stream
            ▼
      worker w: Collector.ingest_batch(sub-columns, now=t)
      (full shard layout, only owned shards ever fed)
            ▼
      queries: flow()/result() route to the owner worker (RPC);
      snapshot() merges per-worker partial Snapshots by shard_id

Equivalence: the parent ticks the same :class:`~repro.collector.
collector.IngestClock` a serial collector would and hands workers an
explicit ``now``, each worker re-runs the *same* lexsort grouping over
its sub-columns (sub-columns preserve batch order, and a flow's
records all land on one worker), and each shard sees exactly the
record stream it would have seen in-process.  Merged snapshots and
per-flow query answers are therefore bit-identical to a single-process
collector fed the same batches -- asserted across all replay scenarios
by ``benchmarks/bench_parallel_ingest.py``.

Transport (``transport=``): the default ``"shm"`` carries batches in
per-worker :class:`~repro.collector.shm.ShmRing` shared-memory rings
-- one vectorised column copy parent-side, zero-copy ``np.ndarray``
views worker-side -- with the duplex pipe kept for sync RPCs and as
the slow path for batches larger than a ring slot (each pipe data
message is pinned into the stream by a ring tombstone, so the ring
stays the single ordering spine and drain/FIFO semantics survive the
split transport).  ``transport="pipe"`` keeps the original
pickled-ndarray pipe data plane byte-for-byte.  Workers are spawned
with the ``fork`` start method by default so consumer factories may be
closures (the idiom throughout :mod:`repro.collector.consumers`); pass
``start_method="spawn"`` with a picklable factory where fork is
unavailable.

Lifecycle: ``start()`` (or the first ingest) spawns workers;
``drain()`` barriers until every sent batch is applied; ``close()``
stops and joins the workers.  The class is also a context manager.

Supervision (``checkpoint_every=``): the parent stops *trusting*
workers and starts *supervising* them.  Every worker serialises its
full collector state into a versioned checkpoint blob on a message
cadence (:mod:`repro.collector.recovery`); the parent journals every
message sent since the last accepted checkpoint in a bounded
:class:`~repro.collector.recovery.BatchJournal`.  A worker death --
detected by sentinel poll during any sync RPC, by broken pipe on a
batch send, or proactively at the next ingest -- is then survivable:
fork a replacement, restore the checkpoint, replay the journal,
resume.  A SIGKILL mid-batch takes the partially-applied batch with
it and the restore rewinds past it, so every message lands exactly
once *by reconstruction* and the merged snapshot stays bit-identical
to a fault-free run.  Only when the journal window was exceeded
(checkpointing itself kept failing) does recovery degrade: the
affected shards are marked ``degraded`` with records-lost accounting
and the collector keeps serving.  Deterministic fault injection rides
on :class:`repro.faults.FaultPlan`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from typing import Dict, List, Optional

import numpy as np

from repro.collector.collector import Collector, IngestClock
from repro.collector.consumers import ConsumerFactory, DigestConsumer
from repro.collector.records import Column, normalize_batch
from repro.collector.recovery import (
    BatchJournal,
    capture_checkpoint,
    restore_collector,
    validate_checkpoint,
)
from repro.collector.shard import ShardRouter
from repro.collector.shm import KIND_TOMBSTONE, PeerGoneError, ShmRing
from repro.collector.snapshot import RecoveryStats, Snapshot
from repro.exceptions import (
    CheckpointError,
    CollectorClosedError,
    JournalOverflowError,
    RecoveryError,
    WorkerFailedError,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Commands a worker understands.  Batches are fire-and-forget; every
#: other command is synchronous and gets exactly one ``("ok", value)``
#: or ``("err", message)`` reply.  Pipes are FIFO, so a sync reply
#: proves all earlier batches were applied -- that is the whole drain
#: protocol.  ``_CHECKPOINT`` replies with the worker's framed state
#: blob; ``_DEGRADE`` installs unreplayable-loss marks after a
#: journal-window overrun.
_BATCH, _INGEST, _SNAPSHOT, _FLOW, _RESULT, _LEN, _EXPIRE, _EVICT, \
    _DRAIN, _STOP, _FLOWS, _CHECKPOINT, _DEGRADE = range(13)
#: Shm-transport side channel: a fire-and-forget data message that
#: cannot ride the ring (oversized batch, scalar ingest, journal
#: replay of either) travels the pipe as ``(_SIDE, index, inner)``
#: while a tombstone slot carrying ``index`` is pushed into the ring.
#: The worker applies the inner message only when it consumes the
#: tombstone, so the ring stays the single total order over all data.
_SIDE = 13


class _WorkerDied(RuntimeError):
    """Internal: a worker stopped serving its pipe (died or wedged).

    Distinct from the ``("err", ...)`` application replies on purpose:
    an app error is the *worker telling us* something went wrong
    (state intact, not recoverable by restart), while this is the
    worker going silent -- exactly the condition checkpoint/journal
    recovery exists for.
    """


def _worker_main(
    conn,
    consumer_factory: ConsumerFactory,
    num_shards: int,
    max_flows_per_shard: Optional[int],
    ttl: Optional[float],
    seed: int,
    router: Optional[ShardRouter],
    owned: List[int],
    worker_id: int = 0,
    obs_enabled: bool = False,
    applied=None,
    obs_labels: Optional[dict] = None,
    restore: Optional[bytes] = None,
    ring_spec: Optional[tuple] = None,
) -> None:
    """One worker: a private Collector serving commands off a pipe.

    The worker builds the *full* shard layout (same router, same shard
    ids) but is only ever fed records of its ``owned`` shards, so the
    unowned tables stay empty and cost nothing.  Keeping global shard
    ids means every table operation -- lexsort grouping, LRU walk, TTL
    sweep -- runs exactly as it would in a single-process collector.

    A failure while applying a fire-and-forget batch cannot be raised
    at the sender immediately; it is parked and returned as the reply
    to the next synchronous command, so no error is ever silent past a
    ``drain()``.

    Observability: with ``obs_enabled`` the worker runs its private
    collector over a private :class:`MetricsRegistry` labelled
    ``{"worker": str(worker_id)}``; the registry dump rides back on
    every partial snapshot (live registries never cross the pipe) and
    :meth:`Snapshot.merged` folds the per-worker families.  ``applied``
    is a lock-free shared counter bumped after every fire-and-forget
    message is folded -- the parent's backlog gauge reads it without a
    barrier, which a pipe RPC could never do (the RPC reply itself
    drains the backlog it would be measuring).

    ``restore`` is a framed checkpoint blob (already CRC-validated by
    the parent): a replacement worker installs it before reading a
    single pipe message, so the journal the parent replays next lands
    on exactly the state the checkpoint captured.  A restore failure
    is deliberately fatal -- serving queries off half-installed state
    would be worse than dying again (the parent's ``max_restarts``
    bounds the retry storm).

    ``ring_spec`` attaches the worker to its shared-memory data ring
    (None keeps the pipe-only data plane).  With a ring, the worker
    folds ring slots eagerly and polls the pipe only when the ring is
    empty; a sync command first drains the entire ring backlog, which
    restores the "a sync reply proves all earlier data was applied"
    drain property across both transports (the parent sent the RPC
    *after* those pushes, and its pipe write fences the shared-memory
    stores).  A ``_SIDE`` pipe message is never applied on receipt --
    it is parked until its tombstone slot comes up in the ring, which
    is what keeps oversized-batch fallbacks ordered exactly where the
    parent scattered them.
    """
    obs = MetricsRegistry() if obs_enabled else None
    col = Collector(
        consumer_factory,
        num_shards=num_shards,
        max_flows_per_shard=max_flows_per_shard,
        ttl=ttl,
        seed=seed,
        router=router,
        obs=obs,
        obs_labels={**(obs_labels or {}), "worker": str(worker_id)},
    )
    if restore is not None:
        restore_collector(col, restore, worker=worker_id)
    owned_set = frozenset(owned)
    # Every fire-and-forget failure is parked (bounded: distinct root
    # causes matter, the ten-thousandth repeat does not) and the whole
    # batch is delivered at the next sync command, so fixing the first
    # error never hides that later batches failed differently.
    pending_errors: List[str] = []
    suppressed_errors = 0

    def pop_errors() -> Optional[str]:
        nonlocal suppressed_errors
        if not pending_errors:
            return None
        text = "\n".join(pending_errors)
        if suppressed_errors:
            text += (
                f"\n... and {suppressed_errors} further ingest "
                "failure(s) suppressed"
            )
        pending_errors.clear()
        suppressed_errors = 0
        return text

    def fold(fn, *args, now: float) -> None:
        """Apply one fire-and-forget message, parking any failure."""
        nonlocal suppressed_errors
        try:
            fn(*args, now=now)
        except Exception:
            if len(pending_errors) < 8:
                pending_errors.append(traceback.format_exc())
            else:
                suppressed_errors += 1
        finally:
            # Count attempts, not successes: the parent's sent
            # counter has no idea a batch failed, and the backlog
            # gauge must return to zero either way.
            if applied is not None:
                applied.value += 1

    def apply_data(m) -> None:
        """One pipe-borne data message (a _BATCH or _INGEST tuple)."""
        if m[0] == _BATCH:
            fold(col.ingest_batch, m[1], m[2], m[3], m[4], now=m[5])
        else:
            fold(col.ingest, m[1], m[2], m[3], m[4], now=m[5])

    ring = ShmRing.attach(*ring_spec) if ring_spec is not None else None
    #: ``_SIDE`` messages received ahead of their tombstones, by side
    #: index.  Ordering lives in the ring; the pipe only carries the
    #: payloads a slot cannot.
    pending_side: Dict[int, tuple] = {}

    def consume_slot(slot) -> bool:
        """Fold one ready ring slot; False when the parent is gone."""
        if slot.kind == KIND_TOMBSTONE:
            m = pending_side.pop(slot.side, None)
            if m is None:
                try:
                    # FIFO puts this tombstone's _SIDE message next on
                    # the pipe: every earlier side message was consumed
                    # by an earlier tombstone, and every sync RPC the
                    # parent sent after it is still queued behind it.
                    raw = conn.recv()
                except (EOFError, OSError):
                    return False
                m = raw[2]
            apply_data(m)
        else:
            fids, ps, hops, digs = slot.columns
            fold(col.ingest_batch, fids, ps, hops, digs, now=slot.t)
        ring.advance()
        return True

    def drain_ring() -> bool:
        """Fold the whole ring backlog (before any sync command)."""
        while True:
            slot = ring.peek()
            if slot is None:
                return True
            if not consume_slot(slot):
                return False

    while True:
        if ring is not None:
            slot = ring.peek()
            if slot is not None:
                if not consume_slot(slot):
                    break
                continue
            try:
                if not conn.poll(0.001):
                    continue
                msg = conn.recv()
            except (EOFError, OSError):
                break
        else:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
        op = msg[0]
        if op == _SIDE:
            # Park it: the ring decides when it applies.  (The parent
            # pushes the tombstone right after this send, but an
            # earlier ring batch may still be invisible to this
            # process; applying now could reorder the stream.)
            pending_side[msg[1]] = msg[2]
            continue
        if op == _BATCH or op == _INGEST:
            apply_data(msg)
            continue
        # Sync command: every data message the parent sent before it
        # is already published to the ring (the pipe write fences the
        # shared-memory stores), so folding the ring backlog first
        # restores the drain protocol across both transports.
        if ring is not None and not drain_ring():
            break
        if op == _STOP:
            # Parked batch failures must not die with the worker: the
            # stop reply is the last chance to surface them.
            err = pop_errors()
            if err is not None:
                conn.send(("err", err))
            else:
                conn.send(("ok", None))
            break
        try:
            err = pop_errors()
            if err is not None:
                raise WorkerFailedError(
                    f"deferred ingest failure(s) in worker:\n{err}"
                )
            if op == _SNAPSHOT:
                reply = Snapshot(
                    taken_at=col.now,
                    shards=[
                        col.shards[s].stats()
                        for s in range(num_shards) if s in owned_set
                    ],
                    metrics=obs.as_dict() if obs is not None else None,
                )
            elif op == _FLOW:
                reply = col.flow(msg[1])
            elif op == _FLOWS:
                reply = [col.flow(fid) for fid in msg[1]]
            elif op == _RESULT:
                reply = col.result(msg[1])
            elif op == _LEN:
                reply = len(col)
            elif op == _EXPIRE:
                reply = col.expire(now=msg[1])
            elif op == _EVICT:
                reply = col.evict(msg[1])
            elif op == _DRAIN:
                reply = None
            elif op == _CHECKPOINT:
                # Sync, so it queues behind every in-flight batch: the
                # blob always covers everything the parent sent before
                # asking -- the property that lets a checkpoint ACK
                # clear the journal.
                reply = capture_checkpoint(
                    col,
                    metrics=obs.as_dict() if obs is not None else None,
                    worker=worker_id,
                )
            elif op == _DEGRADE:
                # Journal-window overrun: the parent could not replay
                # these records; pin the loss to the shards that owned
                # them so snapshots report it honestly.
                for sid, lost in msg[1].items():
                    col.shards[sid].mark_degraded(lost)
                reply = None
            else:
                raise ValueError(f"unknown collector worker op {op!r}")
            conn.send(("ok", reply))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    if ring is not None:
        ring.close()
    conn.close()


class ParallelCollector:
    """Scatter-by-shard multi-process front door over N Collectors.

    Drop-in for :class:`Collector` at the service surface -- same
    ingest, query, expiry and snapshot methods, same clock-mode guard
    -- with ingestion and decode spread across worker processes.  Use
    it when per-record decode work (path peeling, sketch updates)
    dominates; for trivially cheap consumers the pickled-column
    transport costs more than it buys (see DESIGN.md section 5).

    Parameters
    ----------
    consumer_factory, num_shards, max_flows_per_shard, ttl, seed,
    router:
        Exactly as :class:`Collector`; the resulting state is
        bit-identical to a serial collector built from the same values.
    workers:
        Worker process count; shards are assigned round-robin
        (``shard_id % workers``), so ``workers`` must not exceed
        ``num_shards`` (an idle worker would own nothing).
    start_method:
        ``multiprocessing`` start method.  The default ``fork``
        supports closure factories; ``spawn`` requires picklable
        arguments throughout.
    transport:
        ``"shm"`` (default) scatters batches through per-worker
        shared-memory rings (:mod:`repro.collector.shm`) with the
        pipe as the slow path for oversized batches and scalars;
        ``"pipe"`` keeps the original pickled-ndarray pipe data
        plane.  Results are bit-identical either way.
    ring_slots / ring_records:
        Shm-ring geometry: slots per ring (>= 2; generalised double
        buffering) and records per slot.  A batch over
        ``ring_records`` records falls back to the pipe -- size it to
        the scatter's per-worker sub-batch (``batch / workers``-ish)
        to keep the fast path hot.  Ignored for ``transport="pipe"``.
    obs:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  The
        parent registers scatter/drain spans, per-worker sent-batch
        counters and a live ``pint_parallel_worker_backlog`` gauge
        (sent minus applied, via a shared counter each worker bumps);
        each worker additionally runs its private collector over its
        own registry labelled ``{"worker": str(w)}``, merged into
        every :meth:`snapshot`.  Omitted, all of it is no-op.
    checkpoint_every:
        Enables supervision: each worker is checkpointed after every
        ``checkpoint_every`` fire-and-forget messages, the parent
        journals un-checkpointed messages, and worker deaths are
        survived (restore + replay) instead of raised.  ``None``
        (default) keeps the original die-loudly behaviour.
    journal_batches:
        Per-worker journal capacity in messages; defaults to
        ``4 * checkpoint_every``.  With capacity >= ``checkpoint_every``
        the journal never evicts while checkpointing is healthy (the
        window arithmetic in DESIGN.md section 9); an undersized
        journal trades memory for degraded recovery.
    faults:
        Optional :class:`repro.faults.FaultPlan`; the supervisor fires
        its kill/wedge specs after the matching sends and applies its
        checkpoint specs to checkpoint replies (chaos testing).
    wedge_timeout:
        Seconds a sync RPC may go unanswered by a *live* worker before
        it is declared wedged and recovered (SIGSTOP survival).
        ``None`` disables wedge detection -- death detection alone.
    max_restarts:
        Per-worker restart budget; exceeding it raises
        :class:`~repro.exceptions.RecoveryError` (a worker dying in a
        tight loop is a bug, not an outage to paper over).
    on_data_loss:
        ``"degrade"`` (default) marks shards degraded when a journal
        window is exceeded and keeps going; ``"raise"`` raises
        :class:`~repro.exceptions.JournalOverflowError` at the
        eviction instead.
    """

    def __init__(
        self,
        consumer_factory: ConsumerFactory,
        workers: int = 4,
        num_shards: int = 8,
        max_flows_per_shard: Optional[int] = None,
        ttl: Optional[float] = None,
        seed: int = 0,
        router: Optional[ShardRouter] = None,
        start_method: str = "fork",
        transport: str = "shm",
        ring_slots: int = 8,
        ring_records: int = 16384,
        obs=None,
        obs_labels: Optional[dict] = None,
        checkpoint_every: Optional[int] = None,
        journal_batches: Optional[int] = None,
        faults=None,
        wedge_timeout: Optional[float] = None,
        max_restarts: int = 8,
        on_data_loss: str = "degrade",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_every is None and (
            journal_batches is not None or faults is not None
            or wedge_timeout is not None
        ):
            raise ValueError(
                "journal_batches/faults/wedge_timeout require "
                "checkpoint_every (supervision): without checkpoints "
                "there is nothing to recover a worker to"
            )
        if journal_batches is not None and journal_batches < 1:
            raise ValueError("journal_batches must be >= 1")
        if on_data_loss not in ("degrade", "raise"):
            raise ValueError(
                f"on_data_loss must be 'degrade' or 'raise', "
                f"got {on_data_loss!r}"
            )
        if router is not None and router.num_shards != num_shards:
            raise ValueError("router/num_shards mismatch")
        if workers > num_shards:
            raise ValueError(
                f"workers ({workers}) must not exceed num_shards "
                f"({num_shards}): a worker with no shard never sees a "
                "record"
            )
        if transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        if ring_slots < 2:
            raise ValueError("ring_slots must be >= 2 (double buffering)")
        if ring_records < 1:
            raise ValueError("ring_records must be >= 1")
        self.workers = workers
        self.num_shards = num_shards
        self.router = router if router is not None else ShardRouter(
            num_shards, seed
        )
        self._spec = (
            consumer_factory, num_shards, max_flows_per_shard, ttl, seed,
            router,
        )
        self._ctx = mp.get_context(start_method)
        self._start_method = start_method
        self.transport = transport
        self._ring_slots = ring_slots
        self._ring_records = ring_records
        #: One ShmRing per worker (shm transport; empty for pipe).
        self._rings: List[ShmRing] = []
        #: Side-channel messages sent per worker since its ring was
        #: created (the tombstone numbering; reset with a fresh ring).
        self._side_sent: List[int] = [0] * workers
        self.clock = IngestClock()
        self._conns: List = []
        self._procs: List = []
        self._closed = False
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._obs_labels = dict(obs_labels) if obs_labels else {}
        #: Fire-and-forget messages sent per worker (parent side) and
        #: the matching worker-side applied counters (shared memory,
        #: created at start()).  Their difference is the live backlog.
        self._sent: List[int] = [0] * workers
        self._applied: List = []
        # -- supervision state (all inert when checkpoint_every=None) --
        self._checkpoint_every = checkpoint_every
        self._journal_batches = (
            journal_batches if journal_batches is not None
            else (4 * checkpoint_every if checkpoint_every else None)
        )
        self._faults = faults
        self._wedge_timeout = wedge_timeout
        self._max_restarts = max_restarts
        self._on_data_loss = on_data_loss
        self._journals: List[BatchJournal] = (
            [BatchJournal(self._journal_batches) for _ in range(workers)]
            if checkpoint_every is not None else []
        )
        #: Last *validated* checkpoint blob per worker (None until the
        #: first ACK: recovery then restores-from-empty and replays the
        #: full journal).
        self._checkpoints: List[Optional[bytes]] = [None] * workers
        self._restarts: List[int] = [0] * workers
        self._msgs_since_ckpt: List[int] = [0] * workers
        self._ckpt_ordinal: List[int] = [0] * workers
        #: Cumulative supervision counters (the RecoveryStats source);
        #: journal_dropped_* accrue at eviction time and are never
        #: cleared -- they count *potential*-loss events, while actual
        #: loss lives on the shards' degraded marks.
        self._rec: Dict[str, int] = {
            "restarts": 0,
            "checkpoints_taken": 0,
            "checkpoints_rejected": 0,
            "replayed_batches": 0,
            "replayed_records": 0,
            "journal_dropped_batches": 0,
            "journal_dropped_records": 0,
        }
        self._init_obs()

    @property
    def _supervised(self) -> bool:
        return self._checkpoint_every is not None

    def _init_obs(self) -> None:
        obs = self.obs
        base = self._obs_labels
        self._sp_scatter = obs.span(
            "pint_parallel_scatter_seconds",
            "Time routing + piping one batch to the workers.",
            labels=base,
        )
        self._sp_drain = obs.span(
            "pint_parallel_drain_seconds",
            "Time blocked in drain barriers (slowest worker's backlog).",
            labels=base,
        )
        for w in range(self.workers):
            labels = {**base, "worker": str(w)}
            obs.counter(
                "pint_parallel_batches_sent_total",
                "Fire-and-forget messages scattered to this worker.",
                labels=labels,
            ).set_function(lambda w=w: self._sent[w])
            obs.gauge(
                "pint_parallel_worker_backlog",
                "Messages sent to this worker and not yet applied.",
                labels=labels,
            ).set_function(
                lambda w=w: self._sent[w] - (
                    self._applied[w].value if w < len(self._applied) else 0
                )
            )
            obs.counter(
                "pint_parallel_worker_restarts_total",
                "Times this worker was replaced by the supervisor.",
                labels=labels,
            ).set_function(lambda w=w: self._restarts[w])
            obs.gauge(
                "pint_parallel_ring_occupancy",
                "Slots published to this worker's shm ring and not "
                "yet consumed (0 for the pipe transport).",
                labels=labels,
            ).set_function(
                lambda w=w: (
                    self._rings[w].occupancy()
                    if w < len(self._rings) else 0
                )
            )

    # -- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once worker processes exist (and close() has not run)."""
        return bool(self._procs)

    def start(self) -> "ParallelCollector":
        """Spawn the worker processes (idempotent)."""
        if self._closed:
            raise CollectorClosedError("collector is closed")
        if self._procs:
            return self
        for w in range(self.workers):
            owned = list(range(w, self.num_shards, self.workers))
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            applied = self._ctx.Value("L", 0, lock=False)
            self._applied.append(applied)
            ring_spec = None
            if self.transport == "shm":
                ring = ShmRing.create(self._ring_slots, self._ring_records)
                self._rings.append(ring)
                ring_spec = ring.spec(self._start_method)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    child_conn, *self._spec, owned,
                    w, self.obs.enabled, applied, self._obs_labels,
                    None, ring_spec,
                ),
                daemon=True,
                name=f"collector-worker-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        return self

    def _broadcast(self, msg) -> list:
        """One sync command to *every* worker: send all, then collect.

        Sending to all workers before reading any reply makes barrier
        waits cost the slowest worker's backlog instead of the sum of
        backlogs (the workers fold their queues concurrently while the
        parent collects).  Every reply is consumed even when one
        carries an error, so a failure in one worker never leaves
        another's reply stranded in its pipe to desync later RPCs.

        Supervised, the round-trips run one worker at a time instead:
        a death mid-barrier then recovers and retries just that worker
        (workers still fold their already-sent backlogs concurrently;
        only the tiny RPC replies serialise).
        """
        if self._supervised:
            return [
                self._call_supervised(w, msg)
                for w in range(len(self._conns))
            ]
        for conn in self._conns:
            self._send(conn, msg)
        values = []
        errors = []
        for conn in self._conns:
            try:
                values.append(self._recv(conn))
            except RuntimeError as exc:
                errors.append(str(exc))
        if errors:
            raise WorkerFailedError("\n".join(errors))
        return values

    def _check_open(self) -> None:
        """A closed collector's state is gone: answering queries with
        "empty" would be indistinguishable from real answers, so every
        operation after close() raises instead."""
        if self._closed:
            raise CollectorClosedError(
                "collector is closed; its worker state is gone -- "
                "query results before close(), not after"
            )

    def drain(self) -> None:
        """Barrier: return once every sent record has been applied.

        Pipe FIFO ordering guarantees all earlier batches were folded
        before the reply; any deferred worker-side ingest failure
        surfaces here.
        """
        self._check_open()
        if not self._procs:
            return
        with self._sp_drain:
            self._broadcast((_DRAIN,))

    def close(self, timeout: float = 30.0) -> None:
        """Stop and join the workers (idempotent).

        The stop reply doubles as a final drain: it queues behind any
        in-flight batches, and a worker carrying a deferred ingest
        failure reports it in that reply -- ``close()`` re-raises it
        once every worker is stopped and joined, so no error from a
        fire-and-forget batch is ever silently discarded (the contract
        :meth:`drain` enforces mid-flight).  A worker that fails to
        acknowledge within ``timeout`` seconds (wedged, or still
        folding a backlog larger than the timeout allows) is
        terminated and *reported as an error* too, never dropped on
        the floor; raise the timeout, or ``drain()`` first, when
        closing behind a large fire-and-forget backlog.
        """
        if not self._procs:
            self._closed = True
            return
        errors = []
        # The stop itself must not block: a wedged worker stops
        # reading its pipe, the OS buffer fills, and a blocking send
        # would hang close() before its timeout ever applied.  The
        # tuple is tiny, so on a healthy pipe the non-blocking send
        # always succeeds; a full or broken pipe marks the worker
        # wedged and it is terminated without a handshake.
        stop_sent = []
        for i, conn in enumerate(self._conns):
            ok = False
            try:
                fd = conn.fileno()
                os.set_blocking(fd, False)
                try:
                    conn.send((_STOP,))
                    ok = True
                finally:
                    os.set_blocking(fd, True)
            except (BlockingIOError, BrokenPipeError, OSError):
                pass
            stop_sent.append(ok)
        for i, conn in enumerate(self._conns):
            if not stop_sent[i]:
                errors.append(
                    f"worker {i}'s pipe was full or broken at stop "
                    "(worker wedged or dead); terminated without a "
                    "handshake -- queued batches and any deferred "
                    "ingest error were lost"
                )
                conn.close()
                continue
            try:
                if conn.poll(timeout):
                    tag, value = conn.recv()
                    if tag == "err":
                        errors.append(value)
                else:
                    errors.append(
                        f"worker {i} did not acknowledge stop within "
                        f"{timeout}s and was terminated; queued batches "
                        "(and any deferred ingest error) were lost"
                    )
            except (EOFError, OSError):
                errors.append(
                    f"worker {i} died before acknowledging stop "
                    "(broken pipe); its shard state and any deferred "
                    "ingest error were lost"
                )
            conn.close()
        # Escalating shutdown: cooperative join, then SIGTERM, then --
        # for a worker that masks SIGTERM or is SIGSTOPped -- SIGKILL,
        # which cannot be blocked.  A worker that needed the last rung
        # is reported, never silently leaked as a zombie holding its
        # pipe and shard state.
        join_t = min(5.0, timeout) if timeout else 5.0
        for i, proc in enumerate(self._procs):
            proc.join(timeout=join_t)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=join_t)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=join_t)
                errors.append(
                    f"worker {i} ignored SIGTERM (masked or stopped) "
                    "and was SIGKILLed; queued batches were lost"
                )
        self._conns = []
        self._procs = []
        # Workers are joined (or killed): unmap and unlink every ring
        # segment.  Unlink is the parent's job -- it owns the names --
        # and running it after the joins means no live worker can be
        # left mapped to a name-less segment.
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._rings = []
        self._closed = True
        if errors:
            raise WorkerFailedError(
                "collector worker failed during ingestion:\n"
                + "\n".join(errors)
            )

    def __enter__(self) -> "ParallelCollector":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            if self._procs and not self._closed:
                self.close()
        except Exception:
            pass

    # -- transport ---------------------------------------------------------

    def _send(self, conn, msg) -> None:
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerFailedError(
                "collector worker died (broken pipe); its shard state "
                "is lost -- check the worker traceback on stderr"
            ) from exc

    def _recv(self, conn):
        try:
            tag, value = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerFailedError(
                "collector worker died before replying; its shard "
                "state is lost -- check the worker traceback on stderr"
            ) from exc
        if tag == "err":
            raise WorkerFailedError(f"collector worker failed:\n{value}")
        return value

    def _transport_ff(self, w: int, msg: tuple) -> None:
        """Route one fire-and-forget data message to worker ``w``.

        ``msg`` is always the legacy pipe-shaped tuple (``_BATCH`` or
        ``_INGEST``) -- the journal stores exactly these, so replay
        and live traffic share one path.  On the shm transport a
        fitting batch is written into the ring; everything else (an
        oversized batch, a scalar) goes over the pipe as a numbered
        ``_SIDE`` message *followed by* its ring tombstone -- pipe
        first, so a consumer blocking on the tombstone always finds
        the message in flight, never a hole.  Raises
        :class:`_WorkerDied` when the worker cannot take the message
        (dead, or -- under ``wedge_timeout`` -- making no progress on
        a full ring); callers decide whether that is recoverable.
        """
        ring = self._rings[w] if w < len(self._rings) else None
        conn = self._conns[w]
        if ring is None:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(
                    f"worker {w} pipe broken at batch"
                ) from exc
            return
        alive = self._procs[w].is_alive
        if msg[0] == _BATCH and ring.fits(int(msg[1].shape[0])):
            fids, ps, hops, digs, t = msg[1], msg[2], msg[3], msg[4], msg[5]

            def attempt() -> bool:
                return ring.try_push(fids, ps, hops, digs, t)

            try:
                ring.push_wait(attempt, alive, timeout=self._wedge_timeout)
            except PeerGoneError as exc:
                raise _WorkerDied(f"worker {w}: {exc}") from exc
            return
        idx = self._side_sent[w] + 1
        try:
            conn.send((_SIDE, idx, msg))
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(
                f"worker {w} pipe broken at side message"
            ) from exc
        self._side_sent[w] = idx

        def attempt_tombstone() -> bool:
            return ring.try_push_tombstone(idx)

        try:
            ring.push_wait(
                attempt_tombstone, alive, timeout=self._wedge_timeout
            )
        except PeerGoneError as exc:
            raise _WorkerDied(f"worker {w}: {exc}") from exc

    def _send_ff(self, w: int, msg: tuple) -> None:
        """Unsupervised fire-and-forget send: die loudly on a corpse."""
        try:
            self._transport_ff(w, msg)
        except _WorkerDied as exc:
            raise WorkerFailedError(
                "collector worker died (broken pipe); its shard state "
                "is lost -- check the worker traceback on stderr"
            ) from exc
        self._sent[w] += 1

    def _call(self, worker: int, msg):
        """One synchronous RPC round-trip to ``worker``.

        Callers guard on :attr:`started`: queries against a collector
        that never ingested answer "empty" locally rather than forking
        worker processes as a side effect of a read-only probe.
        """
        if self._supervised:
            return self._call_supervised(worker, msg)
        conn = self._conns[worker]
        self._send(conn, msg)
        return self._recv(conn)

    def _owner(self, flow_id: int) -> int:
        return self.router.shard_of(flow_id) % self.workers

    # -- supervision -------------------------------------------------------

    def _recv_supervised(self, w: int):
        """Receive one sync reply, watching the worker's pulse.

        Unlike :meth:`_recv`, this never blocks on a corpse: it polls
        the pipe on a short tick and checks the process sentinel in
        between, so a worker that died mid-RPC surfaces as
        :class:`_WorkerDied` (recoverable) instead of hanging the
        parent.  A *live* worker that stays silent past
        ``wedge_timeout`` is declared wedged -- SIGSTOP and
        infinite-loop failures look identical from the pipe, and both
        are cured by replacement.
        """
        conn = self._conns[w]
        proc = self._procs[w]
        start = time.monotonic()  # repro-lint: disable=R002 reason=wedge detection times a live child process, not simulated replay time
        while not conn.poll(0.05):
            if not proc.is_alive():
                # One last look: the reply may have raced the death.
                if conn.poll(0):
                    break
                raise _WorkerDied(f"worker {w} died mid-RPC")
            if (
                self._wedge_timeout is not None
                and time.monotonic() - start >= self._wedge_timeout  # repro-lint: disable=R002 reason=wedge detection times a live child process, not simulated replay time
            ):
                raise _WorkerDied(
                    f"worker {w} wedged: no RPC reply in "
                    f"{self._wedge_timeout}s with the process alive"
                )
        try:
            tag, value = conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDied(f"worker {w} died mid-RPC") from exc
        if tag == "err":
            raise WorkerFailedError(f"collector worker failed:\n{value}")
        return value

    def _call_supervised(self, w: int, msg):
        """Sync RPC that survives the callee dying: recover and retry.

        Safe because every sync op is idempotent against restored
        state -- queries are read-only, ``_EXPIRE``/``_EVICT`` converge
        to the same table either way -- and the re-sent message lands
        *after* the journal replay the recovery performed, exactly
        where it would have landed on a healthy worker.
        """
        while True:
            try:
                try:
                    self._conns[w].send(msg)
                except (BrokenPipeError, OSError) as exc:
                    raise _WorkerDied(
                        f"worker {w} pipe broken at send"
                    ) from exc
                return self._recv_supervised(w)
            except _WorkerDied as exc:
                self._recover_worker(w, str(exc))

    def _reap(self) -> None:
        """Proactive sentinel sweep: recover any silently dead worker.

        Fire-and-forget sends only notice death once the pipe breaks,
        which OS buffering can delay past many batches; sweeping at
        ingest time keeps the recovery point (and thus the replay
        volume) close to the death point.
        """
        for w, proc in enumerate(self._procs):
            if not proc.is_alive():
                self._recover_worker(w, f"worker {w} found dead")

    def _checkpoint_worker(self, w: int) -> None:
        """One checkpoint round-trip; ACK clears the worker's journal.

        The blob is validated (header + CRC) *before* the old one is
        replaced, and a dropped/corrupted write -- injected or real --
        leaves the previous checkpoint and the entire journal intact:
        rejecting a checkpoint must never widen the loss window, only
        fail to narrow it.  A worker found dead here is recovered and
        the checkpoint attempt abandoned (the cadence retries on the
        replacement soon enough).
        """
        journal = self._journals[w]
        self._ckpt_ordinal[w] += 1
        ordinal = self._ckpt_ordinal[w]
        try:
            try:
                self._conns[w].send((_CHECKPOINT,))
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(
                    f"worker {w} pipe broken at checkpoint"
                ) from exc
            data = self._recv_supervised(w)
        except _WorkerDied as exc:
            self._recover_worker(w, str(exc))
            return
        fate = (
            self._faults.checkpoint_fault(w, ordinal)
            if self._faults is not None else None
        )
        if fate == "drop":
            data = None
        elif fate == "corrupt" and data is not None:
            data = data[: len(data) // 2]
        if data is not None:
            try:
                validate_checkpoint(data, worker=w)
            except CheckpointError:
                data = None
        if data is None:
            self._rec["checkpoints_rejected"] += 1
            return
        self._checkpoints[w] = data
        journal.clear()
        journal.clear_dropped()
        self._msgs_since_ckpt[w] = 0
        self._rec["checkpoints_taken"] += 1

    def _recover_worker(self, w: int, reason: str) -> None:
        """Replace a dead/wedged worker: restore + replay + resume.

        The replacement installs the last validated checkpoint before
        reading its pipe, then the journal (every message since that
        checkpoint's ACK) is replayed in FIFO order -- reconstruction,
        not dedup, is what makes each message count exactly once.  If
        the journal evicted entries since the checkpoint (its window
        was exceeded), that *potential* loss now becomes actual: the
        per-shard dropped counts are pinned onto the restored shards
        as degraded marks.  The ledger is deliberately *not* cleared
        here -- the checkpoint predates the marks, so a repeat death
        before the next ACK must re-apply them after its own restore.
        """
        self._restarts[w] += 1
        self._rec["restarts"] += 1
        if self._restarts[w] > self._max_restarts:
            raise RecoveryError(
                f"worker {w} exceeded max_restarts={self._max_restarts} "
                f"(last failure: {reason}); a worker dying in a tight "
                "loop is a bug, not an outage to paper over",
                worker=w,
            )
        try:
            self._conns[w].close()
        except OSError:
            pass
        proc = self._procs[w]
        if proc.is_alive():
            # Wedged (e.g. SIGSTOPped) workers ignore SIGTERM; SIGKILL
            # cannot be blocked, caught or stopped.
            proc.kill()
        proc.join(timeout=5.0)
        journal = self._journals[w]
        owned = list(range(w, self.num_shards, self.workers))
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        ring_spec = None
        if w < len(self._rings):
            # The dead worker's ring may hold batches it never folded
            # (the journal replays them) and its consumed index is
            # frozen mid-stream: replace the segment outright.  The
            # old one is unlinked here -- a SIGKILLed worker cannot
            # unmap anything, but the name must not outlive recovery.
            old = self._rings[w]
            old.close()
            old.unlink()
            ring = ShmRing.create(self._ring_slots, self._ring_records)
            self._rings[w] = ring
            ring_spec = ring.spec(self._start_method)
            # Fresh ring, fresh pipe: side numbering restarts with it.
            self._side_sent[w] = 0
        # The replacement's applied counter starts at sent-minus-replay
        # so the backlog gauge stays truthful: after the journal is
        # folded it reads zero again, exactly like a worker that never
        # died.
        applied = self._ctx.Value(
            "L", max(0, self._sent[w] - len(journal)), lock=False
        )
        self._applied[w] = applied
        new_proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn, *self._spec, owned,
                w, self.obs.enabled, applied, self._obs_labels,
                self._checkpoints[w], ring_spec,
            ),
            daemon=True,
            name=f"collector-worker-{w}",
        )
        new_proc.start()
        child_conn.close()
        self._conns[w] = parent_conn
        self._procs[w] = new_proc
        replay = journal.replay_messages()
        for m in replay:
            try:
                # Through the normal transport: a journaled batch that
                # fits a slot replays via the fresh ring, an oversized
                # one via _SIDE + tombstone -- the replacement cannot
                # tell replay from live traffic.
                self._transport_ff(w, m)
            except _WorkerDied as exc:
                raise RecoveryError(
                    f"worker {w} replacement died during journal "
                    f"replay (original failure: {reason})",
                    worker=w,
                ) from exc
        self._rec["replayed_batches"] += len(replay)
        self._rec["replayed_records"] += journal.records
        if journal.dropped_by_shard:
            try:
                parent_conn.send((_DEGRADE, dict(journal.dropped_by_shard)))
                self._recv_supervised(w)
            except _WorkerDied:
                self._recover_worker(w, "replacement died at degrade mark")

    def _post(
        self, w: int, msg: tuple, records: int,
        shard_counts: Dict[int, int],
    ) -> None:
        """Supervised fire-and-forget send: journal first, pipe second.

        Journal-before-send is the crash-safety ordering -- a message
        the pipe ate (broken mid-send) is already replayable.  A full
        journal first tries to make room the honest way (a checkpoint
        barrier: backpressure, not loss); only if checkpointing is
        itself failing does the append evict, and that eviction either
        raises (``on_data_loss="raise"``) or accrues potential loss
        the next recovery will materialise.  After the send, due
        fault-plan kills/wedges fire, then the checkpoint cadence.
        """
        journal = self._journals[w]
        if journal.full:
            self._checkpoint_worker(w)
        evicted = journal.append(msg, records, shard_counts)
        if evicted is not None:
            self._rec["journal_dropped_batches"] += 1
            self._rec["journal_dropped_records"] += evicted.records
            if self._on_data_loss == "raise":
                raise JournalOverflowError(
                    f"journal for worker {w} overflowed "
                    f"(capacity {journal.capacity} messages): "
                    f"{evicted.records} records are no longer "
                    "replayable; checkpointing is failing or "
                    "checkpoint_every/journal_batches are mis-sized",
                    worker=w,
                )
        self._sent[w] += 1
        self._msgs_since_ckpt[w] += 1
        try:
            self._transport_ff(w, msg)
        except _WorkerDied as exc:
            # Already journaled: the replay delivers this very message.
            self._recover_worker(w, str(exc))
            return
        if self._faults is not None:
            for spec in self._faults.worker_faults(w, self._sent[w]):
                self._faults.fire_worker_fault(spec, self._procs[w].pid)
                if spec.kind == "kill":
                    # Make the death deterministic for the test/bench
                    # assertions: the next supervision touchpoint must
                    # observe it, not race it.
                    self._procs[w].join(timeout=5.0)
        if self._msgs_since_ckpt[w] >= self._checkpoint_every:
            self._checkpoint_worker(w)

    def recovery_stats(self, snapshot: Optional[Snapshot] = None):
        """The supervision ledger as a frozen :class:`RecoveryStats`.

        ``degraded_shards``/``records_lost`` describe *actual* loss
        and live on the workers' shards, so they are filled from a
        snapshot when one is provided (pass the snapshot you are
        attaching the stats to); without one they read 0.
        """
        degraded = len(snapshot.degraded_shards) if snapshot else 0
        lost = snapshot.records_lost if snapshot else 0
        return RecoveryStats(
            **self._rec, degraded_shards=degraded, records_lost=lost
        )

    # -- ingestion ---------------------------------------------------------

    @property
    def now(self) -> float:
        """The front door's current clock reading."""
        return self.clock.now

    def ingest(
        self,
        flow_id: int,
        pid: int,
        hop_count: int,
        digest: int,
        now: Optional[float] = None,
    ) -> None:
        """Route one record to its owner worker (scalar path)."""
        self.start()
        t = self.clock.tick(now, 1)
        if self._supervised:
            self._reap()
            sid = self.router.shard_of(flow_id)
            self._post(
                sid % self.workers,
                (_INGEST, flow_id, pid, hop_count, digest, t),
                1, {sid: 1},
            )
            return
        owner = self._owner(flow_id)
        self._send_ff(owner, (_INGEST, flow_id, pid, hop_count, digest, t))

    def ingest_batch(
        self,
        flow_ids: Column,
        pids: Column,
        hop_counts: Column,
        digests: Column,
        now: Optional[float] = None,
    ) -> int:
        """Scatter a columnar batch to the workers; returns its size.

        The batch is routed with one vectorised hash and split into at
        most ``workers`` sub-batches (boolean masks preserve batch
        order, so per-flow streams stay sequential inside each worker).
        Sends are fire-and-forget: the call returns once the columns
        are in the pipes, and :meth:`drain` (or any query) barriers
        with the workers.  OS pipe backpressure bounds how far the
        front door can run ahead.
        """
        self._check_open()
        fids, ps, hops, digs = normalize_batch(
            flow_ids, pids, hop_counts, digests
        )
        n = int(fids.shape[0])
        if n == 0:
            return 0
        self.start()
        t = self.clock.tick(now, n)
        with self._sp_scatter:
            if self._supervised:
                self._reap()
                # Shard ids (not just worker ids) are computed so the
                # journal can account records per shard -- the
                # granularity degraded marking needs.
                sids = self.router.shard_of_array(fids)
                wids = sids % self.workers
                for w in range(self.workers):
                    mask = wids == w
                    if not mask.any():
                        continue
                    uniq, counts = np.unique(
                        sids[mask], return_counts=True
                    )
                    self._post(
                        w,
                        (
                            _BATCH, fids[mask], ps[mask], hops[mask],
                            digs[mask], t,
                        ),
                        int(mask.sum()),
                        {int(s): int(c) for s, c in zip(uniq, counts)},
                    )
                return n
            if self.workers == 1:
                self._send_ff(0, (_BATCH, fids, ps, hops, digs, t))
                return n
            wids = self.router.shard_of_array(fids) % self.workers
            for w in range(self.workers):
                mask = wids == w
                if not mask.any():
                    continue
                self._send_ff(
                    w,
                    (
                        _BATCH, fids[mask], ps[mask], hops[mask],
                        digs[mask], t,
                    ),
                )
        return n

    # -- queries -----------------------------------------------------------

    def flow(self, flow_id: int) -> Optional[DigestConsumer]:
        """A point-in-time *copy* of the flow's consumer, or None.

        Unlike :meth:`Collector.flow`, the returned consumer is a
        pickled snapshot that lives in the calling process: reading it
        (``result()``, ``decode_errors``, ...) is exact as of the call,
        but mutating it does not touch the worker's state.
        """
        self._check_open()
        if not self._procs:
            return None
        return self._call(self._owner(flow_id), (_FLOW, flow_id))

    def flows(self, flow_ids) -> List[Optional[DigestConsumer]]:
        """Point-in-time consumer copies for many flows, input order.

        The bulk form of :meth:`flow`: flows are grouped by owner
        worker and fetched with *one* RPC round-trip per worker, so
        scoring a replay over hundreds of flows pays per-worker
        latency instead of per-flow (the shape
        :meth:`ReplayDriver._score` reads decoders in).
        """
        self._check_open()
        ids = [int(f) for f in flow_ids]
        out: List[Optional[DigestConsumer]] = [None] * len(ids)
        if not self._procs or not ids:
            return out
        by_worker: dict = {}
        for pos, fid in enumerate(ids):
            by_worker.setdefault(self._owner(fid), []).append((pos, fid))
        items = list(by_worker.items())
        if self._supervised:
            for w, pairs in items:
                reply = self._call_supervised(
                    w, (_FLOWS, [fid for _, fid in pairs])
                )
                for (pos, _), consumer in zip(pairs, reply):
                    out[pos] = consumer
            return out
        for w, pairs in items:
            self._send(
                self._conns[w], (_FLOWS, [fid for _, fid in pairs])
            )
        errors = []
        for w, pairs in items:
            try:
                reply = self._recv(self._conns[w])
            except RuntimeError as exc:
                errors.append(str(exc))
                continue
            for (pos, _), consumer in zip(pairs, reply):
                out[pos] = consumer
        if errors:
            raise WorkerFailedError("\n".join(errors))
        return out

    def result(self, flow_id: int):
        """The flow's query answer, or None (unknown flow / undecoded)."""
        self._check_open()
        if not self._procs:
            return None
        return self._call(self._owner(flow_id), (_RESULT, flow_id))

    def __len__(self) -> int:
        """Live flows across all workers."""
        self._check_open()
        if not self._procs:
            return 0
        return sum(self._broadcast((_LEN,)))

    # -- operations --------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> int:
        """Force a TTL sweep on every worker; returns evicted flows."""
        self._check_open()
        t = self.clock.expire_time(now)
        if not self._procs:
            return 0
        return sum(self._broadcast((_EXPIRE, t)))

    def evict(self, flow_id: int) -> bool:
        """Drop one flow's state on its owner worker."""
        self._check_open()
        if not self._procs:
            return False
        return self._call(self._owner(flow_id), (_EVICT, flow_id))

    def snapshot(self) -> Snapshot:
        """Point-in-time metrics, merged across all workers.

        Each worker reports only the shards it owns; the merge
        reorders them by ``shard_id`` and stamps the front door's own
        clock, so the result is field-for-field the snapshot a serial
        collector fed the same batches would take.  The per-worker
        snapshot commands queue behind any in-flight batches, so the
        counters always reflect every record sent before this call.

        Before the first ingest, probing metrics is read-only and must
        not fork processes as a side effect: the snapshot is built
        from a local idle collector instead, which reports exactly the
        zeroed per-shard stats the workers would -- a monitoring
        scrape sees the same ``num_shards`` rows before and after the
        service spins up.
        """
        self._check_open()
        if not self._procs:
            factory, num_shards, max_flows, ttl, seed, router = self._spec
            idle = Collector(
                factory, num_shards=num_shards,
                max_flows_per_shard=max_flows, ttl=ttl, seed=seed,
                router=router,
            )
            return Snapshot(
                taken_at=self.clock.now,
                shards=[shard.stats() for shard in idle.shards],
            ).with_metrics(
                self.obs.as_dict() if self.obs.enabled else None
            )
        parts = self._broadcast((_SNAPSHOT,))
        snap = Snapshot.merged(
            parts, taken_at=self.clock.now
        ).with_metrics(self.obs.as_dict() if self.obs.enabled else None)
        if self._supervised:
            snap = snap.with_recovery(self.recovery_stats(snap))
        return snap

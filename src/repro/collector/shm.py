"""Shared-memory ring-buffer transport for the parallel collector.

The pickled-ndarray pipe transport costs a serialise, a kernel copy
per 64 KiB pipe write, and a deserialise for every scattered batch --
all parent-side, all serial.  This module replaces the *data plane*
with one :class:`ShmRing` per worker: a ``multiprocessing.
shared_memory`` segment laid out as a fixed-slot SPSC ring, written
once by the parent (vectorised column copies) and read zero-copy by
the worker (``np.ndarray`` views straight over the segment).  The
control plane -- sync RPCs, oversized batches, scalar ingests --
stays on the existing duplex pipe.

Ring layout (one segment per worker)::

      offset 0      ┌────────────────────────────────────┐
                    │ consumed : int64   (consumer-owned) │  64 B header
      offset 64     ├────────────────────────────────────┤
                    │ slot 0:  seq | kind | n | side : i64│  64 B slot
                    │          t : f64   (+ padding)      │  header
                    │          fids[cap] ps[cap]          │  4 × cap × 8 B
                    │          hops[cap] digs[cap]        │  payload
                    ├────────────────────────────────────┤
                    │ slot 1:  ...                        │
                    └────────────────────────────────────┘

Seqlock-style publication: message ``i`` (0-based) lands in slot
``i % slots``; the producer writes the payload columns and the slot
header fields first and publishes by storing ``seq = i + 1`` *last*.
The consumer, having consumed ``c`` messages, polls slot
``c % slots`` until its ``seq`` reads ``c + 1``, ingests the
zero-copy views, and only then stores ``consumed = c + 1`` back into
the control header -- the producer's licence to overwrite that slot
with message ``c + slots``.  One writer per field, int64 stores are
single machine words on every platform we run on, and the seq/
consumed pair brackets every payload access, so no torn read is ever
acted on.

Ordering with the pipe side-channel: the ring is the single ordering
spine.  Anything that must travel by pipe but interleave with ring
batches (an oversized batch, a scalar ingest, a journal replay) is
sent as a numbered side message *and* a tombstone slot
(``kind=1, n=0``) is pushed into the ring carrying that number; the
consumer blocks on the pipe when it meets a tombstone it has not
already satisfied.  ``collector/parallel.py`` owns that protocol;
this module only carries the slots.

Zero-copy safety: consumers never retain batch views past
``Collector.ingest_batch`` (its lexsort grouping gathers with fancy
indexing, which copies), so a slot may be reused the moment the
consumer advances past it.

This is the only module allowed to *create* shared-memory segments
(lint rule R008 confines ``SharedMemory(create=True)`` here): one
owner per segment keeps the unlink discipline auditable.
"""

from __future__ import annotations

import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, List, NamedTuple, Optional, Tuple

import numpy as np

#: Control header bytes (one int64 used: the consumed count).
_CTRL_BYTES = 64
#: Per-slot header bytes (seq, kind, n, side as int64; t as float64).
_SLOT_HEADER_BYTES = 64
#: Slot-header field offsets, in int64 words.
_SEQ, _KIND, _N, _SIDE = range(4)
#: Byte offset of the float64 batch clock stamp inside a slot header.
_T_OFFSET = 32

#: Slot kinds.  A DATA slot carries a columnar batch; a TOMBSTONE
#: carries no payload, only the side-channel sequence number whose
#: pipe message must be applied at this point of the stream.
KIND_DATA = 0
KIND_TOMBSTONE = 1


class RingSlot(NamedTuple):
    """One consumed-side view of a ready slot (views, not copies)."""

    kind: int
    side: int
    t: float
    #: ``(fids, pids, hops, digs)`` int64 views into the segment;
    #: empty arrays on a tombstone.  Valid until ``advance()``.
    columns: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class PeerGoneError(RuntimeError):
    """The other end of the ring stopped making progress (died/wedged)."""


def _release_views(arrays: List[np.ndarray]) -> None:
    arrays.clear()


class ShmRing:
    """Fixed-slot SPSC ring over one shared-memory segment.

    One side constructs with :meth:`create` (the parent; owns the
    segment name and must :meth:`unlink`), the other attaches with
    :meth:`attach` from the spec tuple.  Producer methods
    (``try_push*``) and consumer methods (``peek``/``advance``) are
    each single-threaded by contract; the two sides run in different
    processes.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        slot_records: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._unlinked = False
        self.slots = int(slots)
        self.slot_records = int(slot_records)
        self._slot_bytes = _SLOT_HEADER_BYTES + 4 * self.slot_records * 8
        self._size = _CTRL_BYTES + self.slots * self._slot_bytes
        buf = shm.buf
        # Bounds guard: every view below stays inside the segment (the
        # OS may round the mapping up, never down).
        assert buf.nbytes >= self._size, (
            f"shm segment {shm.name} is {buf.nbytes} B, ring layout "
            f"needs {self._size} B"
        )
        self._ctrl = np.frombuffer(buf, dtype=np.int64, count=1, offset=0)
        self._views: List[np.ndarray] = [self._ctrl]
        self._hdrs: List[np.ndarray] = []
        self._ts: List[np.ndarray] = []
        self._cols: List[np.ndarray] = []
        for s in range(self.slots):
            off = _CTRL_BYTES + s * self._slot_bytes
            hdr = np.frombuffer(buf, dtype=np.int64, count=4, offset=off)
            t = np.frombuffer(
                buf, dtype=np.float64, count=1, offset=off + _T_OFFSET
            )
            col = np.frombuffer(
                buf, dtype=np.int64, count=4 * self.slot_records,
                offset=off + _SLOT_HEADER_BYTES,
            )
            self._hdrs.append(hdr)
            self._ts.append(t)
            self._cols.append(col)
            self._views += [hdr, t, col]
        #: Messages pushed (producer-side) / consumed (consumer-side).
        #: Each side only trusts its own local count plus the single
        #: shared field the *other* side publishes.
        self._pushed = 0
        self._taken = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, slots: int = 8, slot_records: int = 16384) -> "ShmRing":
        """Parent side: allocate a fresh segment (auto-named)."""
        if slots < 2:
            # Two slots is the double-buffering floor: the producer
            # fills one while the consumer drains the other.
            raise ValueError("slots must be >= 2 (double buffering)")
        if slot_records < 1:
            raise ValueError("slot_records must be >= 1")
        size = _CTRL_BYTES + slots * (_SLOT_HEADER_BYTES + 4 * slot_records * 8)
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:_CTRL_BYTES] = b"\0" * _CTRL_BYTES
        ring = cls(shm, slots, slot_records, owner=True)
        for hdr in ring._hdrs:
            hdr[_SEQ] = 0
        return ring

    @classmethod
    def attach(
        cls, name: str, slots: int, slot_records: int, start_method: str
    ) -> "ShmRing":
        """Worker side: map an existing segment by name.

        Under ``spawn`` the child process runs its own resource
        tracker, which would treat this attach as an ownership claim
        and unlink the segment at child exit (bpo-38119); the attach
        is untracked (3.13+) or explicitly unregistered to leave the
        parent as the sole owner.  Under ``fork`` the tracker process
        is shared and registration is set-based, so the attach is
        already a no-op there.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # track= is 3.13+
            shm = shared_memory.SharedMemory(name=name)
            if start_method != "fork":
                resource_tracker.unregister(shm._name, "shared_memory")
        return cls(shm, slots, slot_records, owner=False)

    def spec(self, start_method: str) -> tuple:
        """Picklable ``attach()`` arguments for the worker process."""
        return (self._shm.name, self.slots, self.slot_records, start_method)

    # -- producer side -----------------------------------------------------

    def fits(self, n: int) -> bool:
        """True if an ``n``-record batch fits one slot."""
        return n <= self.slot_records

    def _free_slot(self) -> Optional[int]:
        if self._pushed - int(self._ctrl[0]) >= self.slots:
            return None
        return self._pushed % self.slots

    def try_push(
        self,
        fids: np.ndarray,
        pids: np.ndarray,
        hops: np.ndarray,
        digs: np.ndarray,
        t: float,
    ) -> bool:
        """Publish one batch; False when the ring is full (no wait)."""
        n = int(fids.shape[0])
        if n > self.slot_records:
            raise ValueError(
                f"batch of {n} records exceeds slot capacity "
                f"{self.slot_records}; callers must route oversized "
                "batches through the pipe fallback"
            )
        s = self._free_slot()
        if s is None:
            return False
        cap = self.slot_records
        col = self._cols[s]
        col[0:n] = fids
        col[cap:cap + n] = pids
        col[2 * cap:2 * cap + n] = hops
        col[3 * cap:3 * cap + n] = digs
        self._ts[s][0] = t
        hdr = self._hdrs[s]
        hdr[_KIND] = KIND_DATA
        hdr[_N] = n
        hdr[_SIDE] = 0
        hdr[_SEQ] = self._pushed + 1  # publish: payload precedes seq
        self._pushed += 1
        return True

    def try_push_tombstone(self, side_index: int) -> bool:
        """Publish a side-channel marker slot; False when full."""
        s = self._free_slot()
        if s is None:
            return False
        hdr = self._hdrs[s]
        hdr[_KIND] = KIND_TOMBSTONE
        hdr[_N] = 0
        hdr[_SIDE] = side_index
        hdr[_SEQ] = self._pushed + 1
        self._pushed += 1
        return True

    def push_wait(
        self,
        attempt: Callable[[], bool],
        alive: Callable[[], bool],
        timeout: Optional[float] = None,
        spin: float = 0.0001,
    ) -> None:
        """Run ``attempt`` until it lands, watching the consumer's pulse.

        ``attempt`` is a bound ``try_push``/``try_push_tombstone``
        closure.  Raises :class:`PeerGoneError` when the consumer
        process reports dead, or -- with ``timeout`` -- when a live
        consumer makes no room for that long (wedged; SIGSTOP and an
        infinite loop look identical from here, and both are cured by
        the supervisor replacing the worker).
        """
        if attempt():
            return
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while True:
            if not alive():
                # One last look: the consumer may have advanced the
                # ring right before dying.
                if attempt():
                    return
                raise PeerGoneError("ring consumer died with the ring full")
            if deadline is not None and time.perf_counter() >= deadline:
                raise PeerGoneError(
                    f"ring consumer made no progress in {timeout}s "
                    "with the process alive (wedged)"
                )
            time.sleep(spin)
            if attempt():
                return

    def occupancy(self) -> int:
        """Producer-side live depth: pushed and not yet consumed."""
        return self._pushed - int(self._ctrl[0])

    # -- consumer side -----------------------------------------------------

    def peek(self) -> Optional[RingSlot]:
        """The next ready slot as zero-copy views, or None (empty).

        The returned views are valid until :meth:`advance`; consumers
        must not retain them past it (``Collector.ingest_batch``'s
        gather-copies satisfy this by construction).
        """
        s = self._taken % self.slots
        hdr = self._hdrs[s]
        if int(hdr[_SEQ]) != self._taken + 1:
            return None
        n = int(hdr[_N])
        cap = self.slot_records
        col = self._cols[s]
        return RingSlot(
            kind=int(hdr[_KIND]),
            side=int(hdr[_SIDE]),
            t=float(self._ts[s][0]),
            columns=(
                col[0:n], col[cap:cap + n],
                col[2 * cap:2 * cap + n], col[3 * cap:3 * cap + n],
            ),
        )

    def advance(self) -> None:
        """Release the slot :meth:`peek` returned back to the producer."""
        self._taken += 1
        self._ctrl[0] = self._taken

    # -- lifecycle ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent).

        All ndarray views are released first: ``mmap.close`` refuses
        to unmap while exported buffers exist, and a view kept alive
        by a stray traceback would otherwise turn close() into a
        BufferError.  When that still happens the mapping is left for
        process exit to reclaim -- a leaked map is recoverable, a
        crashed close() is not.
        """
        self._hdrs = []
        self._ts = []
        self._cols = []
        self._ctrl = None
        _release_views(self._views)
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner side only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

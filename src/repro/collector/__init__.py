"""Sink-side streaming telemetry collector (the servable PINT sink).

The paper makes per-packet digests tiny by moving reconstruction work
to the sink (§3-§4); this subpackage is that sink as a service layer:
a :class:`Collector` front door routing ``(flow_id, pid, hop_count,
digest)`` records to hash-sharded, share-nothing partitions, each
holding an LRU/TTL-bounded :class:`FlowTable` of per-flow
:class:`DigestConsumer`s that wrap the existing decoders (path peeling,
latency KLL, congestion max).  Batched columnar ingestion
(:meth:`Collector.ingest_batch`) amortises per-record overhead and
dispatches each flow group to the :mod:`repro.collector.batchdecode`
engine, which decodes whole column slices in vectorised ``GlobalHash``
replays -- bit-identical to the scalar reference decoders; a
:class:`Snapshot` surface exports operational metrics.  For multi-core
sinks, :class:`ParallelCollector` scatters batches across worker
processes by shard partition with bit-identical merged results (see
:mod:`repro.collector.parallel`).

See DESIGN.md ("Collector architecture") for the layer diagram and
``examples/collector_service.py`` for an end-to-end run.
"""

from repro.collector.batchdecode import (
    CarrierCache,
    decode_latency_columns,
    decode_latency_slice,
    decode_path_columns,
)
from repro.collector.collector import Collector, IngestClock
from repro.collector.consumers import (
    CongestionDigestConsumer,
    DigestConsumer,
    LatencyDigestConsumer,
    PathDigestConsumer,
    congestion_consumer_factory,
    latency_consumer_factory,
    path_consumer_factory,
)
from repro.collector.flowtable import FlowEntry, FlowTable
from repro.collector.parallel import ParallelCollector
from repro.collector.records import TelemetryRecord, normalize_batch
from repro.collector.recovery import (
    CHECKPOINT_VERSION,
    BatchJournal,
    capture_checkpoint,
    read_checkpoint,
    restore_collector,
    write_checkpoint,
)
from repro.collector.shard import Shard, ShardRouter
from repro.collector.snapshot import (
    RecoveryStats,
    ServiceStats,
    ShardStats,
    Snapshot,
)

__all__ = [
    "BatchJournal",
    "CHECKPOINT_VERSION",
    "CarrierCache",
    "Collector",
    "CongestionDigestConsumer",
    "DigestConsumer",
    "FlowEntry",
    "FlowTable",
    "IngestClock",
    "LatencyDigestConsumer",
    "ParallelCollector",
    "PathDigestConsumer",
    "RecoveryStats",
    "ServiceStats",
    "Shard",
    "ShardRouter",
    "ShardStats",
    "Snapshot",
    "TelemetryRecord",
    "capture_checkpoint",
    "congestion_consumer_factory",
    "decode_latency_columns",
    "decode_latency_slice",
    "decode_path_columns",
    "latency_consumer_factory",
    "normalize_batch",
    "path_consumer_factory",
    "read_checkpoint",
    "restore_collector",
    "write_checkpoint",
]

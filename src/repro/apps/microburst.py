"""Congestion analysis: microburst detection (paper Table 2).

"Diagnosis of short-lived congestion events" from queue-occupancy
telemetry.  Each packet carries one uniformly-sampled hop's queue
occupancy, additively compressed to the bit budget; the Inference
Module keeps a sliding window per (flow, hop) and flags hops whose
recent occupancy spikes far above their long-run baseline -- the
classic microburst signature.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.approx import AdditiveCompressor, delta_for_bits
from repro.core.framework import QueryRuntime
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.hashing import GlobalHash, reservoir_carrier


class MicroburstRuntime(QueryRuntime):
    """Detect queue-occupancy microbursts per (flow, hop).

    Parameters
    ----------
    query:
        Dynamic per-flow query on QUEUE_OCCUPANCY.
    max_queue_bytes:
        Largest occupancy the additive codec must represent.
    window:
        Recent samples forming the detection window.
    threshold_factor:
        A hop is "bursting" when its window maximum exceeds
        ``threshold_factor`` times its long-run mean (plus the codec's
        quantisation error, so compression cannot self-trigger).
    """

    def __init__(
        self,
        query: Query,
        max_queue_bytes: int = 1 << 20,
        window: int = 32,
        threshold_factor: float = 4.0,
        seed: int = 0,
    ) -> None:
        super().__init__(query)
        delta = delta_for_bits(query.bit_budget, float(max_queue_bytes))
        self.codec = AdditiveCompressor(
            delta, bits=query.bit_budget, max_value=float(max_queue_bytes)
        )
        self.window = window
        self.threshold_factor = threshold_factor
        self.g = GlobalHash(seed, "microburst-reservoir")
        self._recent: Dict[Tuple[int, int], Deque[float]] = {}
        self._sum: Dict[Tuple[int, int], float] = {}
        self._count: Dict[Tuple[int, int], int] = {}

    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Reservoir-overwrite with this hop's compressed occupancy."""
        if self.g.uniform(hop.hop_number, ctx.packet_id) < 1.0 / hop.hop_number:
            return self.codec.encode(min(
                float(hop.queue_occupancy), self.codec.max_value
            ))
        return digest

    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Attribute the sample and update the per-hop window."""
        carrier = reservoir_carrier(self.g, ctx.packet_id, ctx.path_len)
        key = (ctx.flow_id, carrier)
        value = self.codec.decode(digest)
        recent = self._recent.setdefault(key, deque(maxlen=self.window))
        recent.append(value)
        self._sum[key] = self._sum.get(key, 0.0) + value
        self._count[key] = self._count.get(key, 0) + 1

    # -- Inference Module --------------------------------------------------

    def baseline_occupancy(self, flow_id: int, hop: int) -> float:
        """Long-run mean queue occupancy at (flow, hop)."""
        key = (flow_id, hop)
        if not self._count.get(key):
            return 0.0
        return self._sum[key] / self._count[key]

    def window_peak(self, flow_id: int, hop: int) -> float:
        """Max occupancy inside the recent window."""
        recent = self._recent.get((flow_id, hop))
        return max(recent) if recent else 0.0

    def is_bursting(self, flow_id: int, hop: int) -> bool:
        """Is the hop currently in a microburst?"""
        base = self.baseline_occupancy(flow_id, hop)
        floor = 2.0 * self.codec.delta  # quantisation noise floor
        return self.window_peak(flow_id, hop) > max(
            self.threshold_factor * base, floor
        )

    def bursting_hops(self, flow_id: int, path_len: int) -> List[int]:
        """All hops of the flow currently flagged as bursting."""
        return [
            hop for hop in range(1, path_len + 1)
            if self.is_bursting(flow_id, hop)
        ]

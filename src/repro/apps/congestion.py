"""Congestion feedback: per-packet max-aggregation (paper §3.2, §4.3).

HPCC needs, per ACK, the *bottleneck* (max) link utilisation along the
path.  PINT's insight (§4.3 Example #3): keep only the max in the
digest, compressed to 8 bits with multiplicative approximation and
randomized rounding so the feedback is unbiased on average.

Because the multiplicative code is monotone in the value, taking the
max of codes equals coding the max -- which is why the per-switch logic
is a single compare-and-write, feasible in one pipeline stage (§5).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.approx import MultiplicativeCompressor
from repro.core.framework import QueryRuntime
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.hashing import GlobalHash


class UtilizationCodec:
    """8-bit (by default) multiplicative codec for link utilisation.

    The paper's "8 bits support eps = 0.025": a (1+eps)^2 grid with 2^8
    exponents spans a ~3x10^5 dynamic range.  We anchor the top of the
    grid at ``max_util`` (transient utilisation can exceed 1 during
    incast) so everything down to ``max_util / range`` is resolved and
    smaller values round to the grid floor.
    """

    def __init__(
        self,
        bits: int = 8,
        epsilon: float = 0.025,
        max_util: float = 16.0,
        seed: int = 0,
    ) -> None:
        if max_util <= 0:
            raise ValueError("max_util must be positive")
        base = (1.0 + epsilon) ** 2
        # Scale so that max_util maps to the top exponent of the grid.
        self.scale = base ** ((1 << bits) - 1) / max_util
        self._comp = MultiplicativeCompressor(
            epsilon, bits=bits, max_value=max_util * self.scale
        )
        self.bits = bits
        self.epsilon = epsilon
        self.max_util = max_util
        self._grid = GlobalHash(seed, "util-rounding")

    def encode(self, utilization: float, *key_parts) -> int:
        """Compress a utilisation fraction (randomized rounding)."""
        scaled = min(utilization, self.max_util) * self.scale
        return self._comp.encode_randomized(scaled, self._grid, *key_parts)

    def encode_array(
        self, utilizations: np.ndarray, pids: np.ndarray, hop: int
    ) -> np.ndarray:
        """Vectorised :meth:`encode` keyed ``(pid, hop)``, one per lane.

        The rounding coins come from ``uniform_lanes`` -- per-lane
        packet id, shared hop number -- exactly the key order the
        scalar ``encode(util, pid, hop)`` folds, so both paths draw the
        same coin and emit the same code (property-tested).
        """
        scaled = (
            np.minimum(np.asarray(utilizations, dtype=np.float64), self.max_util)
            * self.scale
        )
        coins = self._grid.uniform_lanes(np.asarray(pids), hop)
        return self._comp.encode_randomized_array(scaled, coins)

    def decode(self, code: int) -> float:
        """Recover the approximate utilisation fraction."""
        return self._comp.decode(code) / self.scale

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decode`, lane-for-lane bit-identical.

        One table gather and one divide for a whole code column -- the
        shape the batch-decode engine and the replay scorer consume.
        """
        return self._comp.decode_array(codes) / self.scale


class CongestionRuntime(QueryRuntime):
    """Framework runtime carrying max path utilisation to the sink.

    ``on_sink`` invokes ``feedback`` -- in a full deployment this is the
    ACK path back to the HPCC sender; in the combined experiment it
    feeds the congestion-control statistics.
    """

    def __init__(
        self,
        query: Query,
        seed: int = 0,
        epsilon: float = 0.025,
        feedback: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        super().__init__(query)
        self.codec = UtilizationCodec(query.bit_budget, epsilon, seed=seed)
        self.feedback = feedback
        self.last_feedback: Dict[int, float] = {}
        self.feedback_count = 0

    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Keep the max of the digest and this hop's encoded utilisation."""
        code = self.codec.encode(
            hop.egress_tx_utilization, ctx.packet_id, hop.hop_number
        )
        return max(digest, code)

    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Deliver the decoded bottleneck utilisation."""
        value = self.codec.decode(digest)
        self.last_feedback[ctx.flow_id] = value
        self.feedback_count += 1
        if self.feedback is not None:
            self.feedback(ctx.flow_id, value)

    def bottleneck(self, flow_id: int) -> Optional[float]:
        """Latest decoded bottleneck utilisation for a flow."""
        return self.last_feedback.get(flow_id)

"""Frequent-values aggregation: the second dynamic per-flow query.

Theorem 2 of the paper: after O(k / eps^2) packets, PINT reports every
value appearing in at least a theta-fraction of a (flow, hop) value
stream and nothing below (theta - eps), using O(k / eps) space.  The
pipeline is the same distributed reservoir sample as the latency query;
the Recording Module feeds a SpaceSaving sketch per (flow, hop) instead
of a quantile sketch.  Typical uses: dominant queue-congestion status,
most common egress port (load-imbalance diagnosis, Table 2).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core.framework import QueryRuntime
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.hashing import GlobalHash, reservoir_carrier
from repro.sketch import SpaceSaving


class FrequentValueRuntime(QueryRuntime):
    """Report theta-frequent values of each (flow, hop) stream.

    Values must fit the query's bit budget (they are carried verbatim;
    use :class:`~repro.approx.MultiplicativeCompressor` upstream for
    wide values).

    Parameters
    ----------
    query:
        The dynamic per-flow query; ``space_budget`` bounds the total
        SpaceSaving counters per flow (split across hops, §4.1).
    """

    def __init__(self, query: Query, seed: int = 0) -> None:
        super().__init__(query)
        self.g = GlobalHash(seed, "frequent-reservoir")
        self._sketches: Dict[Tuple[int, int], SpaceSaving] = {}

    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Reservoir-overwrite with this hop's value."""
        if self.g.uniform(hop.hop_number, ctx.packet_id) < 1.0 / hop.hop_number:
            return int(hop.get(self.query.value_type)) & (
                (1 << self.query.bit_budget) - 1
            )
        return digest

    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Attribute the sample to its hop; update its sketch."""
        carrier = reservoir_carrier(self.g, ctx.packet_id, ctx.path_len)
        key = (ctx.flow_id, carrier)
        sketch = self._sketches.get(key)
        if sketch is None:
            budget = self.query.space_budget or 64 * max(1, ctx.path_len)
            capacity = max(4, budget // max(1, ctx.path_len))
            sketch = SpaceSaving(capacity)
            self._sketches[key] = sketch
        sketch.update(digest)

    # -- Inference Module --------------------------------------------------

    def heavy_values(
        self, flow_id: int, hop: int, theta: float
    ) -> List[Tuple[Hashable, float]]:
        """Values with frequency >= theta at (flow, hop), with their
        estimated frequencies (fractions of the hop's sampled stream)."""
        sketch = self._sketches.get((flow_id, hop))
        if sketch is None or sketch.n == 0:
            return []
        return [
            (value, count / sketch.n)
            for value, count in sketch.heavy_hitters(theta)
        ]

    def samples_at(self, flow_id: int, hop: int) -> int:
        """Samples attributed to (flow, hop)."""
        sketch = self._sketches.get((flow_id, hop))
        return sketch.n if sketch else 0

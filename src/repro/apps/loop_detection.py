"""Routing-loop detection (paper Appendix A.4, Algorithm 2).

A switch about to sample first checks whether the packet's digest
already equals its own hash ``h(s, p_j)`` -- if the packet looped back,
the match fires.  Random 2^-b matches cause false positives, so the
packet carries a small counter ``c``: only after ``T`` consecutive
matches is a LOOP reported, dropping the false-report rate to ~2^-b(T+1)
per packet while adding only ceil(log2(T+1)) bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hashing import GlobalHash


@dataclass
class LoopPacketState:
    """The digest + counter a packet carries for loop detection."""

    digest: int = 0
    counter: int = 0


class LoopDetector:
    """Per-switch loop-detection logic (Algorithm 2).

    Parameters
    ----------
    digest_bits:
        Hash width b; paper examples: b=15, T=1 (16 bits total) or
        b=14, T=3.
    threshold:
        Matches required before reporting (T).
    """

    def __init__(self, digest_bits: int = 15, threshold: int = 1, seed: int = 0):
        if digest_bits < 1:
            raise ValueError("digest_bits must be >= 1")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.digest_bits = digest_bits
        self.threshold = threshold
        self.h = GlobalHash(seed, "loop-h")
        self.g = GlobalHash(seed, "loop-g")

    @property
    def bit_overhead(self) -> int:
        """Digest plus counter bits on each packet."""
        counter_bits = max(1, (self.threshold + 1 - 1).bit_length())
        return self.digest_bits + counter_bits

    def on_switch(
        self,
        packet_id: int,
        switch_id: int,
        hop_number: int,
        state: LoopPacketState,
    ) -> bool:
        """Process the packet at one switch; True means LOOP reported."""
        mine = self.h.bits(self.digest_bits, switch_id, packet_id)
        if state.digest == mine:
            if state.counter == self.threshold:
                return True
            state.counter += 1
        if state.counter == 0 and self.g.uniform(hop_number, packet_id) < (
            1.0 / hop_number
        ):
            state.digest = mine
        return False

    def run_path(
        self, packet_id: int, switch_ids: Sequence[int]
    ) -> Optional[int]:
        """Send one packet along a (possibly looping) switch sequence.

        Returns the 0-based position at which a loop was reported, or
        None.  A looping route is expressed simply by repeating switch
        IDs in ``switch_ids``.
        """
        state = LoopPacketState()
        for idx, sid in enumerate(switch_ids):
            if self.on_switch(packet_id, sid, idx + 1, state):
                return idx
        return None

    def false_positive_rate(
        self, path: Sequence[int], num_packets: int, seed_base: int = 0
    ) -> float:
        """Measured false-report rate on a loop-free path."""
        if len(set(path)) != len(path):
            raise ValueError("path must be loop-free for an FP measurement")
        reports = sum(
            self.run_path(seed_base + pid, path) is not None
            for pid in range(num_packets)
        )
        return reports / num_packets

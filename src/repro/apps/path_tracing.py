"""Path tracing: static per-flow aggregation (paper §3.2, §4.2, §6.3).

Two surfaces:

* :class:`PathTracer` -- standalone harness over a topology: how many
  packets does PINT need to recover a flow's switch path (the Fig. 10
  quantity), for a given bit budget / hash count / typical diameter d.
* :class:`PathTracingRuntime` -- the Encoding/Recording modules plugged
  into :class:`repro.core.PINTFramework` for concurrent-query runs,
  operating hop-by-hop on live packets.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coding import (
    CodecContext,
    CodingScheme,
    DistributedMessage,
    HashDecoder,
    multilayer_scheme,
    pack_reps,
    packet_count_distribution,
    unpack_reps,
)
from repro.coding.schemes import BASELINE
from repro.coding.simulate import TrialStats
from repro.core.framework import QueryRuntime
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.net.topology import Topology


class PathTracer:
    """Monte-Carlo path-tracing harness over a topology.

    Parameters
    ----------
    topology:
        Supplies the switch-ID universe V and concrete paths.
    digest_bits:
        Per-hash budget b (1, 4 or 8 in the paper's Fig. 10).
    num_hashes:
        Independent hash instantiations (2 for the paper's 2x(b=8)).
    d:
        Typical path length the scheme is tuned for; the paper uses
        d=10 on ISP topologies and d=5 on the fat-tree.
    scheme:
        Optional override of the coding scheme (defaults to the paper's
        Baseline + XOR-layer structure for the given d).
    """

    def __init__(
        self,
        topology: Topology,
        digest_bits: int = 8,
        num_hashes: int = 1,
        d: int = 10,
        scheme: Optional[CodingScheme] = None,
        seed: int = 0,
        use_adjacency: bool = False,
    ) -> None:
        self.topology = topology
        self.digest_bits = digest_bits
        self.num_hashes = num_hashes
        self.scheme = scheme if scheme is not None else multilayer_scheme(d)
        self.seed = seed
        self.universe = topology.switch_universe()
        #: Topology-aware inference: exploit switch adjacency to narrow
        #: candidate sets (an extension beyond the paper's decoder).
        self.adjacency = topology.switch_adjacency() if use_adjacency else None

    @property
    def bit_overhead(self) -> int:
        """Digest bits per packet."""
        return self.digest_bits * self.num_hashes

    def packets_for_path(
        self, path: Sequence[int], trials: int = 50, seed_offset: int = 0
    ) -> TrialStats:
        """Packets-to-decode distribution for one concrete switch path."""
        message = DistributedMessage.from_path(path, self.universe)
        return packet_count_distribution(
            message,
            self.scheme,
            trials=trials,
            digest_bits=self.digest_bits,
            num_hashes=self.num_hashes,
            seed=self.seed + seed_offset,
            mode="hash",
            adjacency=self.adjacency,
        )

    def packets_vs_path_length(
        self,
        lengths: Sequence[int],
        trials: int = 30,
        rng: Optional[random.Random] = None,
    ) -> Dict[int, TrialStats]:
        """The Fig. 10 sweep: packet counts per path length."""
        rng = rng if rng is not None else random.Random(self.seed)
        out: Dict[int, TrialStats] = {}
        for idx, hops in enumerate(lengths):
            src, dst = self.topology.pair_at_distance(hops, rng)
            path = self.topology.switch_path(src, dst)
            out[hops] = self.packets_for_path(path, trials, seed_offset=1000 * idx)
        return out


class PathTracingRuntime(QueryRuntime):
    """Framework runtime: hop-by-hop encoding + per-flow peeling decode.

    ``on_hop`` is exactly the switch pipeline of §5 (choose layer,
    compute g, hash the switch ID to the bit budget, write/xor the
    digest); ``on_sink`` feeds the per-flow :class:`HashDecoder`.
    """

    def __init__(
        self,
        query: Query,
        universe: Sequence[int],
        d: int,
        num_hashes: int = 1,
        seed: int = 0,
        scheme: Optional[CodingScheme] = None,
    ) -> None:
        super().__init__(query)
        if query.bit_budget % num_hashes:
            raise ValueError("bit budget must split evenly across hashes")
        self.universe = tuple(universe)
        self.scheme = scheme if scheme is not None else multilayer_scheme(d)
        self.hash_bits = query.bit_budget // num_hashes
        self.ctx = CodecContext(self.scheme, self.hash_bits, num_hashes, seed)
        self._decoders: Dict[int, HashDecoder] = {}
        self._flow_paths: Dict[int, int] = {}

    # -- digest slicing: reps packed low-to-high inside the query slice --

    def _unpack(self, digest: int) -> List[int]:
        return list(unpack_reps(digest, self.hash_bits, self.ctx.num_hashes))

    def _pack(self, reps: Sequence[int]) -> int:
        return pack_reps(reps, self.hash_bits)

    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Switch-side encoding (stateless, hash-driven)."""
        pid = ctx.packet_id
        layer_idx = self.ctx.layer_of(pid)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        reps = self._unpack(digest)
        if layer.kind == BASELINE:
            if g.uniform(hop.hop_number, pid) < 1.0 / hop.hop_number:
                reps = [
                    self.ctx.value_digest(rep, pid, hop.switch_id)
                    for rep in range(self.ctx.num_hashes)
                ]
        elif g.uniform(hop.hop_number, pid) < layer.xor_p:
            for rep in range(self.ctx.num_hashes):
                reps[rep] ^= self.ctx.value_digest(rep, pid, hop.switch_id)
        return self._pack(reps)

    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Recording Module: feed the flow's decoder."""
        decoder = self._decoders.get(ctx.flow_id)
        if decoder is None:
            decoder = HashDecoder(
                ctx.path_len,
                self.universe,
                self.ctx.scheme,
                self.ctx.digest_bits,
                self.ctx.num_hashes,
                self.ctx.seed,
            )
            self._decoders[ctx.flow_id] = decoder
        decoder.observe(ctx.packet_id, tuple(self._unpack(digest)))

    # -- Inference Module -------------------------------------------------

    def flow_path(self, flow_id: int) -> Optional[List[int]]:
        """The flow's decoded switch path, or None if incomplete."""
        decoder = self._decoders.get(flow_id)
        if decoder is None or not decoder.is_complete:
            return None
        return decoder.path()

    def progress(self, flow_id: int) -> Tuple[int, int]:
        """(decoded hops, total hops) for a flow."""
        decoder = self._decoders.get(flow_id)
        if decoder is None:
            return (0, 0)
        return (decoder.k - decoder.missing, decoder.k)

    def route_change_signals(self, flow_id: int) -> int:
        """Digests inconsistent with the decoded path (paper §7).

        A Baseline packet whose digest contradicts an already-decoded
        hop signals a route change / multipath with probability
        1 - 2^-q per packet; callers can reset the flow's decoder when
        this counter starts climbing.
        """
        decoder = self._decoders.get(flow_id)
        return decoder.inconsistencies if decoder is not None else 0

    def reset_flow(self, flow_id: int) -> None:
        """Drop a flow's decoder state (e.g. after a detected reroute)."""
        self._decoders.pop(flow_id, None)

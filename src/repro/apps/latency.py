"""Latency quantiles: dynamic per-flow aggregation (paper §3.2, §6.2).

Each packet carries the (compressed) latency of one uniformly-sampled
hop via distributed Reservoir Sampling (§4.1, "Example #1"); the
Recording Module attributes the sample to its hop by recomputing the
global hash and feeds a per-(flow, hop) store -- either a raw sample
list ("PINT" in Fig. 9) or a KLL sketch ("PINT_S").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.approx import MultiplicativeCompressor, epsilon_for_bits
from repro.core.framework import QueryRuntime
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.hashing import GlobalHash, reservoir_carrier
from repro.sketch import KLLSketch, exact_quantile


class LatencyCompressor:
    """Maps latency seconds onto a b-bit multiplicative grid.

    Latencies are quantised in nanoseconds; epsilon is auto-fitted so
    the largest representable latency (``max_latency_s``) encodes within
    the budget (the §4.3 "32-bit latency into b bits" trick).
    """

    def __init__(self, bits: int, max_latency_s: float = 4.0, seed: int = 0):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        max_ns = max_latency_s * 1e9
        eps = epsilon_for_bits(bits, max_ns) * 1.0001
        self._comp = MultiplicativeCompressor(eps, bits=bits, max_value=max_ns)
        self._grid = GlobalHash(seed, "latency-rounding")

    @property
    def epsilon(self) -> float:
        """The multiplicative error of one encoded sample."""
        return self._comp.epsilon

    def encode(self, latency_s: float, *key_parts) -> int:
        """Compress one latency (randomized rounding, unbiased)."""
        return self._comp.encode_randomized(latency_s * 1e9, self._grid, *key_parts)

    def decode(self, code: int) -> float:
        """Recover the approximate latency in seconds."""
        return self._comp.decode(code) * 1e-9

    def decode_array(self, codes) -> "np.ndarray":
        """Vectorised :meth:`decode`, lane-for-lane bit-identical."""
        return self._comp.decode_array(codes) * 1e-9


class HopLatencyStore:
    """Per-(flow, hop) sample store: raw list or KLL sketch."""

    def __init__(self, sketch_size: Optional[int] = None) -> None:
        self.sketch_size = sketch_size
        self._raw: List[float] = []
        self._sketch: Optional[KLLSketch] = (
            KLLSketch(k_param=sketch_size) if sketch_size else None
        )
        self.count = 0

    def add(self, latency_s: float) -> None:
        """Record one decoded latency sample."""
        self.count += 1
        if self._sketch is not None:
            self._sketch.update(latency_s)
        else:
            self._raw.append(latency_s)

    def add_array(self, latencies_s: np.ndarray) -> None:
        """Record a column of decoded samples (the batch-decode path).

        Raw mode appends the identical floats in the identical order
        as per-sample :meth:`add`; sketch mode routes through
        :meth:`KLLSketch.extend_array` (same guarantees, different
        compaction coin order -- see that method's note).
        """
        vals = np.asarray(latencies_s, dtype=np.float64)
        self.count += int(vals.size)
        if self._sketch is not None:
            self._sketch.extend_array(vals)
        else:
            self._raw.extend(vals.tolist())

    def quantile(self, phi: float) -> float:
        """Estimated phi-quantile of this hop's latency stream."""
        if self._sketch is not None:
            return self._sketch.quantile(phi)
        return exact_quantile(self._raw, phi)

    def stored_items(self) -> int:
        """Digests currently held (space accounting for Fig. 9)."""
        if self._sketch is not None:
            return self._sketch.size
        return len(self._raw)


class LatencyRuntime(QueryRuntime):
    """Framework runtime for the median/tail-latency query."""

    def __init__(
        self,
        query: Query,
        seed: int = 0,
        max_latency_s: float = 4.0,
        sketch_size: Optional[int] = None,
    ) -> None:
        super().__init__(query)
        self.compressor = LatencyCompressor(query.bit_budget, max_latency_s, seed)
        self.g = GlobalHash(seed, "latency-reservoir")
        self.sketch_size = sketch_size if sketch_size else query.space_budget
        self._stores: Dict[Tuple[int, int], HopLatencyStore] = {}

    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Reservoir-overwrite the digest with this hop's latency code."""
        if self.g.uniform(hop.hop_number, ctx.packet_id) < 1.0 / hop.hop_number:
            return self.compressor.encode(
                hop.hop_latency, ctx.packet_id, hop.hop_number
            )
        return digest

    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Attribute the sample to its carrier hop and store it."""
        carrier = reservoir_carrier(self.g, ctx.packet_id, ctx.path_len)
        key = (ctx.flow_id, carrier)
        store = self._stores.get(key)
        if store is None:
            per_hop = None
            if self.sketch_size:
                # Split the per-flow space budget evenly across hops (§4.1).
                per_hop = max(4, self.sketch_size // max(1, ctx.path_len))
            store = HopLatencyStore(per_hop)
            self._stores[key] = store
        store.add(self.compressor.decode(digest))

    # -- Inference Module --------------------------------------------------

    def quantile(self, flow_id: int, hop: int, phi: float) -> float:
        """Estimated phi-quantile of (flow, hop) latency."""
        return self._stores[(flow_id, hop)].quantile(phi)

    def samples_at(self, flow_id: int, hop: int) -> int:
        """Number of samples attributed to (flow, hop)."""
        store = self._stores.get((flow_id, hop))
        return store.count if store else 0


def simulate_latency_estimation(
    latencies_per_hop: Sequence[Sequence[float]],
    bits: int,
    num_packets: int,
    phi: float,
    sketch_size: Optional[int] = None,
    seed: int = 0,
    max_latency_s: float = 4.0,
) -> Dict[int, Tuple[float, float]]:
    """End-to-end Fig. 9 harness over synthetic per-hop latency streams.

    ``latencies_per_hop[i][j]`` is hop i+1's latency for packet j+1.
    Runs the full encode -> sample -> (sketch) -> quantile pipeline and
    returns per-hop (estimate, ground truth) at quantile ``phi``.
    """
    k = len(latencies_per_hop)
    if any(len(s) < num_packets for s in latencies_per_hop):
        raise ValueError("need num_packets latencies per hop")
    comp = LatencyCompressor(bits, max_latency_s, seed)
    g = GlobalHash(seed, "latency-reservoir")
    stores = {
        hop: HopLatencyStore(sketch_size) for hop in range(1, k + 1)
    }
    for pid in range(1, num_packets + 1):
        digest = 0
        wrote = False
        for hop in range(1, k + 1):
            if g.uniform(hop, pid) < 1.0 / hop:
                digest = comp.encode(latencies_per_hop[hop - 1][pid - 1], pid, hop)
                wrote = True
        if not wrote:
            continue
        carrier = reservoir_carrier(g, pid, k)
        stores[carrier].add(comp.decode(digest))
    out: Dict[int, Tuple[float, float]] = {}
    for hop in range(1, k + 1):
        truth = exact_quantile(
            list(latencies_per_hop[hop - 1][:num_packets]), phi
        )
        est = (
            stores[hop].quantile(phi)
            if stores[hop].count
            else float("nan")
        )
        out[hop] = (est, truth)
    return out

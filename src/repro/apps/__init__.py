"""The paper's use-case applications (§3.2, §6) on top of the core.

* :class:`PathTracer` / :class:`PathTracingRuntime` -- static per-flow
  aggregation (§6.3).
* :class:`LatencyRuntime` / :func:`simulate_latency_estimation` --
  dynamic per-flow latency quantiles (§6.2).
* :class:`CongestionRuntime` / :class:`UtilizationCodec` -- per-packet
  bottleneck-utilisation feedback for HPCC (§6.1).
* :class:`LoopDetector` -- the Appendix A.4 extension.
"""

from repro.apps.congestion import CongestionRuntime, UtilizationCodec
from repro.apps.frequent import FrequentValueRuntime
from repro.apps.latency import (
    HopLatencyStore,
    LatencyCompressor,
    LatencyRuntime,
    simulate_latency_estimation,
)
from repro.apps.loop_detection import LoopDetector, LoopPacketState
from repro.apps.microburst import MicroburstRuntime
from repro.apps.path_tracing import PathTracer, PathTracingRuntime

__all__ = [
    "PathTracer",
    "PathTracingRuntime",
    "LatencyRuntime",
    "LatencyCompressor",
    "HopLatencyStore",
    "simulate_latency_estimation",
    "CongestionRuntime",
    "UtilizationCodec",
    "FrequentValueRuntime",
    "LoopDetector",
    "LoopPacketState",
    "MicroburstRuntime",
]

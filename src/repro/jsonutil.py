"""One JSON sanitiser for every wire and artifact writer.

Strict JSON has no ``NaN`` / ``Infinity`` tokens, yet the codebase
produces non-finite floats in entirely legitimate places: a median
over an empty congestion set, the mean coverage of an idle collector,
a zero-second timing division.  Both the query port
(:mod:`repro.service.query`) and the bench artifact writers
(``benchmarks/benchlib``) used to carry their own private copy of the
same "non-finite -> null, NumPy -> native" walk; this module is the
single shared implementation they both import, so the two surfaces can
never drift apart on what a degenerate value serialises as.

The contract: the returned structure round-trips through
``json.dumps(..., allow_nan=False)`` for any input built from JSON
scalars, containers, NumPy arrays/scalars and stringifiable leaves.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["jsonable"]


def jsonable(obj: Any) -> Any:
    """Coerce a value into plain JSON types, recursively.

    * non-finite floats become ``None`` (JSON ``null``);
    * dict keys are stringified (JSON object keys are strings -- this
      matches what ``json.dump`` would emit for int keys anyway);
    * lists/tuples become lists;
    * NumPy arrays and scalars are unwrapped via ``tolist()`` and then
      re-walked (a float64 NaN inside an array still becomes null);
    * anything else falls back to ``str(obj)`` rather than crashing a
      live query connection or an artifact write.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # NumPy array or scalar
        return jsonable(obj.tolist())
    return str(obj)

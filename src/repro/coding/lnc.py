"""Linear Network Coding comparator (paper §4.2, "Comparison with LNC").

LNC [32] xors *every* block into the digest independently with
probability 1/2 (mask drawn from the global hash), and decodes by
Gaussian elimination over GF(2): once the collected masks span the full
k-dimensional space -- after ~ k + log2(k) packets -- the message is
recovered.  The paper notes its drawbacks: O(k^3) decoding and no
compatibility with the hash-compressed digests; we implement it as the
near-optimal raw-mode reference line for the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coding.message import DistributedMessage
from repro.exceptions import DecodingError
from repro.hashing import GlobalHash


class LNCEncoder:
    """Random-linear-combination encoder over the message blocks."""

    def __init__(self, message: DistributedMessage, seed: int = 0) -> None:
        self.message = message
        self.mask_hash = GlobalHash(seed, "lnc-mask")

    def coefficient_mask(self, packet_id: int) -> int:
        """k-bit mask: bit i set means block i+1 is xor-ed in (p = 1/2)."""
        k = self.message.k
        mask = 0
        for word_idx in range((k + 63) // 64):
            mask |= self.mask_hash.raw(word_idx, packet_id) << (64 * word_idx)
        return mask & ((1 << k) - 1)

    def encode(self, packet_id: int) -> Tuple[int, ...]:
        """Digest = xor of the blocks selected by the packet's mask."""
        mask = self.coefficient_mask(packet_id)
        digest = 0
        for i, block in enumerate(self.message.blocks):
            if (mask >> i) & 1:
                digest ^= block
        return (digest,)


class LNCDecoder:
    """Incremental GF(2) Gaussian elimination over collected digests.

    Rows are (mask, value) pairs; new rows are reduced against the
    current echelon form and inserted at their pivot.  The system is
    solvable when k independent rows exist; back-substitution then
    yields every block.
    """

    def __init__(self, k: int, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.mask_hash = GlobalHash(seed, "lnc-mask")
        #: pivot bit index -> (mask, value) with that pivot as lowest bit.
        self._rows: Dict[int, Tuple[int, int]] = {}
        self.packets_seen = 0

    @property
    def rank(self) -> int:
        """Current dimension of the collected row space."""
        return len(self._rows)

    @property
    def missing(self) -> int:
        """k - rank: how far from solvable."""
        return self.k - self.rank

    @property
    def is_complete(self) -> bool:
        """True when the system has full rank."""
        return self.rank == self.k

    def _mask_for(self, packet_id: int) -> int:
        mask = 0
        for word_idx in range((self.k + 63) // 64):
            mask |= self.mask_hash.raw(word_idx, packet_id) << (64 * word_idx)
        return mask & ((1 << self.k) - 1)

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one digest; reduce its row into the echelon form."""
        self.packets_seen += 1
        mask = self._mask_for(packet_id)
        value = digest[0]
        while mask:
            pivot = (mask & -mask).bit_length() - 1
            if pivot not in self._rows:
                self._rows[pivot] = (mask, value)
                return
            row_mask, row_value = self._rows[pivot]
            mask ^= row_mask
            value ^= row_value
        # Row was linearly dependent; nothing learned.

    def path(self) -> List[int]:
        """Back-substitute and return all k blocks (raises if rank < k)."""
        if not self.is_complete:
            raise DecodingError(f"rank {self.rank} < k={self.k}")
        solution = [0] * self.k
        for pivot in sorted(self._rows, reverse=True):
            mask, value = self._rows[pivot]
            acc = value
            probe = mask >> (pivot + 1)
            idx = pivot + 1
            while probe:
                if probe & 1:
                    acc ^= solution[idx]
                probe >>= 1
                idx += 1
            solution[pivot] = acc
        return solution

"""Encoding schemes: Baseline, XOR, Hybrid interleave, Multi-layer.

A *scheme* is a probability distribution over layers plus each layer's
behaviour (paper §4.2 and Algorithm 1):

* layer 0 ("baseline") runs distributed Reservoir Sampling -- the packet
  ends up carrying a single uniformly-chosen hop's block;
* XOR layers xor each hop's block into the digest independently with a
  per-layer probability ``p_l``.

All layer and action decisions are driven by global hashes of the packet
id, so the encoder objects are stateless and the decoder can replay
every decision -- the paper's implicit-coordination requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.analysis.iterated import (
    baseline_share,
    hybrid_xor_probability,
    layer_probability,
    num_xor_layers,
)
from repro.hashing import GlobalHash


#: Layer kinds.
BASELINE = "baseline"
XOR = "xor"


@dataclass(frozen=True)
class Layer:
    """One layer of a coding scheme.

    ``kind`` is :data:`BASELINE` (reservoir, ``xor_p`` ignored) or
    :data:`XOR` (independent xor with probability ``xor_p`` per hop).
    """

    kind: str
    xor_p: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (BASELINE, XOR):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if self.kind == XOR and not 0.0 < self.xor_p <= 1.0:
            raise ValueError("xor layers need xor_p in (0, 1]")


@dataclass(frozen=True)
class CodingScheme:
    """A weighted set of layers; packets hash-select one layer each.

    Attributes
    ----------
    layers:
        The layer definitions.
    shares:
        Matching selection probabilities (must sum to 1).
    name:
        Human-readable label used by benchmarks.
    """

    layers: tuple
    shares: tuple
    name: str = "scheme"

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.shares):
            raise ValueError("layers and shares must align")
        if not self.layers:
            raise ValueError("scheme needs at least one layer")
        if abs(sum(self.shares) - 1.0) > 1e-9:
            raise ValueError("shares must sum to 1")
        if any(s < 0 for s in self.shares):
            raise ValueError("shares must be non-negative")

    def layer_index(self, select: GlobalHash, packet_id: int) -> int:
        """Which layer this packet serves (identical at every hop)."""
        u = select.uniform(packet_id)
        acc = 0.0
        for idx, share in enumerate(self.shares):
            acc += share
            if u < acc:
                return idx
        return len(self.shares) - 1


def baseline_scheme() -> CodingScheme:
    """Pure Baseline: every packet reservoir-samples one hop (§4.2)."""
    return CodingScheme((Layer(BASELINE),), (1.0,), name="baseline")


def xor_scheme(p: float) -> CodingScheme:
    """Pure XOR at probability ``p`` (the paper plots p = 1/d)."""
    return CodingScheme((Layer(XOR, p),), (1.0,), name=f"xor(p={p:g})")


def hybrid_scheme(d: int, tau: float = 0.75) -> CodingScheme:
    """Interleaved Baseline + one XOR layer (§4.2 "Interleaving").

    The paper sets tau = 3/4 and xor probability
    ``log log d / log d`` (or ``1 / log d`` when d <= 15, footnote 8).
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    if not 0.0 < tau < 1.0:
        raise ValueError("tau must be in (0, 1)")
    p = hybrid_xor_probability(d)
    return CodingScheme(
        (Layer(BASELINE), Layer(XOR, p)),
        (tau, 1.0 - tau),
        name=f"hybrid(d={d})",
    )


def multilayer_scheme(d: int) -> CodingScheme:
    """Algorithm 1: Baseline layer + L XOR layers with tower probabilities.

    tau = loglog*d / (1 + loglog*d); the remaining (1 - tau) is split
    evenly across layers l = 1..L with p_l = (e ↑↑ (l-1)) / d.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    num_layers = num_xor_layers(d)
    tau = baseline_share(d)
    layers: List[Layer] = [Layer(BASELINE)]
    shares: List[float] = [tau]
    xor_share = (1.0 - tau) / num_layers
    for level in range(1, num_layers + 1):
        layers.append(Layer(XOR, layer_probability(level, d)))
        shares.append(xor_share)
    return CodingScheme(tuple(layers), tuple(shares), name=f"multilayer(d={d})")


def improved_multilayer_scheme(d: int) -> CodingScheme:
    """Appendix A.3 revision: tau' = (1 + loglog*d) / (2 + loglog*d).

    A strictly better constant on the additive O(k) term; offered for
    the ablation benchmark.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    num_layers = num_xor_layers(d)
    lls = math.log2(max(2, num_layers + 1))  # smooth surrogate of loglog*d
    tau = (1.0 + lls) / (2.0 + lls)
    layers: List[Layer] = [Layer(BASELINE)]
    shares: List[float] = [tau]
    xor_share = (1.0 - tau) / num_layers
    for level in range(1, num_layers + 1):
        layers.append(Layer(XOR, layer_probability(level, d)))
        shares.append(xor_share)
    return CodingScheme(tuple(layers), tuple(shares), name=f"multilayer+(d={d})")

"""Monte-Carlo harnesses over encoder/decoder pairs.

These produce the quantities the paper plots:

* :func:`packets_to_decode` -- packets until full decode (Fig. 10 data);
* :func:`decode_progress` -- E[missing hops] vs packets (Fig. 5a);
* :func:`decode_probability` -- P[decoded] vs packets (Fig. 5b);
* :func:`packet_count_distribution` -- mean / percentiles over trials.

Each trial re-seeds the global hashes, which is exactly how a new flow
(new packet-id space) behaves in the real system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.coding.decoder import make_decoder
from repro.coding.encoder import PathEncoder
from repro.coding.message import DistributedMessage
from repro.coding.schemes import CodingScheme
from repro.exceptions import DecodeTimeoutError


def packets_to_decode(
    message: DistributedMessage,
    scheme: CodingScheme,
    digest_bits: int = 8,
    num_hashes: int = 1,
    seed: int = 0,
    max_packets: int = 1_000_000,
    mode: str = "auto",
    adjacency=None,
) -> int:
    """Number of packets until the decoder recovers the whole message.

    Raises ``RuntimeError`` if ``max_packets`` is not enough (a test
    guard; with sane parameters this never triggers).  ``adjacency``
    enables the topology-aware Inference Module (hash mode).
    """
    encoder = PathEncoder(message, scheme, digest_bits, mode, num_hashes, seed)
    decoder = make_decoder(encoder, adjacency=adjacency)
    for packet_id in range(1, max_packets + 1):
        decoder.observe(packet_id, encoder.encode(packet_id))
        if decoder.is_complete:
            return packet_id
    raise DecodeTimeoutError(f"not decoded after {max_packets} packets")


def decode_progress(
    message: DistributedMessage,
    scheme: CodingScheme,
    packets: int,
    digest_bits: int = 8,
    num_hashes: int = 1,
    seed: int = 0,
    mode: str = "auto",
) -> List[int]:
    """``missing`` after each of the first ``packets`` packets (Fig. 5a)."""
    encoder = PathEncoder(message, scheme, digest_bits, mode, num_hashes, seed)
    decoder = make_decoder(encoder)
    curve = []
    for packet_id in range(1, packets + 1):
        decoder.observe(packet_id, encoder.encode(packet_id))
        curve.append(decoder.missing)
    return curve


@dataclass
class TrialStats:
    """Summary of packets-to-decode over independent trials."""

    counts: List[int]

    @property
    def mean(self) -> float:
        """Average packets to decode."""
        return sum(self.counts) / len(self.counts)

    def percentile(self, q: float) -> int:
        """q-percentile (q in [0, 100]) of packets to decode."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        ordered = sorted(self.counts)
        idx = min(len(ordered) - 1, max(0, math.ceil(q / 100 * len(ordered)) - 1))
        return ordered[idx]

    @property
    def median(self) -> int:
        """50th percentile."""
        return self.percentile(50)


def packet_count_distribution(
    message: DistributedMessage,
    scheme: CodingScheme,
    trials: int = 100,
    digest_bits: int = 8,
    num_hashes: int = 1,
    seed: int = 0,
    max_packets: int = 1_000_000,
    mode: str = "auto",
    adjacency=None,
) -> TrialStats:
    """Packets-to-decode distribution over ``trials`` fresh flows."""
    counts = [
        packets_to_decode(
            message, scheme, digest_bits, num_hashes, seed + trial,
            max_packets, mode, adjacency,
        )
        for trial in range(trials)
    ]
    return TrialStats(counts)


def decode_probability(
    message: DistributedMessage,
    scheme: CodingScheme,
    packet_grid: Sequence[int],
    trials: int = 50,
    digest_bits: int = 8,
    num_hashes: int = 1,
    seed: int = 0,
    mode: str = "auto",
) -> List[float]:
    """P[message decoded within n packets] for each n in packet_grid."""
    grid = list(packet_grid)
    done_at = [
        packets_to_decode(
            message,
            scheme,
            digest_bits,
            num_hashes,
            seed + trial,
            max_packets=max(grid) * 20 + 1000,
            mode=mode,
        )
        for trial in range(trials)
    ]
    return [sum(1 for d in done_at if d <= n) / trials for n in grid]


def average_progress(
    message: DistributedMessage,
    scheme: CodingScheme,
    packets: int,
    trials: int = 20,
    digest_bits: int = 8,
    num_hashes: int = 1,
    seed: int = 0,
    mode: str = "auto",
) -> List[float]:
    """E[missing hops] after each packet, averaged over trials (Fig. 5a)."""
    total = [0.0] * packets
    for trial in range(trials):
        curve = decode_progress(
            message, scheme, packets, digest_bits, num_hashes, seed + trial, mode
        )
        for i, m in enumerate(curve):
            total[i] += m
    return [t / trials for t in total]

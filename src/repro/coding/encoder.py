"""The per-switch Encoding Module for static aggregation (paper §4.2).

:class:`PathEncoder` simulates what the chain of switches does to one
packet's digest.  It supports the three digest representations the paper
describes:

* ``raw`` -- the block itself fits the budget and is written verbatim;
* ``hash`` -- blocks are wide (32-bit switch IDs) but drawn from a known
  universe V; the digest carries ``h(M_i, packet)`` ("Reducing the
  Bit-overhead using Hashing");
* ``fragment`` -- blocks are wide and V is unknown; each packet carries
  one hash-chosen b-bit fragment ("Reducing the Bit-overhead using
  Fragmentation").

"Multiple instantiations" (several independent smaller hashes per
packet, e.g. the paper's 2x(b=8) configuration) is the ``num_hashes``
parameter; the encoder then emits a tuple of digests whose total width
is ``num_hashes * digest_bits``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coding.message import DistributedMessage
from repro.coding.schemes import BASELINE, CodingScheme
from repro.hashing import (
    GlobalHash,
    cumulative_select_array,
    reservoir_carrier,
    reservoir_carrier_array,
    xor_acting_hops,
)

#: Digest representation modes.
RAW = "raw"
HASH = "hash"
FRAGMENT = "fragment"


def pack_reps(reps, digest_bits: int) -> int:
    """Pack per-hash digests into one int, rep 0 in the low bits.

    The wire layout of a "multiple instantiations" digest: ``reps[i]``
    occupies bits ``[i*b, (i+1)*b)``.  Shared by every component that
    serialises or parses packed digests (runtime, collector, tests) so
    the layout cannot drift between them.
    """
    mask = (1 << digest_bits) - 1
    out = 0
    for rep, val in enumerate(reps):
        out |= (val & mask) << (rep * digest_bits)
    return out


def unpack_reps(digest: int, digest_bits: int, num_hashes: int) -> Tuple[int, ...]:
    """Inverse of :func:`pack_reps`: split a packed digest into reps."""
    mask = (1 << digest_bits) - 1
    return tuple(
        (digest >> (rep * digest_bits)) & mask for rep in range(num_hashes)
    )


def pack_reps_array(reps: np.ndarray, digest_bits: int) -> np.ndarray:
    """Vectorised :func:`pack_reps` over a (n, num_hashes) digest matrix.

    Row-for-row identical to ``pack_reps(row, digest_bits)``; returns
    int64 -- the collector's digest column dtype.
    """
    mask = np.uint64((1 << digest_bits) - 1)
    out = np.zeros(reps.shape[0], dtype=np.uint64)
    for rep in range(reps.shape[1]):
        out |= (reps[:, rep].astype(np.uint64) & mask) << np.uint64(
            rep * digest_bits
        )
    return out.astype(np.int64)


def unpack_reps_array(
    digests: np.ndarray, digest_bits: int, num_hashes: int
) -> np.ndarray:
    """Vectorised :func:`unpack_reps` over a packed digest column.

    Row-for-row identical to ``unpack_reps(digest, digest_bits,
    num_hashes)``; returns a ``(n, num_hashes)`` uint64 matrix, the
    shape the batch decoders consume.
    """
    digs = np.asarray(digests).astype(np.uint64)
    mask = np.uint64((1 << digest_bits) - 1)
    out = np.empty((digs.shape[0], num_hashes), dtype=np.uint64)
    for rep in range(num_hashes):
        out[:, rep] = (digs >> np.uint64(rep * digest_bits)) & mask
    return out


class CodecContext:
    """Derived hash functions shared by encoder and decoder.

    Mirrors the paper's set-up: a layer-selection hash, one action hash
    ``g`` per layer, ``num_hashes`` value-compression hashes ``h``, and
    a fragment-selection hash.  Everything is derived deterministically
    from one seed, so a decoder constructed with the same seed replays
    the encoder's decisions exactly.
    """

    def __init__(
        self,
        scheme: CodingScheme,
        digest_bits: int,
        num_hashes: int = 1,
        seed: int = 0,
    ) -> None:
        if digest_bits < 1:
            raise ValueError("digest_bits must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.scheme = scheme
        self.digest_bits = digest_bits
        self.num_hashes = num_hashes
        self.seed = seed
        root = GlobalHash(seed, "pint")
        self.select = root.derive("layer-select")
        self.g: List[GlobalHash] = [
            root.derive(f"g-layer{idx}") for idx in range(len(scheme.layers))
        ]
        self.h: List[GlobalHash] = [
            root.derive(f"h-rep{rep}") for rep in range(num_hashes)
        ]
        self.frag = root.derive("fragment-select")

    def layer_of(self, packet_id: int) -> int:
        """The layer index this packet serves at every hop."""
        return self.scheme.layer_index(self.select, packet_id)

    def layer_of_array(self, packet_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`layer_of`, lane-for-lane identical.

        Replays :meth:`CodingScheme.layer_index` including its
        saturating fallback (lanes past the cumulative mass map to the
        last layer); shared by the batch encoder and the batch
        decoders so their layer replays cannot drift apart.
        """
        idx = cumulative_select_array(
            self.select.uniform_array(np.asarray(packet_ids)),
            self.scheme.shares,
        )
        idx[idx < 0] = len(self.scheme.shares) - 1
        return idx

    def value_digest(self, rep: int, packet_id: int, value: int) -> int:
        """h_rep(value, packet): the compressed digest contribution."""
        return self.h[rep].bits(self.digest_bits, packet_id, value)

    def fragment_index(self, packet_id: int, num_fragments: int) -> int:
        """Which fragment number this packet carries (hash-chosen)."""
        return self.frag.choice(num_fragments, packet_id)


class PathEncoder:
    """Encodes packets for one flow's fixed path.

    Parameters
    ----------
    message:
        The distributed message (per-hop blocks, optional universe).
    scheme:
        Layer structure (Baseline / XOR / Hybrid / Multi-layer).
    digest_bits:
        Per-hash digest width ``b`` (the query bit budget divided by
        ``num_hashes``).
    mode:
        ``"raw"``, ``"hash"``, ``"fragment"`` or ``"auto"``: auto picks
        hash when a universe is known, raw when blocks fit, fragment
        otherwise.
    num_hashes:
        Independent hash instantiations per packet (hash mode only).
    seed:
        Root seed for all derived global hashes.
    value_bits:
        Fragment mode only: value width the fragment count is derived
        from, overriding the message's own ``block_bits()``.  A sink
        decoding many paths shares one fragment layout derived from
        the universe-wide width; encoders must fragment against the
        same width or the sub-problems cannot line up.
    """

    def __init__(
        self,
        message: DistributedMessage,
        scheme: CodingScheme,
        digest_bits: int = 8,
        mode: str = "auto",
        num_hashes: int = 1,
        seed: int = 0,
        value_bits: Optional[int] = None,
    ) -> None:
        if mode == "auto":
            if message.universe is not None:
                mode = HASH
            elif message.block_bits() <= digest_bits:
                mode = RAW
            else:
                mode = FRAGMENT
        if mode not in (RAW, HASH, FRAGMENT):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == RAW and message.block_bits() > digest_bits:
            raise ValueError(
                f"raw mode needs blocks <= {digest_bits} bits; "
                f"got {message.block_bits()}"
            )
        if mode == HASH and message.universe is None:
            raise ValueError("hash mode needs a value universe")
        if mode != HASH and num_hashes != 1:
            raise ValueError("multiple hash instantiations need hash mode")
        self.message = message
        self.mode = mode
        self.ctx = CodecContext(scheme, digest_bits, num_hashes, seed)
        #: Number of fragments F = ceil(q / b) (1 unless fragment mode).
        self.num_fragments = 1
        if mode == FRAGMENT:
            width = message.block_bits()
            if value_bits is not None:
                if value_bits < width:
                    raise ValueError(
                        f"value_bits ({value_bits}) narrower than the "
                        f"widest block ({width} bits)"
                    )
                width = value_bits
            self.num_fragments = -(-width // digest_bits)

    @property
    def bit_overhead(self) -> int:
        """Total digest bits added to each packet."""
        return self.ctx.digest_bits * self.ctx.num_hashes

    def _contribution(self, packet_id: int, hop: int) -> Tuple[int, ...]:
        """What hop ``hop`` (1-based) would write for this packet."""
        value = self.message.blocks[hop - 1]
        if self.mode == HASH:
            return tuple(
                self.ctx.value_digest(rep, packet_id, value)
                for rep in range(self.ctx.num_hashes)
            )
        if self.mode == FRAGMENT:
            frag = self.ctx.fragment_index(packet_id, self.num_fragments)
            b = self.ctx.digest_bits
            return ((value >> (frag * b)) & ((1 << b) - 1),)
        return (value,)

    def step(
        self, packet_id: int, hop: int, digest: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """What switch ``hop`` (1-based) does to the digest in-flight.

        This is the actual per-switch Encoding Module: stateless, using
        only the packet id, the hop number (from TTL) and the switch's
        own block.  Folding ``step`` over hops 1..k from the zero digest
        equals :meth:`encode` exactly (tested property).
        """
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            if g.uniform(hop, packet_id) < 1.0 / hop:
                return self._contribution(packet_id, hop)
            return digest
        if g.uniform(hop, packet_id) < layer.xor_p:
            contribution = self._contribution(packet_id, hop)
            return tuple(
                digest[rep] ^ contribution[rep]
                for rep in range(self.ctx.num_hashes)
            )
        return digest

    def encode(self, packet_id: int) -> Tuple[int, ...]:
        """Run one packet through the whole path; return its digest(s).

        The returned tuple has ``num_hashes`` entries of ``digest_bits``
        bits each.  A packet no acting hop touched carries zeros (the
        PINT Source initialises the digest to the zero bitstring).
        """
        k = self.message.k
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            carrier = reservoir_carrier(g, packet_id, k)
            return self._contribution(packet_id, carrier)
        digest = [0] * self.ctx.num_hashes
        for hop in xor_acting_hops(g, packet_id, k, layer.xor_p):
            contribution = self._contribution(packet_id, hop)
            for rep in range(self.ctx.num_hashes):
                digest[rep] ^= contribution[rep]
        return tuple(digest)

    def encode_lanes(self, packet_ids, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` with per-lane block values.

        ``blocks`` has shape (n, k): each lane carries its *own* per-hop
        values, so callers can batch packets of many same-length paths
        through one call (the replay dataplane's signature grouping).
        Returns a (n, num_hashes) uint64 matrix equal,
        element-for-element, to the scalar :meth:`encode` against each
        lane's blocks (property-tested).  Supports all three digest
        representations:

        * raw -- the acting hop's block verbatim;
        * hash -- ``h_rep(packet, block)`` via pairwise folds;
        * fragment -- the packet's hash-chosen b-bit slice of the block.
        """
        ctx = self.ctx
        pids = np.asarray(packet_ids, dtype=np.uint64)
        blocks = np.asarray(blocks)
        n, k = len(pids), self.message.k
        if blocks.shape != (n, k):
            raise ValueError(
                f"blocks must have shape ({n}, {k}), got {blocks.shape}"
            )
        b = ctx.digest_bits
        layer_idx = ctx.layer_of_array(pids)
        # Fragment choice is per packet and layer-independent.
        if self.mode == FRAGMENT:
            frags = ctx.frag.choice_array(self.num_fragments, pids)
            frag_mask = (1 << b) - 1

        def contribution(lane_pids, lane_blocks, lane_frags, rep):
            """What each lane's acting hop writes (one rep)."""
            if self.mode == HASH:
                return ctx.h[rep].bits_zip(b, lane_pids, lane_blocks)
            if self.mode == FRAGMENT:
                return ((lane_blocks >> (lane_frags * b)) & frag_mask).astype(
                    np.uint64
                )
            return lane_blocks.astype(np.uint64)

        out = np.zeros((n, ctx.num_hashes), dtype=np.uint64)
        for idx, layer in enumerate(ctx.scheme.layers):
            lane = layer_idx == idx
            if not lane.any():
                continue
            lane_pids = pids[lane]
            lane_blocks = blocks[lane]
            lane_frags = frags[lane] if self.mode == FRAGMENT else None
            g = ctx.g[idx]
            lane_out = np.zeros(
                (len(lane_pids), ctx.num_hashes), dtype=np.uint64
            )
            if layer.kind == BASELINE:
                carriers = reservoir_carrier_array(g, lane_pids, k)
                # Gather each lane's carrier-hop block; one pairwise
                # pass per rep covers every hop at once.
                carried = lane_blocks[
                    np.arange(len(lane_pids)), carriers - 1
                ]
                for rep in range(ctx.num_hashes):
                    lane_out[:, rep] = contribution(
                        lane_pids, carried, lane_frags, rep
                    )
            else:
                for hop in range(1, k + 1):
                    acts = g.uniform_array(lane_pids, hop) < layer.xor_p
                    if not acts.any():
                        continue
                    hop_blocks = lane_blocks[acts, hop - 1]
                    act_frags = (
                        lane_frags[acts] if lane_frags is not None else None
                    )
                    for rep in range(ctx.num_hashes):
                        lane_out[acts, rep] ^= contribution(
                            lane_pids[acts], hop_blocks, act_frags, rep
                        )
            out[lane] = lane_out
        return out

    def encode_many(self, packet_ids) -> np.ndarray:
        """Vectorised :meth:`encode` for hash mode over many packets.

        The single-message special case of :meth:`encode_lanes` (every
        lane shares this encoder's blocks), kept for benchmark
        harnesses that push 10^5 packets down one path.
        """
        if self.mode != HASH:
            raise ValueError("encode_many supports hash mode only")
        pids = np.asarray(packet_ids, dtype=np.uint64)
        blocks = np.broadcast_to(
            np.asarray(self.message.blocks, dtype=np.int64),
            (len(pids), self.message.k),
        )
        return self.encode_lanes(pids, blocks)

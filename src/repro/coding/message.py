"""The distributed-message abstraction of paper §4.2 (Fig. 4).

A k-block message ``M_1..M_k`` is held by k encoders (switches): encoder
``e_i`` knows only ``M_i``.  Packets traverse ``e_1..e_k`` carrying a
b-bit digest which any encoder may modify; a Receiver collects digests
and must reconstruct the full message.  For path tracing, ``M_i`` is the
ID of the i-th switch and the universe V is the set of all switch IDs in
the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class DistributedMessage:
    """An immutable k-block message distributed along a path.

    Attributes
    ----------
    blocks:
        The per-hop values ``(M_1, ..., M_k)``; integers (e.g. 32-bit
        switch IDs).
    universe:
        Optional value universe V from which every block is drawn.
        Required by the hash-compressed decoder ("Reducing the
        Bit-overhead using Hashing", §4.2); ignored by raw decoding.
    """

    blocks: Tuple[int, ...]
    universe: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("message needs at least one block")
        if any(b < 0 for b in self.blocks):
            raise ValueError("blocks must be non-negative integers")
        if self.universe is not None:
            uni = frozenset(self.universe)
            missing = [b for b in self.blocks if b not in uni]
            if missing:
                raise ValueError(f"blocks {missing} not in universe")

    @property
    def k(self) -> int:
        """Number of blocks (path length)."""
        return len(self.blocks)

    def block_bits(self) -> int:
        """Bits needed to write the widest block raw."""
        return max(1, max(self.blocks).bit_length())

    @staticmethod
    def from_path(path: Sequence[int], universe: Optional[Sequence[int]] = None
                  ) -> "DistributedMessage":
        """Build a message whose blocks are the switch IDs along a path."""
        return DistributedMessage(
            tuple(int(s) for s in path),
            tuple(int(v) for v in universe) if universe is not None else None,
        )

"""Inference-side decoders for the distributed coding schemes (§4.2).

All decoders share the contract:

* ``observe(packet_id, digest)`` -- feed one collected digest;
* ``decoded`` -- mapping of 1-based hop number to recovered block;
* ``is_complete`` -- True once all ``k`` blocks are known;
* ``missing`` -- number of still-unknown hops (the Fig. 5 y-axis).

The decoders recompute every encoder decision from the shared
:class:`~repro.coding.encoder.CodecContext` (which layer the packet
served, which hop the reservoir kept, which hops xor-ed), exactly as the
paper's Recording/Inference modules do, and then run *peeling*: an XOR
digest whose acting set contains a single unknown hop reveals (raw mode)
or constrains (hash mode) that hop, which may unlock further digests.

Every decoder also exposes ``observe_batch(packet_ids, reps)`` -- the
columnar entry point of the sink's batch-decode engine
(:mod:`repro.collector.batchdecode`).  It is bit-identical to feeding
the rows to ``observe`` in order, but replays all per-packet hash
decisions (layer, reservoir carrier, XOR acting set) in vectorised
passes, and -- once the decoder is complete -- collapses whole column
slices into a single consistency scan, which is where the sink's §4
decoding cost concentrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.coding.encoder import CodecContext
from repro.coding.message import DistributedMessage
from repro.coding.schemes import BASELINE, CodingScheme
from repro.exceptions import DecodingError
from repro.hashing import (
    reservoir_carrier,
    reservoir_carrier_array,
    xor_acting_hops,
    xor_acting_matrix,
)


def _normalize_batch_reps(packet_ids, reps, num_hashes: int):
    """Coerce batch inputs to uint64 columns and validate the shape.

    ``astype`` (not ``asarray(dtype=...)``) so negative packet ids wrap
    to their 64-bit representation -- the same masking the scalar hash
    path applies via ``mix._as_int``.
    """
    pids = np.asarray(packet_ids).astype(np.uint64)
    mat = np.asarray(reps)
    if mat.ndim != 2 or mat.shape != (pids.shape[0], num_hashes):
        raise ValueError(
            f"reps must have shape ({pids.shape[0]}, {num_hashes}), "
            f"got {mat.shape}"
        )
    return pids, mat.astype(np.uint64)


def _batch_decisions(ctx: CodecContext, k: int, pids: np.ndarray):
    """Vectorised replay of the per-packet encoder decisions.

    One pass over the batch computes what the scalar ``observe`` derives
    per packet: the layer index, the reservoir carrier (baseline
    layers, zero elsewhere) and the XOR acting set (xor layers).  The
    arrays come back whole so a decoder that completes mid-batch can
    hand the unconsumed suffix's decisions straight to its consistency
    scan instead of recomputing them.
    """
    layer_idx = ctx.layer_of_array(pids)
    n = len(pids)
    carriers = np.zeros(n, dtype=np.int64)
    acting: List[Optional[List[int]]] = [None] * n
    for idx, layer in enumerate(ctx.scheme.layers):
        lane = layer_idx == idx
        if not lane.any():
            continue
        g = ctx.g[idx]
        if layer.kind == BASELINE:
            carriers[lane] = reservoir_carrier_array(g, pids[lane], k)
        else:
            acts = xor_acting_matrix(g, pids[lane], k, layer.xor_p)
            rows = np.flatnonzero(lane).tolist()
            for r, row in zip(rows, acts.tolist()):
                acting[r] = [h + 1 for h, a in enumerate(row) if a]
    return layer_idx, carriers, acting


class _PendingXor:
    """An undecodable XOR digest waiting for more hops to resolve."""

    __slots__ = ("packet_id", "residual", "unknown")

    def __init__(self, packet_id: int, residual: List[int], unknown: Set[int]):
        self.packet_id = packet_id
        #: Digest with every *known* hop's contribution xor-ed out.
        self.residual = residual
        #: Acting hops whose block is still unknown.
        self.unknown = unknown


class RawDecoder:
    """Decoder for raw digests (block value fits the budget).

    Baseline packets reveal their carrier hop's block outright; XOR
    packets peel.  Also tracks ``inconsistencies``: Baseline packets
    whose digest contradicts an already-decoded hop, the paper's §7
    signal for multipath/route changes.
    """

    def __init__(
        self,
        k: int,
        scheme: CodingScheme,
        digest_bits: int = 8,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.ctx = CodecContext(scheme, digest_bits, 1, seed)
        self.decoded: Dict[int, int] = {}
        self.inconsistencies = 0
        self.packets_seen = 0
        self._pending: List[_PendingXor] = []
        #: hop -> indices into _pending that reference it.
        self._hop_refs: Dict[int, List[_PendingXor]] = {h: [] for h in range(1, k + 1)}
        #: Decoded blocks as a (k,) array, built lazily once complete
        #: (decoded values never change afterwards) for the batched
        #: consistency scans.
        self._decoded_arr: Optional[np.ndarray] = None

    @property
    def missing(self) -> int:
        """Hops still unknown."""
        return self.k - len(self.decoded)

    @property
    def is_complete(self) -> bool:
        """True when every hop's block has been recovered."""
        return not self.missing

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one collected digest (1-tuple in raw mode)."""
        self.packets_seen += 1
        value = digest[0]
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            carrier = reservoir_carrier(g, packet_id, self.k)
            if carrier in self.decoded:
                if self.decoded[carrier] != value:
                    self.inconsistencies += 1
                return
            self._resolve(carrier, value)
            return
        acting = xor_acting_hops(g, packet_id, self.k, layer.xor_p)
        residual = value
        unknown: Set[int] = set()
        for hop in acting:
            if hop in self.decoded:
                residual ^= self.decoded[hop]
            else:
                unknown.add(hop)
        if not unknown:
            return
        if len(unknown) == 1:
            self._resolve(unknown.pop(), residual)
            return
        entry = _PendingXor(packet_id, [residual], unknown)
        self._pending.append(entry)
        for hop in unknown:
            self._hop_refs[hop].append(entry)

    def observe_batch(self, packet_ids, reps) -> None:
        """Feed a digest column at once; bit-identical to in-order observe.

        ``reps`` is the ``(n, 1)`` unpacked digest matrix (raw digests
        are 1-tuples).  All per-packet hash replays run as array
        passes, and rows past the completion point reduce to one
        vectorised consistency scan.
        """
        pids, mat = _normalize_batch_reps(packet_ids, reps, 1)
        n = len(pids)
        if n == 0:
            return
        if self.is_complete:
            self._verify_complete(pids, mat)
            return
        start, layer_idx, carriers = self._observe_prefix(pids, mat)
        if start < n:
            self._verify_complete(
                pids[start:], mat[start:],
                layer_idx[start:], carriers[start:],
            )

    def _observe_prefix(self, pids: np.ndarray, reps: np.ndarray):
        """In-order replay with precomputed decisions, until complete.

        Returns ``(first unconsumed row, layer indices, carriers)`` --
        the decision arrays ride along so the caller's consistency
        scan over the suffix does not recompute them.  Same state
        transitions as :meth:`observe`, minus all per-packet hashing.
        """
        layers = self.ctx.scheme.layers
        layer_idx, carriers, acting = _batch_decisions(self.ctx, self.k, pids)
        layer_list = layer_idx.tolist()
        carrier_list = carriers.tolist()
        values = reps[:, 0].tolist()
        n = len(values)
        stop = n
        for i in range(n):
            if self.is_complete:
                stop = i
                break
            self.packets_seen += 1
            value = values[i]
            layer = layers[layer_list[i]]
            if layer.kind == BASELINE:
                carrier = carrier_list[i]
                if carrier in self.decoded:
                    if self.decoded[carrier] != value:
                        self.inconsistencies += 1
                    continue
                self._resolve(carrier, value)
                continue
            residual = value
            unknown: Set[int] = set()
            for hop in acting[i]:
                if hop in self.decoded:
                    residual ^= self.decoded[hop]
                else:
                    unknown.add(hop)
            if not unknown:
                continue
            if len(unknown) == 1:
                self._resolve(unknown.pop(), residual)
                continue
            entry = _PendingXor(int(pids[i]), [residual], unknown)
            self._pending.append(entry)
            for hop in unknown:
                self._hop_refs[hop].append(entry)
        return stop, layer_idx, carriers

    def _verify_complete(
        self,
        pids: np.ndarray,
        reps: np.ndarray,
        layer_idx: Optional[np.ndarray] = None,
        carriers: Optional[np.ndarray] = None,
    ) -> None:
        """Consistency scan of a complete decoder (pure counting).

        Baseline rows compare against the decoded carrier block; XOR
        rows are exact no-ops (``observe`` computes a residual with no
        unknown hops and returns without checking it).  ``layer_idx``
        and ``carriers`` accept decisions already computed for these
        rows (the mid-batch completion hand-off).
        """
        ctx = self.ctx
        self.packets_seen += len(pids)
        if self._decoded_arr is None:
            self._decoded_arr = np.asarray(
                [self.decoded[h] for h in range(1, self.k + 1)],
                dtype=np.int64,
            ).astype(np.uint64)
        if layer_idx is None:
            layer_idx = ctx.layer_of_array(pids)
        bad = 0
        for idx, layer in enumerate(ctx.scheme.layers):
            if layer.kind != BASELINE:
                continue
            lane = layer_idx == idx
            if not lane.any():
                continue
            if carriers is None:
                lane_carriers = reservoir_carrier_array(
                    ctx.g[idx], pids[lane], self.k
                )
            else:
                lane_carriers = carriers[lane]
            expected = self._decoded_arr[lane_carriers - 1]
            bad += int((reps[lane, 0] != expected).sum())
        self.inconsistencies += bad

    def state_bytes(self) -> int:
        """Rough resident-state estimate (decoded map + pending digests)."""
        arr = self._decoded_arr.nbytes if self._decoded_arr is not None else 0
        return 16 * len(self.decoded) + 64 * len(self._pending) + arr

    def known_blocks(self) -> Dict[int, int]:
        """Hops decoded so far (1-based) -- the partial-decode answer.

        Well-defined at any point of the stream: loss leaves hops
        missing, duplicates only re-confirm, so a sink can always
        report *which* hops it knows even when the flow never
        completes (the decode-under-loss contract).
        """
        return dict(self.decoded)

    def _resolve(self, hop: int, value: int) -> None:
        """Record a decoded hop and peel any digests it unblocks."""
        worklist = [(hop, value)]
        while worklist:
            hop, value = worklist.pop()
            if hop in self.decoded:
                if self.decoded[hop] != value:
                    self.inconsistencies += 1
                continue
            self.decoded[hop] = value
            for entry in self._hop_refs[hop]:
                if hop not in entry.unknown:
                    continue
                entry.unknown.discard(hop)
                entry.residual[0] ^= value
                if len(entry.unknown) == 1:
                    last = next(iter(entry.unknown))
                    entry.unknown.clear()
                    worklist.append((last, entry.residual[0]))
            self._hop_refs[hop] = []

    def path(self) -> List[int]:
        """The recovered message, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError(f"{self.missing} hops still unknown")
        return [self.decoded[h] for h in range(1, self.k + 1)]


class HashDecoder:
    """Decoder for hash-compressed digests over a known universe V.

    Maintains a candidate set per hop (NumPy array of universe values);
    each Baseline packet from hop ``i`` keeps only candidates ``v`` with
    ``h(v, packet) == digest`` -- an expected ``2^-b`` shrink per hash
    instantiation.  XOR digests join the peeling pool: once all acting
    hops but one are decoded, the leftover behaves like a Baseline
    packet for that hop (paper §4.2).
    """

    def __init__(
        self,
        k: int,
        universe,
        scheme: CodingScheme,
        digest_bits: int = 8,
        num_hashes: int = 1,
        seed: int = 0,
        adjacency: Optional[Dict[int, Set[int]]] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        uni = np.asarray(sorted(set(int(v) for v in universe)), dtype=np.int64)
        if uni.size < 1:
            raise ValueError("universe must be non-empty")
        self.k = k
        self.ctx = CodecContext(scheme, digest_bits, num_hashes, seed)
        self._candidates: Dict[int, np.ndarray] = {
            hop: uni for hop in range(1, k + 1)
        }
        #: Optional topology knowledge: value -> possible neighbouring
        #: values.  When set, decoding a hop restricts the candidate
        #: sets of the adjacent hops to the decoded switch's graph
        #: neighbours -- the Inference Module knows the network map, so
        #: consecutive path switches must be adjacent.  This is the
        #: natural extension the paper's path-conformance use case
        #: implies, and it slashes the packets needed on sparse
        #: topologies (see bench_ext_adjacency.py).
        self.adjacency = adjacency
        self.decoded: Dict[int, int] = {}
        self.inconsistencies = 0
        self.packets_seen = 0
        self._pending: List[_PendingXor] = []
        self._hop_refs: Dict[int, List[_PendingXor]] = {h: [] for h in range(1, k + 1)}
        #: Decoded values as a (k,) array, built lazily once complete
        #: for the batched consistency scans.
        self._decoded_arr: Optional[np.ndarray] = None

    @property
    def missing(self) -> int:
        """Hops still unknown."""
        return self.k - len(self.decoded)

    @property
    def is_complete(self) -> bool:
        """True when every hop has a unique candidate left."""
        return not self.missing

    def candidates_left(self, hop: int) -> int:
        """Size of the hop's remaining candidate set (1 when decoded)."""
        if hop in self.decoded:
            return 1
        return int(self._candidates[hop].size)

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one collected digest (``num_hashes`` entries)."""
        if len(digest) != self.ctx.num_hashes:
            raise ValueError("digest arity does not match num_hashes")
        self.packets_seen += 1
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            carrier = reservoir_carrier(g, packet_id, self.k)
            self._constrain(carrier, packet_id, list(digest))
            return
        acting = xor_acting_hops(g, packet_id, self.k, layer.xor_p)
        residual = list(digest)
        unknown: Set[int] = set()
        for hop in acting:
            if hop in self.decoded:
                for rep in range(self.ctx.num_hashes):
                    residual[rep] ^= self.ctx.value_digest(
                        rep, packet_id, self.decoded[hop]
                    )
            else:
                unknown.add(hop)
        if not unknown:
            return
        if len(unknown) == 1:
            self._constrain(unknown.pop(), packet_id, residual)
            return
        entry = _PendingXor(packet_id, residual, unknown)
        self._pending.append(entry)
        for hop in unknown:
            self._hop_refs[hop].append(entry)

    def observe_batch(self, packet_ids, reps) -> None:
        """Feed a digest column at once; bit-identical to in-order observe.

        ``reps`` is the ``(n, num_hashes)`` unpacked digest matrix (see
        :func:`~repro.coding.encoder.unpack_reps_array`).  A digest
        that contradicts the candidate sets raises
        :class:`DecodingError` exactly where the scalar loop would; the
        exception carries a ``batch_pos`` attribute (the offending row)
        so callers can reset and resume behind it.
        """
        pids, mat = _normalize_batch_reps(packet_ids, reps, self.ctx.num_hashes)
        n = len(pids)
        if n == 0:
            return
        if self.is_complete:
            self._verify_complete(pids, mat)
            return
        start, layer_idx, carriers = self._observe_prefix(pids, mat)
        if start < n:
            self._verify_complete(
                pids[start:], mat[start:],
                layer_idx[start:], carriers[start:],
            )

    def _observe_prefix(self, pids: np.ndarray, reps: np.ndarray):
        """In-order replay with precomputed decisions, until complete.

        Same state transitions as :meth:`observe`, minus the per-packet
        layer/carrier/acting hashing; returns ``(first unconsumed row,
        layer indices, carriers)`` so the caller's consistency scan
        over the suffix reuses the decision arrays.
        """
        layers = self.ctx.scheme.layers
        num_hashes = self.ctx.num_hashes
        layer_idx, carriers, acting = _batch_decisions(self.ctx, self.k, pids)
        layer_list = layer_idx.tolist()
        carrier_list = carriers.tolist()
        rows = reps.tolist()
        pl = pids.tolist()
        n = len(pl)
        stop = n
        for i in range(n):
            if self.is_complete:
                stop = i
                break
            self.packets_seen += 1
            pid = pl[i]
            digest = rows[i]
            layer = layers[layer_list[i]]
            try:
                if layer.kind == BASELINE:
                    self._constrain(carrier_list[i], pid, digest)
                    continue
                residual = digest
                unknown: Set[int] = set()
                for hop in acting[i]:
                    if hop in self.decoded:
                        for rep in range(num_hashes):
                            residual[rep] ^= self.ctx.value_digest(
                                rep, pid, self.decoded[hop]
                            )
                    else:
                        unknown.add(hop)
                if not unknown:
                    continue
                if len(unknown) == 1:
                    self._constrain(unknown.pop(), pid, residual)
                    continue
                entry = _PendingXor(pid, residual, unknown)
                self._pending.append(entry)
                for hop in unknown:
                    self._hop_refs[hop].append(entry)
            except DecodingError as err:
                err.batch_pos = i
                raise
        return stop, layer_idx, carriers

    def _verify_complete(
        self,
        pids: np.ndarray,
        reps: np.ndarray,
        layer_idx: Optional[np.ndarray] = None,
        carriers: Optional[np.ndarray] = None,
    ) -> None:
        """Consistency scan of a complete decoder (pure counting).

        Baseline rows re-hash the decoded carrier value against the
        digest (one ``bits_zip`` pass per rep); a row failing any rep
        counts one inconsistency, exactly like :meth:`_constrain` on a
        decoded hop.  XOR rows have no unknown hops and are no-ops.
        ``layer_idx`` and ``carriers`` accept decisions already
        computed for these rows (the mid-batch completion hand-off).
        """
        ctx = self.ctx
        self.packets_seen += len(pids)
        if self._decoded_arr is None:
            self._decoded_arr = np.asarray(
                [self.decoded[h] for h in range(1, self.k + 1)],
                dtype=np.int64,
            ).astype(np.uint64)
        if layer_idx is None:
            layer_idx = ctx.layer_of_array(pids)
        bad = 0
        for idx, layer in enumerate(ctx.scheme.layers):
            if layer.kind != BASELINE:
                continue
            lane = layer_idx == idx
            if not lane.any():
                continue
            lane_pids = pids[lane]
            if carriers is None:
                lane_carriers = reservoir_carrier_array(
                    ctx.g[idx], lane_pids, self.k
                )
            else:
                lane_carriers = carriers[lane]
            values = self._decoded_arr[lane_carriers - 1]
            lane_reps = reps[lane]
            ok = np.ones(len(lane_pids), dtype=bool)
            for rep in range(ctx.num_hashes):
                ok &= (
                    ctx.h[rep].bits_zip(ctx.digest_bits, lane_pids, values)
                    == lane_reps[:, rep]
                )
            bad += int((~ok).sum())
        self.inconsistencies += bad

    # -- internals -------------------------------------------------------

    def _constrain(self, hop: int, packet_id: int, needed: List[int]) -> None:
        """Keep only candidates of ``hop`` whose hash matches ``needed``."""
        if hop in self.decoded:
            value = self.decoded[hop]
            ok = all(
                self.ctx.value_digest(rep, packet_id, value) == needed[rep]
                for rep in range(self.ctx.num_hashes)
            )
            if not ok:
                self.inconsistencies += 1
            return
        cands = self._candidates[hop]
        mask = np.ones(cands.size, dtype=bool)
        for rep in range(self.ctx.num_hashes):
            hashed = self.ctx.h[rep].bits_array(
                self.ctx.digest_bits, cands, packet_id
            )
            mask &= hashed == np.uint64(needed[rep])
        remaining = cands[mask]
        if remaining.size == 0:
            raise DecodingError(
                f"hop {hop}: no candidate matches digest (corrupt input "
                "or value outside the universe)"
            )
        self._candidates[hop] = remaining
        if remaining.size == 1:
            self._settle(hop, int(remaining[0]))

    def _settle(self, hop: int, value: int) -> None:
        """A hop reached a unique candidate; peel dependent XOR digests."""
        worklist = [(hop, value)]
        while worklist:
            hop, value = worklist.pop()
            if hop in self.decoded:
                continue
            self.decoded[hop] = value
            self._candidates[hop] = np.asarray([value], dtype=np.int64)
            for entry in self._hop_refs[hop]:
                if hop not in entry.unknown:
                    continue
                entry.unknown.discard(hop)
                for rep in range(self.ctx.num_hashes):
                    entry.residual[rep] ^= self.ctx.value_digest(
                        rep, entry.packet_id, value
                    )
                if len(entry.unknown) == 1:
                    last = next(iter(entry.unknown))
                    entry.unknown.clear()
                    before = self.decoded.get(last)
                    self._constrain(last, entry.packet_id, entry.residual)
                    after_cands = self._candidates[last]
                    if before is None and after_cands.size == 1 and last not in self.decoded:
                        worklist.append((last, int(after_cands[0])))
            self._hop_refs[hop] = []
            if self.adjacency is not None:
                for nbr_hop in (hop - 1, hop + 1):
                    if not 1 <= nbr_hop <= self.k or nbr_hop in self.decoded:
                        continue
                    allowed = self.adjacency.get(value)
                    if allowed is None:
                        continue
                    cands = self._candidates[nbr_hop]
                    narrowed = cands[np.isin(cands, list(allowed))]
                    if narrowed.size == 0:
                        raise DecodingError(
                            f"hop {nbr_hop}: no candidate adjacent to "
                            f"decoded switch {value}"
                        )
                    if narrowed.size < cands.size:
                        self._candidates[nbr_hop] = narrowed
                        if narrowed.size == 1 and nbr_hop not in self.decoded:
                            worklist.append((nbr_hop, int(narrowed[0])))

    def path(self) -> List[int]:
        """The recovered message, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError(f"{self.missing} hops still unknown")
        return [self.decoded[h] for h in range(1, self.k + 1)]

    def known_blocks(self) -> Dict[int, int]:
        """Hops with a unique candidate so far (the partial decode)."""
        return dict(self.decoded)

    def state_bytes(self) -> int:
        """Rough resident-state estimate (candidate arrays dominate).

        Kept next to the state it measures so memory-accounting callers
        (e.g. the collector's snapshots) need no knowledge of decoder
        internals.
        """
        cand = sum(arr.nbytes for arr in self._candidates.values())
        arr = self._decoded_arr.nbytes if self._decoded_arr is not None else 0
        return cand + 64 * len(self._pending) + arr


class FragmentDecoder:
    """Decoder for fragment mode: F independent raw sub-problems.

    Each packet carries fragment ``f = frag(packet) in {0..F-1}`` of its
    contributing hop(s); decoding fragment ``f`` for every hop is an
    independent instance of the raw problem.  A hop's block is the
    concatenation of its F decoded fragments -- the paper's observation
    that fragmentation behaves "as if there were k*F hops".
    """

    def __init__(
        self,
        k: int,
        value_bits: int,
        scheme: CodingScheme,
        digest_bits: int = 8,
        seed: int = 0,
    ) -> None:
        if value_bits < 1:
            raise ValueError("value_bits must be >= 1")
        self.k = k
        self.value_bits = value_bits
        self.digest_bits = digest_bits
        self.num_fragments = -(-value_bits // digest_bits)
        self.ctx = CodecContext(scheme, digest_bits, 1, seed)
        self._subdecoders = [
            RawDecoder(k, scheme, digest_bits, seed)
            for _ in range(self.num_fragments)
        ]
        self.packets_seen = 0

    @property
    def missing(self) -> int:
        """Unknown (hop, fragment) pairs, scaled to whole hops."""
        pieces = sum(dec.missing for dec in self._subdecoders)
        return -(-pieces // self.num_fragments)

    @property
    def is_complete(self) -> bool:
        """True when every fragment of every hop is decoded."""
        return all(dec.is_complete for dec in self._subdecoders)

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Route the digest to the packet's fragment sub-problem."""
        self.packets_seen += 1
        frag = self.ctx.fragment_index(packet_id, self.num_fragments)
        self._subdecoders[frag].observe(packet_id, digest)

    def observe_batch(self, packet_ids, reps) -> None:
        """Scatter a digest column to the fragment sub-problems at once.

        One vectorised fragment-selection hash replaces the per-packet
        ``fragment_index`` call; each sub-problem's rows (boolean-mask
        slices preserve order) then run its own batched raw decode.
        Sub-problems are independent, so cross-fragment ordering is
        immaterial and the final state is bit-identical to the scalar
        loop.
        """
        pids, mat = _normalize_batch_reps(packet_ids, reps, 1)
        n = len(pids)
        if n == 0:
            return
        self.packets_seen += n
        frags = self.ctx.frag.choice_array(self.num_fragments, pids)
        for frag in range(self.num_fragments):
            lane = frags == frag
            if lane.any():
                self._subdecoders[frag].observe_batch(pids[lane], mat[lane])

    def state_bytes(self) -> int:
        """Sum of the fragment sub-decoders' resident state."""
        return sum(dec.state_bytes() for dec in self._subdecoders)

    def known_blocks(self) -> Dict[int, int]:
        """Hops whose *every* fragment is decoded, reassembled.

        A hop with some-but-not-all fragments stays unknown: a partial
        concatenation is not a prefix of the value, so reporting it
        would hand callers a wrong block rather than a missing one.
        """
        out: Dict[int, int] = {}
        for hop in range(1, self.k + 1):
            value = 0
            for frag, dec in enumerate(self._subdecoders):
                piece = dec.decoded.get(hop)
                if piece is None:
                    break
                value |= piece << (frag * self.digest_bits)
            else:
                out[hop] = value
        return out

    def path(self) -> List[int]:
        """Reassembled blocks, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError("fragments still missing")
        out = []
        for hop in range(1, self.k + 1):
            value = 0
            for frag, dec in enumerate(self._subdecoders):
                value |= dec.decoded[hop] << (frag * self.digest_bits)
            out.append(value)
        return out


def make_decoder(
    encoder,
    message: Optional[DistributedMessage] = None,
    adjacency: Optional[Dict[int, Set[int]]] = None,
):
    """Build the matching decoder for a :class:`PathEncoder`.

    Convenience used by tests and benchmarks; pulls mode, widths and
    seed straight from the encoder so the pair cannot drift apart.
    ``adjacency`` enables topology-aware inference (hash mode only).
    """
    from repro.coding.encoder import HASH, RAW

    msg = message if message is not None else encoder.message
    ctx = encoder.ctx
    if encoder.mode == HASH:
        return HashDecoder(
            msg.k, msg.universe, ctx.scheme, ctx.digest_bits,
            ctx.num_hashes, ctx.seed, adjacency=adjacency,
        )
    if encoder.mode == RAW:
        return RawDecoder(msg.k, ctx.scheme, ctx.digest_bits, ctx.seed)
    # Derive the width from the encoder's *effective* fragment count --
    # a value_bits override (the sink's universe-wide layout) widens it
    # past the message's own block_bits, and the decoder must split
    # into the same number of sub-problems or nothing lines up.
    return FragmentDecoder(
        msg.k, encoder.num_fragments * ctx.digest_bits, ctx.scheme,
        ctx.digest_bits, ctx.seed,
    )

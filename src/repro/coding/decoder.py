"""Inference-side decoders for the distributed coding schemes (§4.2).

All decoders share the contract:

* ``observe(packet_id, digest)`` -- feed one collected digest;
* ``decoded`` -- mapping of 1-based hop number to recovered block;
* ``is_complete`` -- True once all ``k`` blocks are known;
* ``missing`` -- number of still-unknown hops (the Fig. 5 y-axis).

The decoders recompute every encoder decision from the shared
:class:`~repro.coding.encoder.CodecContext` (which layer the packet
served, which hop the reservoir kept, which hops xor-ed), exactly as the
paper's Recording/Inference modules do, and then run *peeling*: an XOR
digest whose acting set contains a single unknown hop reveals (raw mode)
or constrains (hash mode) that hop, which may unlock further digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.coding.encoder import CodecContext
from repro.coding.message import DistributedMessage
from repro.coding.schemes import BASELINE, CodingScheme
from repro.exceptions import DecodingError
from repro.hashing import reservoir_carrier, xor_acting_hops


class _PendingXor:
    """An undecodable XOR digest waiting for more hops to resolve."""

    __slots__ = ("packet_id", "residual", "unknown")

    def __init__(self, packet_id: int, residual: List[int], unknown: Set[int]):
        self.packet_id = packet_id
        #: Digest with every *known* hop's contribution xor-ed out.
        self.residual = residual
        #: Acting hops whose block is still unknown.
        self.unknown = unknown


class RawDecoder:
    """Decoder for raw digests (block value fits the budget).

    Baseline packets reveal their carrier hop's block outright; XOR
    packets peel.  Also tracks ``inconsistencies``: Baseline packets
    whose digest contradicts an already-decoded hop, the paper's §7
    signal for multipath/route changes.
    """

    def __init__(
        self,
        k: int,
        scheme: CodingScheme,
        digest_bits: int = 8,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.ctx = CodecContext(scheme, digest_bits, 1, seed)
        self.decoded: Dict[int, int] = {}
        self.inconsistencies = 0
        self.packets_seen = 0
        self._pending: List[_PendingXor] = []
        #: hop -> indices into _pending that reference it.
        self._hop_refs: Dict[int, List[_PendingXor]] = {h: [] for h in range(1, k + 1)}

    @property
    def missing(self) -> int:
        """Hops still unknown."""
        return self.k - len(self.decoded)

    @property
    def is_complete(self) -> bool:
        """True when every hop's block has been recovered."""
        return not self.missing

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one collected digest (1-tuple in raw mode)."""
        self.packets_seen += 1
        value = digest[0]
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            carrier = reservoir_carrier(g, packet_id, self.k)
            if carrier in self.decoded:
                if self.decoded[carrier] != value:
                    self.inconsistencies += 1
                return
            self._resolve(carrier, value)
            return
        acting = xor_acting_hops(g, packet_id, self.k, layer.xor_p)
        residual = value
        unknown: Set[int] = set()
        for hop in acting:
            if hop in self.decoded:
                residual ^= self.decoded[hop]
            else:
                unknown.add(hop)
        if not unknown:
            return
        if len(unknown) == 1:
            self._resolve(unknown.pop(), residual)
            return
        entry = _PendingXor(packet_id, [residual], unknown)
        self._pending.append(entry)
        for hop in unknown:
            self._hop_refs[hop].append(entry)

    def _resolve(self, hop: int, value: int) -> None:
        """Record a decoded hop and peel any digests it unblocks."""
        worklist = [(hop, value)]
        while worklist:
            hop, value = worklist.pop()
            if hop in self.decoded:
                if self.decoded[hop] != value:
                    self.inconsistencies += 1
                continue
            self.decoded[hop] = value
            for entry in self._hop_refs[hop]:
                if hop not in entry.unknown:
                    continue
                entry.unknown.discard(hop)
                entry.residual[0] ^= value
                if len(entry.unknown) == 1:
                    last = next(iter(entry.unknown))
                    entry.unknown.clear()
                    worklist.append((last, entry.residual[0]))
            self._hop_refs[hop] = []

    def path(self) -> List[int]:
        """The recovered message, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError(f"{self.missing} hops still unknown")
        return [self.decoded[h] for h in range(1, self.k + 1)]


class HashDecoder:
    """Decoder for hash-compressed digests over a known universe V.

    Maintains a candidate set per hop (NumPy array of universe values);
    each Baseline packet from hop ``i`` keeps only candidates ``v`` with
    ``h(v, packet) == digest`` -- an expected ``2^-b`` shrink per hash
    instantiation.  XOR digests join the peeling pool: once all acting
    hops but one are decoded, the leftover behaves like a Baseline
    packet for that hop (paper §4.2).
    """

    def __init__(
        self,
        k: int,
        universe,
        scheme: CodingScheme,
        digest_bits: int = 8,
        num_hashes: int = 1,
        seed: int = 0,
        adjacency: Optional[Dict[int, Set[int]]] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        uni = np.asarray(sorted(set(int(v) for v in universe)), dtype=np.int64)
        if uni.size < 1:
            raise ValueError("universe must be non-empty")
        self.k = k
        self.ctx = CodecContext(scheme, digest_bits, num_hashes, seed)
        self._candidates: Dict[int, np.ndarray] = {
            hop: uni for hop in range(1, k + 1)
        }
        #: Optional topology knowledge: value -> possible neighbouring
        #: values.  When set, decoding a hop restricts the candidate
        #: sets of the adjacent hops to the decoded switch's graph
        #: neighbours -- the Inference Module knows the network map, so
        #: consecutive path switches must be adjacent.  This is the
        #: natural extension the paper's path-conformance use case
        #: implies, and it slashes the packets needed on sparse
        #: topologies (see bench_ext_adjacency.py).
        self.adjacency = adjacency
        self.decoded: Dict[int, int] = {}
        self.inconsistencies = 0
        self.packets_seen = 0
        self._pending: List[_PendingXor] = []
        self._hop_refs: Dict[int, List[_PendingXor]] = {h: [] for h in range(1, k + 1)}

    @property
    def missing(self) -> int:
        """Hops still unknown."""
        return self.k - len(self.decoded)

    @property
    def is_complete(self) -> bool:
        """True when every hop has a unique candidate left."""
        return not self.missing

    def candidates_left(self, hop: int) -> int:
        """Size of the hop's remaining candidate set (1 when decoded)."""
        if hop in self.decoded:
            return 1
        return int(self._candidates[hop].size)

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one collected digest (``num_hashes`` entries)."""
        if len(digest) != self.ctx.num_hashes:
            raise ValueError("digest arity does not match num_hashes")
        self.packets_seen += 1
        layer_idx = self.ctx.layer_of(packet_id)
        layer = self.ctx.scheme.layers[layer_idx]
        g = self.ctx.g[layer_idx]
        if layer.kind == BASELINE:
            carrier = reservoir_carrier(g, packet_id, self.k)
            self._constrain(carrier, packet_id, list(digest))
            return
        acting = xor_acting_hops(g, packet_id, self.k, layer.xor_p)
        residual = list(digest)
        unknown: Set[int] = set()
        for hop in acting:
            if hop in self.decoded:
                for rep in range(self.ctx.num_hashes):
                    residual[rep] ^= self.ctx.value_digest(
                        rep, packet_id, self.decoded[hop]
                    )
            else:
                unknown.add(hop)
        if not unknown:
            return
        if len(unknown) == 1:
            self._constrain(unknown.pop(), packet_id, residual)
            return
        entry = _PendingXor(packet_id, residual, unknown)
        self._pending.append(entry)
        for hop in unknown:
            self._hop_refs[hop].append(entry)

    # -- internals -------------------------------------------------------

    def _constrain(self, hop: int, packet_id: int, needed: List[int]) -> None:
        """Keep only candidates of ``hop`` whose hash matches ``needed``."""
        if hop in self.decoded:
            value = self.decoded[hop]
            ok = all(
                self.ctx.value_digest(rep, packet_id, value) == needed[rep]
                for rep in range(self.ctx.num_hashes)
            )
            if not ok:
                self.inconsistencies += 1
            return
        cands = self._candidates[hop]
        mask = np.ones(cands.size, dtype=bool)
        for rep in range(self.ctx.num_hashes):
            hashed = self.ctx.h[rep].bits_array(
                self.ctx.digest_bits, cands, packet_id
            )
            mask &= hashed == np.uint64(needed[rep])
        remaining = cands[mask]
        if remaining.size == 0:
            raise DecodingError(
                f"hop {hop}: no candidate matches digest (corrupt input "
                "or value outside the universe)"
            )
        self._candidates[hop] = remaining
        if remaining.size == 1:
            self._settle(hop, int(remaining[0]))

    def _settle(self, hop: int, value: int) -> None:
        """A hop reached a unique candidate; peel dependent XOR digests."""
        worklist = [(hop, value)]
        while worklist:
            hop, value = worklist.pop()
            if hop in self.decoded:
                continue
            self.decoded[hop] = value
            self._candidates[hop] = np.asarray([value], dtype=np.int64)
            for entry in self._hop_refs[hop]:
                if hop not in entry.unknown:
                    continue
                entry.unknown.discard(hop)
                for rep in range(self.ctx.num_hashes):
                    entry.residual[rep] ^= self.ctx.value_digest(
                        rep, entry.packet_id, value
                    )
                if len(entry.unknown) == 1:
                    last = next(iter(entry.unknown))
                    entry.unknown.clear()
                    before = self.decoded.get(last)
                    self._constrain(last, entry.packet_id, entry.residual)
                    after_cands = self._candidates[last]
                    if before is None and after_cands.size == 1 and last not in self.decoded:
                        worklist.append((last, int(after_cands[0])))
            self._hop_refs[hop] = []
            if self.adjacency is not None:
                for nbr_hop in (hop - 1, hop + 1):
                    if not 1 <= nbr_hop <= self.k or nbr_hop in self.decoded:
                        continue
                    allowed = self.adjacency.get(value)
                    if allowed is None:
                        continue
                    cands = self._candidates[nbr_hop]
                    narrowed = cands[np.isin(cands, list(allowed))]
                    if narrowed.size == 0:
                        raise DecodingError(
                            f"hop {nbr_hop}: no candidate adjacent to "
                            f"decoded switch {value}"
                        )
                    if narrowed.size < cands.size:
                        self._candidates[nbr_hop] = narrowed
                        if narrowed.size == 1 and nbr_hop not in self.decoded:
                            worklist.append((nbr_hop, int(narrowed[0])))

    def path(self) -> List[int]:
        """The recovered message, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError(f"{self.missing} hops still unknown")
        return [self.decoded[h] for h in range(1, self.k + 1)]

    def state_bytes(self) -> int:
        """Rough resident-state estimate (candidate arrays dominate).

        Kept next to the state it measures so memory-accounting callers
        (e.g. the collector's snapshots) need no knowledge of decoder
        internals.
        """
        cand = sum(arr.nbytes for arr in self._candidates.values())
        return cand + 64 * len(self._pending)


class FragmentDecoder:
    """Decoder for fragment mode: F independent raw sub-problems.

    Each packet carries fragment ``f = frag(packet) in {0..F-1}`` of its
    contributing hop(s); decoding fragment ``f`` for every hop is an
    independent instance of the raw problem.  A hop's block is the
    concatenation of its F decoded fragments -- the paper's observation
    that fragmentation behaves "as if there were k*F hops".
    """

    def __init__(
        self,
        k: int,
        value_bits: int,
        scheme: CodingScheme,
        digest_bits: int = 8,
        seed: int = 0,
    ) -> None:
        if value_bits < 1:
            raise ValueError("value_bits must be >= 1")
        self.k = k
        self.value_bits = value_bits
        self.digest_bits = digest_bits
        self.num_fragments = -(-value_bits // digest_bits)
        self.ctx = CodecContext(scheme, digest_bits, 1, seed)
        self._subdecoders = [
            RawDecoder(k, scheme, digest_bits, seed)
            for _ in range(self.num_fragments)
        ]
        self.packets_seen = 0

    @property
    def missing(self) -> int:
        """Unknown (hop, fragment) pairs, scaled to whole hops."""
        pieces = sum(dec.missing for dec in self._subdecoders)
        return -(-pieces // self.num_fragments)

    @property
    def is_complete(self) -> bool:
        """True when every fragment of every hop is decoded."""
        return all(dec.is_complete for dec in self._subdecoders)

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Route the digest to the packet's fragment sub-problem."""
        self.packets_seen += 1
        frag = self.ctx.fragment_index(packet_id, self.num_fragments)
        self._subdecoders[frag].observe(packet_id, digest)

    def path(self) -> List[int]:
        """Reassembled blocks, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError("fragments still missing")
        out = []
        for hop in range(1, self.k + 1):
            value = 0
            for frag, dec in enumerate(self._subdecoders):
                value |= dec.decoded[hop] << (frag * self.digest_bits)
            out.append(value)
        return out


def make_decoder(
    encoder,
    message: Optional[DistributedMessage] = None,
    adjacency: Optional[Dict[int, Set[int]]] = None,
):
    """Build the matching decoder for a :class:`PathEncoder`.

    Convenience used by tests and benchmarks; pulls mode, widths and
    seed straight from the encoder so the pair cannot drift apart.
    ``adjacency`` enables topology-aware inference (hash mode only).
    """
    from repro.coding.encoder import FRAGMENT, HASH, RAW  # local: avoid cycle

    msg = message if message is not None else encoder.message
    ctx = encoder.ctx
    if encoder.mode == HASH:
        return HashDecoder(
            msg.k, msg.universe, ctx.scheme, ctx.digest_bits,
            ctx.num_hashes, ctx.seed, adjacency=adjacency,
        )
    if encoder.mode == RAW:
        return RawDecoder(msg.k, ctx.scheme, ctx.digest_bits, ctx.seed)
    return FragmentDecoder(
        msg.k, msg.block_bits(), ctx.scheme, ctx.digest_bits, ctx.seed
    )

"""Distributed coding schemes for static per-flow aggregation (paper §4.2).

The pipeline:

* :class:`DistributedMessage` -- k blocks held by k path switches.
* :mod:`repro.coding.schemes` -- Baseline / XOR / Hybrid / Multi-layer
  (Algorithm 1) layer structures.
* :class:`PathEncoder` -- the switch-side Encoding Module (raw, hashed,
  or fragmented digests; multiple hash instantiations).
* :class:`RawDecoder` / :class:`HashDecoder` / :class:`FragmentDecoder`
  -- peeling decoders for the Inference Module.
* :class:`LNCEncoder` / :class:`LNCDecoder` -- the Linear Network Coding
  comparator.
* :mod:`repro.coding.simulate` -- Monte-Carlo harnesses producing the
  Fig. 5 / Fig. 10 quantities.
"""

from repro.coding.decoder import (
    FragmentDecoder,
    HashDecoder,
    RawDecoder,
    make_decoder,
)
from repro.coding.encoder import (
    FRAGMENT,
    HASH,
    RAW,
    CodecContext,
    PathEncoder,
    pack_reps,
    pack_reps_array,
    unpack_reps,
    unpack_reps_array,
)
from repro.coding.fastdecode import FastXORDecoder, FastXOREncoder
from repro.coding.lnc import LNCDecoder, LNCEncoder
from repro.coding.message import DistributedMessage
from repro.coding.schemes import (
    BASELINE,
    XOR,
    CodingScheme,
    Layer,
    baseline_scheme,
    hybrid_scheme,
    improved_multilayer_scheme,
    multilayer_scheme,
    xor_scheme,
)
from repro.coding.simulate import (
    TrialStats,
    average_progress,
    decode_probability,
    decode_progress,
    packet_count_distribution,
    packets_to_decode,
)

__all__ = [
    "DistributedMessage",
    "CodingScheme",
    "Layer",
    "BASELINE",
    "XOR",
    "baseline_scheme",
    "xor_scheme",
    "hybrid_scheme",
    "multilayer_scheme",
    "improved_multilayer_scheme",
    "PathEncoder",
    "CodecContext",
    "RAW",
    "HASH",
    "FRAGMENT",
    "pack_reps",
    "pack_reps_array",
    "unpack_reps",
    "unpack_reps_array",
    "RawDecoder",
    "HashDecoder",
    "FragmentDecoder",
    "make_decoder",
    "LNCEncoder",
    "LNCDecoder",
    "FastXOREncoder",
    "FastXORDecoder",
    "TrialStats",
    "packets_to_decode",
    "decode_progress",
    "average_progress",
    "decode_probability",
    "packet_count_distribution",
]

"""Near-linear-time decoding via pseudo-random bit vectors (§4.2).

The plain decoder evaluates ``g(packet, i)`` for all k hops of every
packet -- O(k) per packet, super-quadratic overall.  The paper's trick:
when the XOR probability is a power of two ``p = 2^-t``, draw ``t``
pseudo-random k-bit vectors per packet and AND them; bit ``i`` of the
AND is set with probability exactly ``p``, the whole acting set costs
O(t) word operations, and extracting it costs O(#set bits) -- O(log k)
per packet in total since E[#set bits] = k * p = O(1).

:class:`FastXOREncoder` / :class:`FastXORDecoder` are a matched pair
implementing a Baseline + single-XOR-layer scheme whose XOR acting
sets come from the bit-vector construction.  They decode the same
messages as the hash-per-hop path (tested), while doing exponentially
less hashing per packet on long paths.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.coding.message import DistributedMessage
from repro.exceptions import DecodingError
from repro.hashing import GlobalHash, reservoir_carrier
from repro.hashing.bitvector import acting_mask, set_bits


class _FastCodecBase:
    """Shared hash/mask derivations for the encoder/decoder pair."""

    def __init__(
        self,
        k: int,
        tau: float,
        log2_inv_p: int,
        seed: int,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if log2_inv_p < 0:
            raise ValueError("log2_inv_p must be >= 0")
        self.k = k
        self.tau = tau
        self.log2_inv_p = log2_inv_p
        root = GlobalHash(seed, "pint-fast")
        self.select = root.derive("layer-select")
        self.g_baseline = root.derive("g-baseline")
        self.g_mask = root.derive("g-mask")

    def is_baseline(self, packet_id: int) -> bool:
        """Layer choice (hash-coordinated, same at every hop)."""
        return self.select.uniform(packet_id) < self.tau

    def xor_acting(self, packet_id: int) -> List[int]:
        """1-based acting hops via the AND-of-bitvectors trick."""
        mask = acting_mask(self.g_mask, packet_id, self.k, self.log2_inv_p)
        return [b + 1 for b in set_bits(mask)]


class FastXOREncoder(_FastCodecBase):
    """Encoder: Baseline reservoir + bit-vector XOR layer (raw digests).

    Parameters
    ----------
    message:
        Blocks must fit ``digest_bits`` (raw mode).
    tau:
        Baseline layer share.
    log2_inv_p:
        XOR probability exponent t (p = 2^-t); the paper notes a
        power-of-two approximation of the target probability suffices.
    """

    def __init__(
        self,
        message: DistributedMessage,
        digest_bits: int = 8,
        tau: float = 0.75,
        log2_inv_p: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if message.block_bits() > digest_bits:
            raise ValueError("fast codec is raw-mode: blocks must fit digest")
        if log2_inv_p is None:
            log2_inv_p = max(0, round(math.log2(max(1, message.k))))
        super().__init__(message.k, tau, log2_inv_p, seed)
        self.message = message
        self.digest_bits = digest_bits

    def encode(self, packet_id: int) -> Tuple[int, ...]:
        """Digest after the full path (O(log k) expected work)."""
        if self.is_baseline(packet_id):
            carrier = reservoir_carrier(self.g_baseline, packet_id, self.k)
            return (self.message.blocks[carrier - 1],)
        digest = 0
        for hop in self.xor_acting(packet_id):
            digest ^= self.message.blocks[hop - 1]
        return (digest,)


class FastXORDecoder(_FastCodecBase):
    """Peeling decoder mirroring :class:`FastXOREncoder`.

    Per packet: one layer hash, then either one reservoir replay
    (baseline) or an O(t + #set bits) mask evaluation (XOR) -- the
    O(log k) bound of §4.2's "Reducing the Decoding Complexity".
    """

    def __init__(
        self,
        k: int,
        digest_bits: int = 8,
        tau: float = 0.75,
        log2_inv_p: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if log2_inv_p is None:
            log2_inv_p = max(0, round(math.log2(max(1, k))))
        super().__init__(k, tau, log2_inv_p, seed)
        self.digest_bits = digest_bits
        self.decoded: Dict[int, int] = {}
        self.packets_seen = 0
        self._pending: List[Tuple[Set[int], List[int]]] = []

    @property
    def missing(self) -> int:
        """Hops still unknown."""
        return self.k - len(self.decoded)

    @property
    def is_complete(self) -> bool:
        """True when every hop's block is recovered."""
        return not self.missing

    def observe(self, packet_id: int, digest: Tuple[int, ...]) -> None:
        """Feed one digest."""
        self.packets_seen += 1
        value = digest[0]
        if self.is_baseline(packet_id):
            carrier = reservoir_carrier(self.g_baseline, packet_id, self.k)
            self._resolve(carrier, value)
            return
        residual = value
        unknown: Set[int] = set()
        for hop in self.xor_acting(packet_id):
            if hop in self.decoded:
                residual ^= self.decoded[hop]
            else:
                unknown.add(hop)
        if not unknown:
            return
        if len(unknown) == 1:
            self._resolve(unknown.pop(), residual)
        else:
            self._pending.append((unknown, [residual]))

    def _resolve(self, hop: int, value: int) -> None:
        worklist = [(hop, value)]
        while worklist:
            hop, value = worklist.pop()
            if hop in self.decoded:
                continue
            self.decoded[hop] = value
            still_pending = []
            for unknown, residual in self._pending:
                if hop in unknown:
                    unknown.discard(hop)
                    residual[0] ^= value
                    if len(unknown) == 1:
                        worklist.append((unknown.pop(), residual[0]))
                        continue
                if unknown:
                    still_pending.append((unknown, residual))
            self._pending = still_pending

    def path(self) -> List[int]:
        """The recovered blocks, hop 1 first (raises if incomplete)."""
        if not self.is_complete:
            raise DecodingError(f"{self.missing} hops still unknown")
        return [self.decoded[h] for h in range(1, self.k + 1)]

"""The paper's §5 pipeline layouts, expressed as checkable programs.

* path tracing: 4 stages (choose layer, compute g, hash the switch ID,
  write the digest); a second hash instantiation runs in parallel.
* latency: 4 stages (compute latency, compress, compute g, overwrite).
* HPCC: 6 stages of utilisation arithmetic + approximate + write = 8.
* combined (Fig. 6): all three in parallel, query-subset selection
  hidden under the HPCC arithmetic -- no deeper than HPCC alone.
"""

from __future__ import annotations

from typing import List

from repro.pipeline.model import (
    Op,
    OpKind,
    PipelineProgram,
    Stage,
    merge_parallel,
)


def path_tracing_layout(num_hashes: int = 2,
                        prefix: str = "pt") -> PipelineProgram:
    """Static per-flow (path tracing) pipeline: four stages (§5).

    With two hash instantiations the per-stage hash ops double but the
    depth stays four -- "both can be executed in parallel as they are
    independent".
    """
    stages: List[Stage] = [
        Stage([Op.make(f"{prefix}.choose-layer", OpKind.HASH,
                       reads=["pkt.id"], writes=[f"{prefix}.layer"])]),
        Stage([Op.make(f"{prefix}.compute-g", OpKind.HASH,
                       reads=["pkt.id", "pkt.ttl", f"{prefix}.layer"],
                       writes=[f"{prefix}.act"])]),
        Stage([
            Op.make(f"{prefix}.hash-switch-id-{rep}", OpKind.HASH,
                    reads=["switch.id", "pkt.id"],
                    writes=[f"{prefix}.val{rep}"])
            for rep in range(num_hashes)
        ]),
        Stage([
            Op.make(f"{prefix}.write-digest-{rep}", OpKind.WRITE,
                    reads=[f"{prefix}.act", f"{prefix}.val{rep}"],
                    writes=[f"pkt.digest.{prefix}{rep}"])
            for rep in range(num_hashes)
        ]),
    ]
    program = PipelineProgram(f"path-tracing(x{num_hashes})", stages)
    program.validate()
    return program


def latency_layout(prefix: str = "lat") -> PipelineProgram:
    """Dynamic per-flow (latency quantile) pipeline: four stages (§5)."""
    stages = [
        Stage([Op.make(f"{prefix}.compute-latency", OpKind.ALU,
                       reads=["pkt.ingress-ts", "switch.egress-ts"],
                       writes=[f"{prefix}.latency"])]),
        Stage([Op.make(f"{prefix}.compress", OpKind.TABLE,
                       reads=[f"{prefix}.latency"],
                       writes=[f"{prefix}.code"])]),
        Stage([Op.make(f"{prefix}.compute-g", OpKind.HASH,
                       reads=["pkt.id", "pkt.ttl"],
                       writes=[f"{prefix}.act"])]),
        Stage([Op.make(f"{prefix}.overwrite", OpKind.WRITE,
                       reads=[f"{prefix}.act", f"{prefix}.code"],
                       writes=[f"pkt.digest.{prefix}"])]),
    ]
    program = PipelineProgram("latency-quantiles", stages)
    program.validate()
    return program


def hpcc_layout(prefix: str = "cc") -> PipelineProgram:
    """HPCC utilisation pipeline: 6 arithmetic stages + compress + write.

    The multiplications of the EWMA update go through log/exp lookup
    tables (Appendix B/C): TCAM MSB-find, log tables, adds, exp table.
    """
    stages = [
        Stage([
            Op.make(f"{prefix}.read-state", OpKind.REGISTER,
                    reads=["link.U"], writes=[f"{prefix}.U"]),
            Op.make(f"{prefix}.msb-qlen", OpKind.TCAM,
                    reads=["link.qlen"], writes=[f"{prefix}.qlen-msb"]),
        ]),
        Stage([
            Op.make(f"{prefix}.log-qlen", OpKind.TABLE,
                    reads=[f"{prefix}.qlen-msb"],
                    writes=[f"{prefix}.log-qlen"]),
            Op.make(f"{prefix}.log-bytes", OpKind.TABLE,
                    reads=["pkt.bytes"], writes=[f"{prefix}.log-bytes"]),
        ]),
        Stage([
            Op.make(f"{prefix}.qlen-term", OpKind.ALU,
                    reads=[f"{prefix}.log-qlen"],
                    writes=[f"{prefix}.qlen-term"]),
            Op.make(f"{prefix}.byte-term", OpKind.ALU,
                    reads=[f"{prefix}.log-bytes"],
                    writes=[f"{prefix}.byte-term"]),
        ]),
        Stage([
            Op.make(f"{prefix}.exp-qlen", OpKind.TABLE,
                    reads=[f"{prefix}.qlen-term"],
                    writes=[f"{prefix}.u-qlen"]),
            Op.make(f"{prefix}.exp-byte", OpKind.TABLE,
                    reads=[f"{prefix}.byte-term"],
                    writes=[f"{prefix}.u-byte"]),
        ]),
        Stage([Op.make(f"{prefix}.decay-U", OpKind.ALU,
                       reads=[f"{prefix}.U"], writes=[f"{prefix}.U-decayed"])]),
        Stage([Op.make(f"{prefix}.sum-U", OpKind.REGISTER,
                       reads=[f"{prefix}.U-decayed", f"{prefix}.u-qlen",
                              f"{prefix}.u-byte"],
                       writes=["link.U", f"{prefix}.U-new"])]),
        Stage([Op.make(f"{prefix}.approximate", OpKind.TABLE,
                       reads=[f"{prefix}.U-new"],
                       writes=[f"{prefix}.code"])]),
        Stage([Op.make(f"{prefix}.write-digest", OpKind.WRITE,
                       reads=[f"{prefix}.code", f"pkt.digest.{prefix}"],
                       writes=[f"pkt.digest.{prefix}"])]),
    ]
    program = PipelineProgram("hpcc-utilisation", stages)
    program.validate()
    return program


def query_selection_layout(prefix: str = "qs") -> PipelineProgram:
    """Query-subset selection: one hash stage (§3.4 / Fig. 6)."""
    program = PipelineProgram("query-selection", [
        Stage([Op.make(f"{prefix}.choose-subset", OpKind.HASH,
                       reads=["pkt.id"], writes=["pkt.query-set"])]),
    ])
    program.validate()
    return program


def combined_layout() -> PipelineProgram:
    """The Fig. 6 layout: all three queries + selection, in parallel.

    Because queries are independent, the merged depth equals the
    deepest component (HPCC's 8 stages) -- the §5 claim that the
    combination does not add stages over running HPCC alone.
    """
    merged = merge_parallel(
        "combined(path+latency+hpcc)",
        [
            query_selection_layout(),
            path_tracing_layout(num_hashes=2),
            latency_layout(),
            hpcc_layout(),
        ],
    )
    merged.validate()
    return merged

"""A P4-style match-action pipeline model (paper §3.5, §5).

Programmable switches execute a packet through a short, one-directional
sequence of stages; each stage can run several independent operations
in parallel, but an operation cannot read a field written in its own
stage, multiplication/division are unavailable (hence the log/exp
lookup tables of Appendix C), and the stage count is hard-limited.

This module models those constraints so the §5 layouts can be expressed
and *checked*: the paper's claims ("path tracing requires four pipeline
stages", "the combined layout does not increase the number of stages
compared with running HPCC alone") become executable assertions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.exceptions import ConfigurationError

#: Stage budget of a contemporary programmable switch pipeline.
DEFAULT_MAX_STAGES = 12


class OpKind(enum.Enum):
    """Primitive operation classes a stage can host."""

    HASH = "hash"              # hash-unit computation (g, h, layer select)
    ALU = "alu"                # add/sub/shift/compare
    TABLE = "table"            # exact/LPM table lookup (incl. log/exp tables)
    TCAM = "tcam"              # ternary match (MSB find)
    REGISTER = "register"      # stateful register read-modify-write
    WRITE = "write"            # header/digest write
    MULTIPLY = "multiply"      # NOT available in hardware: rejected


@dataclass(frozen=True)
class Op:
    """One primitive operation: what it computes, reads, and writes."""

    name: str
    kind: OpKind
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()

    @staticmethod
    def make(name: str, kind: OpKind, reads: Sequence[str] = (),
             writes: Sequence[str] = ()) -> "Op":
        """Convenience constructor taking plain sequences."""
        return Op(name, kind, frozenset(reads), frozenset(writes))


@dataclass
class Stage:
    """One pipeline stage: operations executing in parallel."""

    ops: List[Op] = field(default_factory=list)

    def writes(self) -> Set[str]:
        """All fields written by this stage."""
        out: Set[str] = set()
        for op in self.ops:
            out |= op.writes
        return out

    def reads(self) -> Set[str]:
        """All fields read by this stage."""
        out: Set[str] = set()
        for op in self.ops:
            out |= op.reads
        return out


class PipelineProgram:
    """An ordered sequence of stages with hardware-validity checking."""

    def __init__(self, name: str, stages: Sequence[Stage],
                 max_stages: int = DEFAULT_MAX_STAGES) -> None:
        self.name = name
        self.stages = list(stages)
        self.max_stages = max_stages

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stages)

    def validate(self) -> None:
        """Raise ConfigurationError on any hardware-infeasible aspect.

        Checks: stage budget; no multiplication; no intra-stage
        read-after-write; every read either comes from packet/metadata
        inputs or a previous stage's write.
        """
        if self.num_stages > self.max_stages:
            raise ConfigurationError(
                f"{self.name}: {self.num_stages} stages exceed the "
                f"{self.max_stages}-stage budget"
            )
        written_before: Set[str] = set()
        for idx, stage in enumerate(self.stages):
            for op in stage.ops:
                if op.kind is OpKind.MULTIPLY:
                    raise ConfigurationError(
                        f"{self.name}: stage {idx}: op {op.name!r} needs "
                        "multiplication -- use log/exp tables (Appendix C)"
                    )
                # A field both read and written by the *same* op is a
                # register-style update and is allowed; reading another
                # op's same-stage output is not.
                same_stage_written = set()
                for other in stage.ops:
                    if other is not op:
                        same_stage_written |= other.writes
                conflict = op.reads & same_stage_written
                if conflict:
                    raise ConfigurationError(
                        f"{self.name}: stage {idx}: op {op.name!r} reads "
                        f"{sorted(conflict)} written in the same stage"
                    )
            written_before |= stage.writes()

    def total_ops(self) -> int:
        """Operation count across all stages."""
        return sum(len(s.ops) for s in self.stages)

    def describe(self) -> str:
        """Human-readable stage table (the Fig. 6 view)."""
        lines = [f"pipeline {self.name!r}: {self.num_stages} stages"]
        for idx, stage in enumerate(self.stages, 1):
            names = ", ".join(op.name for op in stage.ops) or "(idle)"
            lines.append(f"  stage {idx}: {names}")
        return "\n".join(lines)


def schedule(ops: Sequence[Op], name: str = "scheduled",
             max_stages: int = DEFAULT_MAX_STAGES) -> PipelineProgram:
    """Greedy list-schedule ops into the minimum number of stages.

    An op is placed in the earliest stage after every producer of the
    fields it reads -- the standard dependency-level schedule a P4
    compiler performs.
    """
    produced_at: Dict[str, int] = {}
    stages: List[List[Op]] = []
    for op in ops:
        earliest = 0
        for field_name in op.reads:
            if field_name in produced_at:
                earliest = max(earliest, produced_at[field_name] + 1)
        while len(stages) <= earliest:
            stages.append([])
        stages[earliest].append(op)
        for field_name in op.writes:
            produced_at[field_name] = max(produced_at.get(field_name, -1),
                                          earliest)
    program = PipelineProgram(name, [Stage(s) for s in stages], max_stages)
    program.validate()
    return program


def merge_parallel(name: str, programs: Sequence[PipelineProgram],
                   max_stages: int = DEFAULT_MAX_STAGES) -> PipelineProgram:
    """Run independent query pipelines side by side (paper §5).

    Queries are independent, so stage i of the merged pipeline hosts
    stage i of every input program; the merged depth is the max of the
    input depths -- the paper's "without increasing the number of
    stages compared with running HPCC alone" claim.
    """
    depth = max(p.num_stages for p in programs)
    stages = []
    for i in range(depth):
        ops: List[Op] = []
        for prog in programs:
            if i < prog.num_stages:
                ops.extend(prog.stages[i].ops)
        stages.append(Stage(ops))
    merged = PipelineProgram(name, stages, max_stages)
    return merged

"""P4-style pipeline model and the paper's §5 stage layouts.

* :class:`PipelineProgram` / :class:`Stage` / :class:`Op` -- a
  checkable model of match-action pipeline constraints (stage budget,
  no multiplication, no intra-stage read-after-write).
* :func:`schedule` -- dependency-level scheduling of an op list.
* :func:`merge_parallel` -- side-by-side execution of independent
  query pipelines.
* :mod:`repro.pipeline.layouts` -- the paper's path-tracing (4 stages),
  latency (4), HPCC (8) and combined (Fig. 6) layouts.
"""

from repro.pipeline.layouts import (
    combined_layout,
    hpcc_layout,
    latency_layout,
    path_tracing_layout,
    query_selection_layout,
)
from repro.pipeline.model import (
    DEFAULT_MAX_STAGES,
    Op,
    OpKind,
    PipelineProgram,
    Stage,
    merge_parallel,
    schedule,
)

__all__ = [
    "Op",
    "OpKind",
    "Stage",
    "PipelineProgram",
    "schedule",
    "merge_parallel",
    "DEFAULT_MAX_STAGES",
    "path_tracing_layout",
    "latency_layout",
    "hpcc_layout",
    "query_selection_layout",
    "combined_layout",
]

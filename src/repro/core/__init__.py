"""The PINT framework core: queries, plans, engine, runtime (paper §3).

* :class:`Query`, :class:`AggregationType`, :class:`MetadataType` --
  the query language (§3.3, Tables 1-2).
* :class:`QueryEngine` / :class:`ExecutionPlan` -- compile concurrent
  queries into a distribution over query sets under a global bit budget
  (§3.4).
* :class:`PINTFramework` / :class:`QueryRuntime` -- the Source ->
  switches -> Sink -> Recording pipeline of Fig. 3.
"""

from repro.core.engine import QueryEngine
from repro.core.framework import PINTFramework, QueryRuntime
from repro.core.plan import ExecutionPlan, PlanEntry
from repro.core.query import AggregationType, FlowDefinition, Query
from repro.core.values import HopView, MetadataType, PacketContext

__all__ = [
    "Query",
    "AggregationType",
    "FlowDefinition",
    "MetadataType",
    "HopView",
    "PacketContext",
    "QueryEngine",
    "ExecutionPlan",
    "PlanEntry",
    "PINTFramework",
    "QueryRuntime",
]

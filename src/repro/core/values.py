"""Telemetry value model (paper §3, Table 1).

A *value* ``v(p_j, s)`` is anything a switch can compute about a packet
in the data plane: identity (switch ID, ports), state (timestamps,
queue occupancy, link utilisation), or derived quantities.  The
:class:`HopView` is the per-(packet, hop) snapshot our simulated
switches expose to PINT's Encoding Modules -- the same information the
INT specification lets a device export.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MetadataType(enum.Enum):
    """The INT metadata values of Table 1."""

    SWITCH_ID = "switch_id"
    INGRESS_PORT = "ingress_port"
    INGRESS_TIMESTAMP = "ingress_timestamp"
    EGRESS_PORT = "egress_port"
    HOP_LATENCY = "hop_latency"
    EGRESS_TX_UTILIZATION = "egress_tx_utilization"
    QUEUE_OCCUPANCY = "queue_occupancy"
    QUEUE_CONGESTION_STATUS = "queue_congestion_status"

    @property
    def bits(self) -> int:
        """Raw INT encoding width: every value is a 4-byte number [75]."""
        return 32


@dataclass(frozen=True)
class HopView:
    """What one switch observes about one packet.

    All times are in seconds (floats); utilisation and congestion status
    are fractions in [0, 1]; occupancy is in bytes.
    """

    switch_id: int
    hop_number: int
    ingress_port: int = 0
    egress_port: int = 0
    ingress_timestamp: float = 0.0
    hop_latency: float = 0.0
    egress_tx_utilization: float = 0.0
    queue_occupancy: int = 0
    queue_congestion_status: float = 0.0

    def get(self, kind: MetadataType) -> float:
        """Fetch a metadata value by type (Table 1 dispatch)."""
        mapping = {
            MetadataType.SWITCH_ID: float(self.switch_id),
            MetadataType.INGRESS_PORT: float(self.ingress_port),
            MetadataType.INGRESS_TIMESTAMP: self.ingress_timestamp,
            MetadataType.EGRESS_PORT: float(self.egress_port),
            MetadataType.HOP_LATENCY: self.hop_latency,
            MetadataType.EGRESS_TX_UTILIZATION: self.egress_tx_utilization,
            MetadataType.QUEUE_OCCUPANCY: float(self.queue_occupancy),
            MetadataType.QUEUE_CONGESTION_STATUS: self.queue_congestion_status,
        }
        return mapping[kind]


@dataclass(frozen=True)
class PacketContext:
    """Identity of a packet as PINT sees it.

    ``packet_id`` is the unique identifier global hashes are applied to
    (derived from IPID/TCP sequence numbers in a real deployment, §4.1);
    ``flow_id`` is the flow key under the query's flow definition;
    ``path_len`` is the packet's total hop count (known to the sink from
    the TTL, footnote 6).
    """

    packet_id: int
    flow_id: int
    path_len: int
    payload_bytes: int = 1000

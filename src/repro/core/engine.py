"""The PINT Query Engine (paper §3.4).

Compiles a set of concurrent queries plus a global per-packet bit
budget into an :class:`ExecutionPlan`: a distribution over query sets
such that (a) every set fits the budget and (b) every query appears on
at least its requested fraction of packets.

The paper leaves automatic plan selection as future work ("the PINT
execution plan is manually selected", §7); we implement the natural
greedy bin-packing compiler, which reproduces the paper's hand-built
combined-experiment plan exactly, and also accept hand-written plans.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.plan import ExecutionPlan, PlanEntry
from repro.core.query import Query
from repro.exceptions import BudgetError


class QueryEngine:
    """Compiles queries into execution plans."""

    def __init__(self, global_budget: int, seed: int = 0) -> None:
        if global_budget < 1:
            raise BudgetError("global budget must be >= 1 bit")
        self.global_budget = global_budget
        self.seed = seed

    def compile(self, queries: Sequence[Query]) -> ExecutionPlan:
        """Build a plan meeting every query's frequency.

        Greedy: while any query still needs probability mass, build a
        set first-fit from the neediest queries, and run it with the
        smallest remaining need among its members.  Raises
        :class:`BudgetError` when the demands cannot fit (e.g. a single
        query wider than the global budget, or total probability > 1).
        """
        if not queries:
            raise BudgetError("no queries to compile")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise BudgetError("query names must be unique")
        for q in queries:
            if q.bit_budget > self.global_budget:
                raise BudgetError(
                    f"query {q.name!r} needs {q.bit_budget} bits > "
                    f"global budget {self.global_budget}"
                )
        remaining: Dict[str, float] = {q.name: q.frequency for q in queries}
        by_name = {q.name: q for q in queries}
        entries: List[PlanEntry] = []
        total_probability = 0.0
        for _ in range(8 * len(queries) + 8):
            needy = [n for n, r in remaining.items() if r > 1e-12]
            if not needy:
                break
            needy.sort(key=lambda n: -remaining[n])
            subset: List[Query] = []
            bits_left = self.global_budget
            for name in needy:
                q = by_name[name]
                if q.bit_budget <= bits_left:
                    subset.append(q)
                    bits_left -= q.bit_budget
            if not subset:
                raise BudgetError("no query fits the remaining budget")
            p = min(remaining[q.name] for q in subset)
            p = min(p, 1.0 - total_probability)
            if p <= 1e-12:
                raise BudgetError(
                    "query frequencies are infeasible within the global "
                    "budget (total demand exceeds one packet's worth)"
                )
            entries.append(PlanEntry(tuple(subset), p))
            total_probability += p
            for q in subset:
                remaining[q.name] = max(0.0, remaining[q.name] - p)
        if any(r > 1e-9 for r in remaining.values()):
            raise BudgetError(
                "could not satisfy all query frequencies: leftover "
                f"demand {remaining}"
            )
        plan = ExecutionPlan(entries, self.global_budget, self.seed)
        plan.validate_frequencies()
        return plan

    def manual_plan(
        self, rows: Sequence[Tuple[Sequence[Query], float]]
    ) -> ExecutionPlan:
        """Build a hand-written plan (the paper's §6.4 configuration)."""
        entries = [PlanEntry(tuple(qs), p) for qs, p in rows]
        return ExecutionPlan(entries, self.global_budget, self.seed)

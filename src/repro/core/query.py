"""The PINT query language (paper §3.3).

A query is the tuple ``(val_t, agg_t, bit-budget [, space-budget,
flow definition, frequency])``:

* ``val_t`` -- which telemetry value is collected (Table 1);
* ``agg_t`` -- the aggregation mode (§3.1);
* ``bit_budget`` -- digest bits this query may occupy on a packet;
* ``space_budget`` -- optional per-flow storage cap for the Recording
  Module (in digests);
* ``flow_def`` -- which header fields define a flow (per-flow modes);
* ``frequency`` -- minimum fraction of packets that must carry this
  query's digest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.values import MetadataType
from repro.exceptions import ConfigurationError


class AggregationType(enum.Enum):
    """The three aggregation modes of §3.1."""

    PER_PACKET = "per_packet"
    STATIC_PER_FLOW = "static_per_flow"
    DYNAMIC_PER_FLOW = "dynamic_per_flow"


class FlowDefinition(enum.Enum):
    """Header fields that identify a flow (per-flow queries)."""

    FIVE_TUPLE = "five_tuple"
    SOURCE_IP = "source_ip"
    SOURCE_DEST_PAIR = "source_dest_pair"


@dataclass(frozen=True)
class Query:
    """One telemetry query (§3.3).

    Examples
    --------
    Path tracing with one byte per packet::

        Query("path", MetadataType.SWITCH_ID,
              AggregationType.STATIC_PER_FLOW, bit_budget=8)

    Median hop latency with a 100-digest per-flow sketch::

        Query("lat", MetadataType.HOP_LATENCY,
              AggregationType.DYNAMIC_PER_FLOW, bit_budget=8,
              space_budget=100)
    """

    name: str
    value_type: MetadataType
    agg_type: AggregationType
    bit_budget: int
    space_budget: Optional[int] = None
    flow_def: FlowDefinition = FlowDefinition.FIVE_TUPLE
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("query needs a name")
        if self.bit_budget < 1:
            raise ConfigurationError("bit_budget must be >= 1")
        if not 0.0 < self.frequency <= 1.0:
            raise ConfigurationError("frequency must be in (0, 1]")
        if self.space_budget is not None and self.space_budget < 1:
            raise ConfigurationError("space_budget must be >= 1")
        if (
            self.agg_type is AggregationType.PER_PACKET
            and self.space_budget is not None
        ):
            raise ConfigurationError(
                "per-packet aggregation keeps no per-flow state"
            )

"""Execution plans: the Query Engine's output (paper §3.4, Fig. 3).

An :class:`ExecutionPlan` is a probability distribution over *query
sets*; every switch hashes the packet id against this distribution to
decide which queries act on the packet, so all switches agree without
communication.  Each set's cumulative bit budget must fit the global
per-packet budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.query import Query
from repro.exceptions import BudgetError
from repro.hashing import GlobalHash, cumulative_select_array


@dataclass(frozen=True)
class PlanEntry:
    """One (query set, probability) row of the execution plan."""

    queries: Tuple[Query, ...]
    probability: float

    def bits(self) -> int:
        """Cumulative digest bits of this set."""
        return sum(q.bit_budget for q in self.queries)


class ExecutionPlan:
    """A validated distribution over query sets.

    Parameters
    ----------
    entries:
        The (query set, probability) rows.  Probabilities must sum to at
        most 1 (the remainder maps to "no query on this packet").
    global_budget:
        The per-packet digest width every row must respect.
    seed:
        Seed of the set-selection global hash.
    """

    def __init__(
        self,
        entries: Sequence[PlanEntry],
        global_budget: int,
        seed: int = 0,
    ) -> None:
        if global_budget < 1:
            raise BudgetError("global budget must be >= 1 bit")
        total_p = sum(e.probability for e in entries)
        if total_p > 1.0 + 1e-9:
            raise BudgetError(f"plan probabilities sum to {total_p:.4f} > 1")
        for entry in entries:
            if entry.bits() > global_budget:
                raise BudgetError(
                    f"query set {[q.name for q in entry.queries]} needs "
                    f"{entry.bits()} bits > global budget {global_budget}"
                )
            if entry.probability <= 0:
                raise BudgetError("plan entries need positive probability")
        self.entries: List[PlanEntry] = list(entries)
        self.global_budget = global_budget
        self._select = GlobalHash(seed, "query-set-select")

    def query_frequency(self, query: Query) -> float:
        """Total probability mass carrying ``query``."""
        return sum(
            e.probability for e in self.entries if query in e.queries
        )

    def validate_frequencies(self) -> None:
        """Check every query's requested frequency is met (§3.3)."""
        seen: Dict[str, float] = {}
        for entry in self.entries:
            for q in entry.queries:
                seen[q.name] = seen.get(q.name, 0.0) + entry.probability
        queries = {q.name: q for e in self.entries for q in e.queries}
        for name, query in queries.items():
            if seen.get(name, 0.0) + 1e-9 < query.frequency:
                raise BudgetError(
                    f"query {name!r} runs on {seen.get(name, 0.0):.4f} of "
                    f"packets < requested frequency {query.frequency:.4f}"
                )

    def select(self, packet_id: int) -> Tuple[Query, ...]:
        """Query set served by this packet (same answer at every switch)."""
        u = self._select.uniform(packet_id)
        acc = 0.0
        for entry in self.entries:
            acc += entry.probability
            if u < acc:
                return entry.queries
        return ()

    def select_array(self, packet_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`select`: one plan-entry index per lane.

        Returns -1 for lanes no entry claims ("no query on this
        packet").  Lane-for-lane consistent with the scalar walk --
        same hash, same cumulative-probability accumulation order, same
        ``u < acc`` boundary -- so ``entries[select_array(p)[i]].queries
        == select(p[i])`` wherever the index is non-negative.
        """
        return cumulative_select_array(
            self._select.uniform_array(np.asarray(packet_ids)),
            [entry.probability for entry in self.entries],
        )

    def digest_offset(self, queries: Tuple[Query, ...], query: Query) -> int:
        """Bit offset of ``query``'s digest inside this set's packing.

        Digests are packed low-to-high in set order; every switch and
        the sink derive identical offsets from the (deterministic) set.
        """
        offset = 0
        for q in queries:
            if q is query or q.name == query.name:
                return offset
            offset += q.bit_budget
        raise KeyError(f"{query.name!r} not in this query set")

"""The PINT runtime: Source, per-switch encoding, Sink, Recording (§3.4).

:class:`PINTFramework` wires together an execution plan and one
*runtime* per query.  A runtime implements the three modules of Fig. 3:

* ``on_hop``   -- the Encoding Module, run at every switch;
* ``on_sink``  -- hands the extracted digest to the Recording Module;
* inference is exposed by each concrete runtime's own query methods.

The framework is transport-agnostic: callers (examples, the DES
simulator, tests) push packets through :meth:`process_packet` with the
list of per-hop :class:`~repro.core.values.HopView` snapshots.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Tuple

from repro.core.plan import ExecutionPlan
from repro.core.query import Query
from repro.core.values import HopView, PacketContext
from repro.exceptions import ConfigurationError


class QueryRuntime(abc.ABC):
    """Per-query Encoding + Recording behaviour."""

    def __init__(self, query: Query) -> None:
        self.query = query

    @abc.abstractmethod
    def on_hop(self, ctx: PacketContext, hop: HopView, digest: int) -> int:
        """Encoding Module: return the (possibly modified) query digest.

        ``digest`` is the query's current slice of the packet digest
        (``query.bit_budget`` bits); the return value replaces it.
        """

    @abc.abstractmethod
    def on_sink(self, ctx: PacketContext, digest: int) -> None:
        """Recording Module: consume the extracted digest at the sink."""


class PINTFramework:
    """Orchestrates concurrent queries under one execution plan."""

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self._runtimes: Dict[str, QueryRuntime] = {}
        self.packets_processed = 0
        self.digest_bits_total = 0

    def register(self, runtime: QueryRuntime) -> None:
        """Attach the runtime implementing one of the plan's queries."""
        name = runtime.query.name
        if name in self._runtimes:
            raise ConfigurationError(f"duplicate runtime for {name!r}")
        self._runtimes[name] = runtime

    def runtime(self, name: str) -> QueryRuntime:
        """Look up a registered runtime by query name."""
        return self._runtimes[name]

    def _check_registered(self, queries: Tuple[Query, ...]) -> None:
        for q in queries:
            if q.name not in self._runtimes:
                raise ConfigurationError(f"no runtime registered for {q.name!r}")

    def process_packet(
        self, ctx: PacketContext, hops: Sequence[HopView]
    ) -> int:
        """Simulate one packet: Source -> every switch -> Sink.

        Returns the final global digest (what travelled on the wire),
        after the sink has already dispatched each query's slice to its
        Recording Module.  The digest is exactly ``plan.global_budget``
        bits -- the paper's fixed-width, MTU-safe guarantee (§3.3).
        """
        queries = self.plan.select(ctx.packet_id)
        self._check_registered(queries)
        digest = 0
        for hop in hops:
            for query in queries:
                offset = self.plan.digest_offset(queries, query)
                width = query.bit_budget
                mask = (1 << width) - 1
                piece = (digest >> offset) & mask
                piece = self._runtimes[query.name].on_hop(ctx, hop, piece) & mask
                digest = (digest & ~(mask << offset)) | (piece << offset)
        for query in queries:
            offset = self.plan.digest_offset(queries, query)
            piece = (digest >> offset) & ((1 << query.bit_budget) - 1)
            self._runtimes[query.name].on_sink(ctx, piece)
        self.packets_processed += 1
        self.digest_bits_total += self.plan.global_budget
        return digest

    def overhead_bytes_per_packet(self) -> float:
        """Average digest bytes added per packet (constant by design)."""
        return self.plan.global_budget / 8.0

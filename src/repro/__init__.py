"""PINT: Probabilistic In-band Network Telemetry -- full reproduction.

A from-scratch Python implementation of the SIGCOMM 2020 paper by
Ben Basat et al.: the PINT query framework, its distributed coding
schemes, value approximation, the use-case applications (path tracing,
latency quantiles, HPCC congestion control), the baselines it is
compared against (classic INT, PPM, AMS), and a packet-level network
simulator substrate used to regenerate the paper's evaluation.

Subpackages
-----------
``repro.hashing``   global hash coordination (paper §4.1)
``repro.coding``    distributed coding schemes (§4.2)
``repro.approx``    value approximation (§4.3)
``repro.sketch``    KLL / SpaceSaving / reservoirs (Recording Module)
``repro.core``      queries, engine, execution plans (§3)
``repro.net``       packets, switches, topologies, routing
``repro.sim``       discrete-event network simulator (NS3 stand-in);
                    HPCC congestion control (INT- and PINT-fed) lives
                    in ``repro.sim.transport`` + ``repro.apps.congestion``
``repro.apps``      the three use cases + loop detection
``repro.baselines`` PPM, AMS, classic INT
``repro.analysis``  Appendix A reference formulas
``repro.collector`` sink-side streaming collector (sharded flow state,
                    batched ingestion; see DESIGN.md)
``repro.replay``    columnar trace/scenario engine with a vectorized
                    dataplane feeding the collector (see DESIGN.md)
"""

__version__ = "1.0.0"

from repro.exceptions import (
    BudgetError,
    ConfigurationError,
    DecodingError,
    ReproError,
    SimulationError,
    TopologyError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "BudgetError",
    "DecodingError",
    "SimulationError",
    "TopologyError",
]

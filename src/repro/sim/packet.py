"""Simulated packets, including their telemetry payloads.

``wire_bytes`` is what occupies link buffers and serialisation time:
payload + base headers + telemetry overhead.  Classic INT *grows* the
overhead at every hop (the §2 problem); PINT's digest is a fixed-width
field set at the source (the §3.3 guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Ethernet/IP/TCP base header bytes on every packet.
BASE_HEADER_BYTES = 40
#: Bytes of a bare ACK (headers only, before telemetry echo).
ACK_BYTES = 60


@dataclass
class INTRecord:
    """One hop's classic-INT export (the HPCC triple plus link rate)."""

    timestamp: float
    queue_bytes: int
    tx_bytes: int
    link_rate_bps: float


@dataclass
class SimPacket:
    """A data or ACK packet in flight."""

    pid: int                     # globally unique id (hash input)
    flow_id: int
    seq: int                     # packet index within the flow
    payload_bytes: int
    is_ack: bool = False
    #: telemetry mode overhead added at the source (PINT: fixed digest).
    fixed_overhead_bytes: int = 0
    #: overhead accumulated per hop (classic INT).
    int_overhead_bytes: int = 0
    int_records: List[INTRecord] = field(default_factory=list)
    #: PINT digest (max-utilisation code for the HPCC query).
    digest: int = 0
    hop_count: int = 0
    send_time: float = 0.0
    #: ACK fields: cumulative ack index + echoed telemetry.
    ack_next_expected: int = 0
    echo_records: Optional[List[INTRecord]] = None
    echo_digest: Optional[int] = None

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire: payload + headers + telemetry."""
        base = ACK_BYTES if self.is_ack else self.payload_bytes + BASE_HEADER_BYTES
        return base + self.fixed_overhead_bytes + self.int_overhead_bytes

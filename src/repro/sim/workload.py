"""Traffic workloads: the paper's flow-size distributions + Poisson arrivals.

The web-search [3] and Hadoop [62] distributions are encoded by their
deciles -- exactly the x-axis tick marks of the paper's Fig. 7(b)/(c),
which are chosen "such that there are 10% of the flows between
consecutive tick marks".  Sampling is inverse-transform with
log-linear interpolation between deciles.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class EmpiricalCDF:
    """Inverse-transform sampler over (size, cumulative prob) points."""

    def __init__(self, points: Sequence[Tuple[float, float]], min_size: float):
        if not points:
            raise ValueError("need CDF points")
        probs = [p for _, p in points]
        if probs != sorted(probs) or probs[-1] != 1.0:
            raise ValueError("CDF probabilities must be sorted and end at 1")
        self.points: List[Tuple[float, float]] = [(min_size, 0.0)] + [
            (float(s), float(p)) for s, p in points
        ]
        #: Columnar views of ``points`` for the vectorised sampler.
        self._sizes = np.asarray([s for s, _ in self.points])
        self._probs = np.asarray([p for _, p in self.points])
        self._log_sizes = np.log(self._sizes)

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes."""
        u = rng.random()
        for (s0, p0), (s1, p1) in zip(self.points, self.points[1:]):
            if u <= p1:
                frac = 0.0 if p1 == p0 else (u - p0) / (p1 - p0)
                log_size = math.log(s0) + frac * (math.log(s1) - math.log(s0))
                return max(1, int(round(math.exp(log_size))))
        return int(self.points[-1][0])

    def sizes_from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Map uniforms on [0, 1) to flow sizes, one per lane.

        Lane-for-lane identical to feeding each ``u[i]`` through
        :meth:`sample`'s segment walk: the same first segment with
        ``u <= p1`` is selected (``searchsorted`` left on the upper
        probabilities), the same log-linear interpolation applied, the
        same round-half-even rounding taken.
        """
        u = np.asarray(u, dtype=np.float64)
        seg = np.searchsorted(self._probs[1:], u, side="left")
        p0 = self._probs[seg]
        span = self._probs[seg + 1] - p0
        frac = np.where(span == 0.0, 0.0, (u - p0) / np.where(span == 0.0, 1.0, span))
        log0 = self._log_sizes[seg]
        log_size = log0 + frac * (self._log_sizes[seg + 1] - log0)
        return np.maximum(1, np.round(np.exp(log_size))).astype(np.int64)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` flow sizes at once (vectorised inverse transform).

        Takes a :class:`numpy.random.Generator` (the columnar trace
        generators' RNG); the scalar :meth:`sample` stream over
        :class:`random.Random` is untouched and the two draw from
        different generators, so neither perturbs the other's
        reproducibility.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.sizes_from_uniform(rng.random(n))

    def mean(
        self,
        samples: Optional[int] = None,
        seed: Optional[int] = None,
        method: Optional[str] = None,
    ) -> float:
        """Mean flow size (load calibration).

        ``method="exact"`` integrates the log-linear segments in closed
        form: within a segment the size is ``s0 * (s1/s0)**f`` with
        ``f`` uniform on [0, 1], whose mean is
        ``(s1 - s0) / ln(s1 / s0)``.  ``method="monte-carlo"`` keeps
        the historical sampling estimator (``samples`` draws with
        ``seed``); the two agree to within MC error (asserted in
        tests).  When ``method`` is not given, passing ``samples`` or
        ``seed`` selects the sampling estimator those arguments
        configure; a bare ``mean()`` is exact.
        """
        if method is None:
            method = (
                "monte-carlo"
                if samples is not None or seed is not None
                else "exact"
            )
        if method == "monte-carlo":
            rng = random.Random(0 if seed is None else seed)
            n = 20000 if samples is None else samples
            return sum(self.sample(rng) for _ in range(n)) / n
        if method != "exact":
            raise ValueError(f"unknown mean method {method!r}")
        total = 0.0
        for (s0, p0), (s1, p1) in zip(self.points, self.points[1:]):
            if p1 == p0:
                continue
            if s1 == s0:
                seg_mean = s0
            else:
                seg_mean = (s1 - s0) / (math.log(s1) - math.log(s0))
            total += (p1 - p0) * seg_mean
        return total


#: Web-search deciles (bytes): the Fig. 7(b) tick marks.
WEB_SEARCH_DECILES = [
    (7_000, 0.1), (20_000, 0.2), (30_000, 0.3), (50_000, 0.4),
    (73_000, 0.5), (197_000, 0.6), (989_000, 0.7), (2_000_000, 0.8),
    (5_000_000, 0.9), (30_000_000, 1.0),
]

#: Hadoop deciles (bytes): the Fig. 7(c) tick marks.
HADOOP_DECILES = [
    (324, 0.1), (399, 0.2), (500, 0.3), (599, 0.4), (699, 0.5),
    (999, 0.6), (7_000, 0.7), (46_000, 0.8), (120_000, 0.9),
    (10_000_000, 1.0),
]


def web_search_cdf(scale: float = 1.0) -> EmpiricalCDF:
    """The web-search workload of [3] (DCTCP), decile-encoded.

    ``scale`` multiplies all sizes: benchmarks run the shape-preserving
    scaled-down workload on scaled-down link rates (DESIGN.md,
    substitution 1).
    """
    return EmpiricalCDF(
        [(s * scale, p) for s, p in WEB_SEARCH_DECILES],
        min_size=max(100, 1_000 * scale),
    )


def hadoop_cdf(scale: float = 1.0) -> EmpiricalCDF:
    """The Facebook Hadoop workload of [62], decile-encoded."""
    return EmpiricalCDF(
        [(s * scale, p) for s, p in HADOOP_DECILES],
        min_size=max(50, 150 * scale),
    )


@dataclass(frozen=True)
class FlowSpec:
    """One generated flow: who, how much, when."""

    src_host: int
    dst_host: int
    size_bytes: int
    start_time: float


def poisson_flows(
    hosts: Sequence[int],
    cdf: EmpiricalCDF,
    load: float,
    host_rate_bps: float,
    duration: float,
    rng: random.Random,
    max_flows: Optional[int] = None,
) -> List[FlowSpec]:
    """Poisson arrivals hitting a target average network load.

    Each host generates flows to uniformly random other hosts; the
    aggregate arrival rate is ``load * num_hosts * host_rate / mean_size``
    (the paper's definition of network load, header bytes excluded).
    """
    if not 0.0 < load < 1.0:
        raise ValueError("load must be in (0, 1)")
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    mean_size = cdf.mean()
    rate = load * len(hosts) * host_rate_bps / 8.0 / mean_size  # flows/sec
    flows: List[FlowSpec] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration or (max_flows is not None and len(flows) >= max_flows):
            break
        src, dst = rng.sample(list(hosts), 2)
        flows.append(FlowSpec(src, dst, cdf.sample(rng), t))
    return flows

"""Experiment metrics: FCT, slowdown, goodput (the paper's y-axes)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """q-percentile (q in [0, 100]), lower interpolation."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(q / 100 * len(ordered)) - 1))
    return ordered[idx]


@dataclass
class FlowResult:
    """Completion record of one flow."""

    flow_id: int
    size_bytes: int
    fct: float
    ideal_fct: float

    @property
    def slowdown(self) -> float:
        """FCT over alone-in-the-network FCT (Fig. 7's y-axis)."""
        return self.fct / self.ideal_fct

    @property
    def goodput_bps(self) -> float:
        """Application throughput over the flow's lifetime."""
        return self.size_bytes * 8.0 / self.fct


class ExperimentResult:
    """Aggregates completed flows into the paper's statistics."""

    def __init__(self, flows: Sequence[FlowResult]) -> None:
        self.flows = list(flows)

    @property
    def count(self) -> int:
        """Completed flows."""
        return len(self.flows)

    def mean_fct(self) -> float:
        """Average FCT (Fig. 1's y-axis, before normalisation)."""
        return sum(f.fct for f in self.flows) / len(self.flows)

    def mean_slowdown(self) -> float:
        """Average slowdown across flows."""
        return sum(f.slowdown for f in self.flows) / len(self.flows)

    def slowdown_p95(self) -> float:
        """95th-percentile slowdown (Fig. 7's y-axis)."""
        return percentile([f.slowdown for f in self.flows], 95)

    def goodput_of_large(self, threshold_bytes: int = 10_000_000) -> float:
        """Mean goodput of flows above ``threshold`` (Fig. 2's metric)."""
        large = [f for f in self.flows if f.size_bytes > threshold_bytes]
        if not large:
            raise ValueError("no flows above threshold completed")
        return sum(f.goodput_bps for f in large) / len(large)

    def by_size_buckets(
        self, edges: Sequence[int]
    ) -> List[Tuple[int, List[FlowResult]]]:
        """Group flows into (upper-edge, members) size buckets."""
        buckets: List[Tuple[int, List[FlowResult]]] = [(e, []) for e in edges]
        for flow in self.flows:
            for edge, members in buckets:
                if flow.size_bytes <= edge:
                    members.append(flow)
                    break
            else:
                buckets[-1][1].append(flow)
        return buckets

    def slowdown_p95_by_bucket(
        self, edges: Sequence[int]
    ) -> List[Tuple[int, Optional[float]]]:
        """Fig. 7(b)/(c): per-size-bucket 95th-percentile slowdown."""
        out = []
        for edge, members in self.by_size_buckets(edges):
            if members:
                out.append((edge, percentile([f.slowdown for f in members], 95)))
            else:
                out.append((edge, None))
        return out

"""Link-side telemetry stamping: none, classic INT, or PINT.

Telemetry happens at *dequeue* time on each traversed link -- exactly
the egress-pipeline point the paper instruments:

* ``INTTelemetry`` appends the (timestamp, queue, txBytes) triple and
  grows the packet by 12 bytes/hop (plus the 8B INT header at hop 1) --
  the §2 linear-overhead cost.
* ``PINTTelemetry`` maintains the paper's in-switch EWMA utilisation
  ``U`` (§4.3, "Tuning HPCC calculation for switch computation"),
  compresses it to ``bits`` with randomized multiplicative rounding,
  and max-folds it into the fixed-width digest -- but only on packets
  the query-frequency hash selects (the Fig. 8 knob p).

Every stamp also exposes ``on_sink(pkt, now)``, invoked by the
receiving endpoint when a data packet terminates.  With a
:class:`repro.collector.Collector` attached (``PINTTelemetry``'s
``collector`` argument), digests stream into the collector *during*
the DES run instead of being post-processed from echoes afterwards --
the sink-side half of the paper's architecture.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.congestion import UtilizationCodec
from repro.baselines.int_classic import HEADER_BYTES, VALUE_BYTES
from repro.hashing import GlobalHash
from repro.sim.packet import INTRecord, SimPacket


class NoTelemetry:
    """Overhead-free baseline (the "no overhead" normalisation runs)."""

    fixed_overhead_bytes = 0

    def on_dequeue(self, pkt: SimPacket, link) -> None:
        """No-op."""

    def on_sink(
        self, pkt: SimPacket, now: float = 0.0, selected: Optional[bool] = None
    ) -> None:
        """No-op: nothing is exported."""

    def source_overhead(self) -> int:
        """Bytes the source adds: none."""
        return 0


class INTTelemetry:
    """Classic INT: per-hop append of ``num_values`` 4-byte values."""

    def __init__(self, num_values: int = 3) -> None:
        if num_values < 1:
            raise ValueError("num_values must be >= 1")
        self.num_values = num_values

    def source_overhead(self) -> int:
        """INT's metadata header, added once at the source."""
        return HEADER_BYTES

    def on_dequeue(self, pkt: SimPacket, link) -> None:
        """Append this hop's record and grow the packet."""
        if pkt.is_ack:
            return
        pkt.int_records.append(
            INTRecord(
                timestamp=link.sim.now,
                queue_bytes=link.queued_bytes,
                tx_bytes=link.tx_bytes,
                link_rate_bps=link.rate_bps,
            )
        )
        pkt.int_overhead_bytes += VALUE_BYTES * self.num_values
        pkt.hop_count += 1

    def on_sink(
        self, pkt: SimPacket, now: float = 0.0, selected: Optional[bool] = None
    ) -> None:
        """No-op: classic INT exports via the ACK echo, not a collector."""


class PINTTelemetry:
    """PINT-for-HPCC: EWMA utilisation, compressed, max-aggregated.

    Parameters
    ----------
    base_rtt:
        The EWMA horizon T (the paper uses the network's base RTT).
    bits:
        Digest width (8 in the paper).
    frequency:
        Fraction p of packets carrying the congestion digest (Fig. 8).
    digest_bytes:
        Fixed per-packet overhead the PINT source reserves (2 bytes =
        the paper's 16-bit global budget).
    collector:
        Optional :class:`repro.collector.Collector`; when set, every
        digest-carrying data packet that reaches its sink is streamed
        into it as a ``(flow_id, pid, hop_count, digest)`` record.
    """

    def __init__(
        self,
        base_rtt: float,
        bits: int = 8,
        frequency: float = 1.0,
        digest_bytes: int = 2,
        epsilon: float = 0.025,
        seed: int = 0,
        collector=None,
    ) -> None:
        if base_rtt <= 0:
            raise ValueError("base_rtt must be positive")
        if not 0.0 < frequency <= 1.0:
            raise ValueError("frequency must be in (0, 1]")
        self.base_rtt = base_rtt
        self.frequency = frequency
        self.digest_bytes = digest_bytes
        self.codec = UtilizationCodec(bits, epsilon, seed=seed)
        self.collector = collector
        self._select = GlobalHash(seed, "hpcc-query-frequency")

    def source_overhead(self) -> int:
        """The fixed digest width, reserved on every packet."""
        return self.digest_bytes

    def carries_query(self, pid: int) -> bool:
        """Does the query-frequency hash select this packet?"""
        return self._select.uniform(pid) < self.frequency

    def on_dequeue(self, pkt: SimPacket, link) -> None:
        """Update the link EWMA; max-fold the encoded utilisation."""
        if pkt.is_ack:
            return
        self._update_ewma(link, pkt.wire_bytes)
        pkt.hop_count += 1
        if not self.carries_query(pkt.pid):
            return
        code = self.codec.encode(link.ewma_util, pkt.pid, pkt.hop_count)
        if code > pkt.digest:
            pkt.digest = code

    def on_sink(
        self, pkt: SimPacket, now: float = 0.0, selected: Optional[bool] = None
    ) -> None:
        """Stream the terminated packet's digest into the collector.

        ``selected`` forwards an already-computed ``carries_query``
        verdict so the sink hashes each pid only once.
        """
        if self.collector is None or pkt.is_ack:
            return
        if selected is None:
            selected = self.carries_query(pkt.pid)
        if not selected:
            return
        self.collector.ingest(
            pkt.flow_id, pkt.pid, pkt.hop_count, pkt.digest, now=now
        )

    def _update_ewma(self, link, byte: int) -> None:
        """The paper's update: U = (T-tau)/T * U + qlen*tau/(B*T^2) + byte/(B*T)."""
        now = link.sim.now
        tau = now - link.ewma_last_update
        link.ewma_last_update = now
        t_horizon = self.base_rtt
        tau = min(tau, t_horizon)
        b_rate = link.rate_bps / 8.0  # bytes per second
        link.ewma_util = (
            (t_horizon - tau) / t_horizon * link.ewma_util
            + link.queued_bytes * tau / (b_rate * t_horizon * t_horizon)
            + byte / (b_rate * t_horizon)
        )

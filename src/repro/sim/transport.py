"""Transport endpoints: TCP Reno and HPCC senders over the DES.

* :class:`RenoSender` -- slow start, AIMD congestion avoidance, fast
  retransmit, timeout; drives the Figs. 1-2 overhead experiments (the
  paper's NS3 setup uses "standard ECMP routing with TCP Reno").
* :class:`HPCCSender` -- the HPCC window rule (Li et al., SIGCOMM'19)
  fed either by classic INT per-link records or by PINT's bottleneck
  digest, with the paper's recommended settings (WAI = 80B,
  maxStage = 0, eta = 95%).

A :class:`Flow` owns both endpoints; the receiver acks every data
packet and echoes whatever telemetry the packet carried.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim.network import Network
from repro.sim.packet import INTRecord, SimPacket


class Receiver:
    """Cumulative-ACK receiver; echoes telemetry back to the sender."""

    def __init__(self, flow: "Flow") -> None:
        self.flow = flow
        self.expected = 0
        self._out_of_order: set = set()

    def on_data(self, pkt: SimPacket) -> None:
        """Accept a data packet and emit an ACK."""
        if pkt.seq == self.expected:
            self.expected += 1
            while self.expected in self._out_of_order:
                self._out_of_order.discard(self.expected)
                self.expected += 1
        elif pkt.seq > self.expected:
            self._out_of_order.add(pkt.seq)
        net = self.flow.network
        ack = SimPacket(
            pid=net.new_pid(),
            flow_id=pkt.flow_id,
            seq=pkt.seq,
            payload_bytes=0,
            is_ack=True,
            ack_next_expected=self.expected,
            send_time=net.sim.now,
        )
        if pkt.int_records:
            ack.echo_records = list(pkt.int_records)
            # The echo consumes reverse bandwidth too.
            ack.int_overhead_bytes = pkt.int_overhead_bytes
        telemetry = net.telemetry
        selected = None
        if telemetry is not None and hasattr(telemetry, "carries_query"):
            selected = telemetry.carries_query(pkt.pid)
            if selected:
                ack.echo_digest = pkt.digest
                ack.fixed_overhead_bytes = telemetry.digest_bytes
        # Sink-side export: the terminating host streams the packet's
        # digest to an attached collector (repro.collector).  The
        # query-selection verdict is forwarded so it is hashed once.
        if telemetry is not None and hasattr(telemetry, "on_sink"):
            telemetry.on_sink(pkt, net.sim.now, selected)
        net.inject(self.flow.dst_host, ack)


class SenderBase:
    """Window-based sender machinery shared by Reno and HPCC."""

    def __init__(self, flow: "Flow") -> None:
        self.flow = flow
        self.acked = 0          # next index the receiver expects
        self.next_seq = 0       # next new packet index
        self.dupacks = 0
        self.finished = False
        self._rto_token = 0
        self.retransmissions = 0

    # -- window in packets (subclasses define it) -------------------------

    def window_packets(self) -> float:
        """Current congestion window, in packets."""
        raise NotImplementedError

    def on_feedback(self, pkt: SimPacket) -> None:
        """Transport-specific reaction to a (new) ACK."""

    def on_loss(self, timeout: bool) -> None:
        """Transport-specific reaction to a loss signal."""

    # -- shared machinery ---------------------------------------------------

    @property
    def inflight(self) -> int:
        return self.next_seq - self.acked

    def start(self) -> None:
        """Kick off transmission (scheduled at the flow's start time)."""
        self.send_available()
        self._arm_rto()

    def send_available(self) -> None:
        while (
            not self.finished
            and self.next_seq < self.flow.num_packets
            and self.inflight < self.window_packets()
        ):
            self._send(self.next_seq)
            self.next_seq += 1

    def _send(self, seq: int) -> None:
        flow = self.flow
        net = flow.network
        telemetry = net.telemetry
        payload = flow.packet_payload(seq)
        pkt = SimPacket(
            pid=net.new_pid(),
            flow_id=flow.flow_id,
            seq=seq,
            payload_bytes=payload,
            fixed_overhead_bytes=(
                flow.extra_overhead_bytes
                + (telemetry.source_overhead() if telemetry else 0)
            ),
            send_time=net.sim.now,
        )
        net.inject(flow.src_host, pkt)

    def on_ack(self, pkt: SimPacket) -> None:
        if self.finished:
            return
        if pkt.ack_next_expected > self.acked:
            self.acked = pkt.ack_next_expected
            self.dupacks = 0
            self.on_feedback(pkt)
            if self.acked >= self.flow.num_packets:
                self.finished = True
                self.flow.complete()
                return
            self._arm_rto()
        else:
            self.dupacks += 1
            if self.dupacks == 3:
                self.retransmissions += 1
                self.on_loss(timeout=False)
                self._send(self.acked)  # fast retransmit
                self._arm_rto()
        self.send_available()

    def _arm_rto(self) -> None:
        self._rto_token += 1
        token = self._rto_token
        self.flow.network.sim.schedule(self.flow.rto, self._on_rto, token)

    def _on_rto(self, token: int) -> None:
        if token != self._rto_token or self.finished:
            return
        if self.inflight > 0:
            self.retransmissions += 1
            self.on_loss(timeout=True)
            self.next_seq = self.acked  # go-back-N
            self.send_available()
        self._arm_rto()


class RenoSender(SenderBase):
    """TCP Reno: slow start, AIMD, fast retransmit, timeout recovery."""

    def __init__(self, flow: "Flow", init_cwnd: float = 2.0) -> None:
        super().__init__(flow)
        self.cwnd = init_cwnd
        self.ssthresh = 64.0

    def window_packets(self) -> float:
        return self.cwnd

    def on_feedback(self, pkt: SimPacket) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0                      # slow start
        else:
            self.cwnd += 1.0 / self.cwnd          # congestion avoidance

    def on_loss(self, timeout: bool) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 2.0 if timeout else self.ssthresh


class HPCCSender(SenderBase):
    """The HPCC window rule, fed by INT records or a PINT digest.

    Window update (maxStage = 0 throughout, as the paper recommends)::

        W = W_c / (U / eta) + W_AI

    with the reference window ``W_c`` refreshed once per RTT.  ``U`` is
    the max normalised bottleneck utilisation: from per-link INT deltas
    (txRate/B + qlen/(B*T)) in INT mode, or decoded directly from the
    PINT digest in PINT mode.
    """

    def __init__(
        self,
        flow: "Flow",
        eta: float = 0.95,
        wai_bytes: float = 80.0,
        max_stage: int = 0,
    ) -> None:
        super().__init__(flow)
        self.eta = eta
        self.wai = wai_bytes
        self.max_stage = max_stage
        net = flow.network
        self.base_rtt = flow.base_rtt
        rate = net.link(flow.src_host, next(
            iter(net.topology.graph.neighbors(flow.src_host))
        )).rate_bps
        self.bdp_bytes = rate / 8.0 * self.base_rtt
        self.window_bytes = self.bdp_bytes
        self.reference_window = self.bdp_bytes
        self.inc_stage = 0
        self._last_update_seq = 0
        self._last_records: Optional[List[INTRecord]] = None
        self.last_u = 0.0

    def window_packets(self) -> float:
        return max(1.0, self.window_bytes / self.flow.mss)

    def _u_from_int(self, records: List[INTRecord]) -> Optional[float]:
        if self._last_records is None or len(self._last_records) != len(records):
            self._last_records = records
            return None
        u = 0.0
        for last, cur in zip(self._last_records, records):
            dt = cur.timestamp - last.timestamp
            rate_bytes = cur.link_rate_bps / 8.0
            q_term = cur.queue_bytes / (rate_bytes * self.base_rtt)
            if dt > 0:
                tx_rate = (cur.tx_bytes - last.tx_bytes) / dt
                u = max(u, q_term + tx_rate / rate_bytes)
            else:
                u = max(u, q_term)
        self._last_records = records
        return u

    def on_feedback(self, pkt: SimPacket) -> None:
        u: Optional[float] = None
        if pkt.echo_records is not None:
            u = self._u_from_int(pkt.echo_records)
        elif pkt.echo_digest is not None:
            u = self.flow.network.telemetry.codec.decode(pkt.echo_digest)
        if u is None:
            return
        self.last_u = u
        u = max(u, 0.01)
        if u >= self.eta or self.inc_stage >= self.max_stage:
            new_window = self.reference_window / (u / self.eta) + self.wai
            if pkt.ack_next_expected > self._last_update_seq:
                self.reference_window = min(new_window, self.bdp_bytes)
                self.inc_stage = 0
                self._last_update_seq = self.next_seq
        else:
            new_window = self.reference_window + self.wai
            if pkt.ack_next_expected > self._last_update_seq:
                self.inc_stage += 1
                self.reference_window = min(new_window, self.bdp_bytes)
                self._last_update_seq = self.next_seq
        self.window_bytes = min(max(new_window, self.flow.mss), self.bdp_bytes)

    def on_loss(self, timeout: bool) -> None:
        self.window_bytes = max(self.flow.mss, self.window_bytes / 2.0)


class Flow:
    """One application flow: sender + receiver + completion metrics."""

    def __init__(
        self,
        network: Network,
        flow_id: int,
        src_host: int,
        dst_host: int,
        size_bytes: int,
        start_time: float,
        transport: str = "reno",
        mss: int = 1000,
        extra_overhead_bytes: int = 0,
        rto: Optional[float] = None,
        **transport_kwargs,
    ) -> None:
        if size_bytes < 1:
            raise ValueError("flow size must be >= 1 byte")
        self.network = network
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.mss = mss
        self.extra_overhead_bytes = extra_overhead_bytes
        self.num_packets = math.ceil(size_bytes / mss)
        #: Loaded-packet RTT: the congestion-control horizon T.
        self.base_rtt = network.base_rtt(src_host, dst_host, mtu_bytes=mss + 40)
        #: Minimal-probe RTT: the latency floor used by the ideal FCT
        #: (line-rate transmission + bare round trip), so solo flows
        #: have slowdown >= 1 by construction.
        self.probe_rtt = network.base_rtt(src_host, dst_host, mtu_bytes=64)
        self.rto = rto if rto is not None else max(10 * self.base_rtt, 5e-3)
        self.finish_time: Optional[float] = None
        self.receiver = Receiver(self)
        if transport == "reno":
            self.sender: SenderBase = RenoSender(self, **transport_kwargs)
        elif transport == "hpcc":
            self.sender = HPCCSender(self, **transport_kwargs)
        else:
            raise ValueError(f"unknown transport {transport!r}")
        network.flows[flow_id] = self
        network.sim.at(start_time, self.sender.start)

    # -- plumbing used by devices -------------------------------------------

    def sender_on_ack(self, pkt: SimPacket) -> None:
        """Called by the source host device."""
        self.sender.on_ack(pkt)

    def receiver_on_data(self, pkt: SimPacket, at_host: int) -> None:
        """Called by the destination host device."""
        if at_host == self.dst_host:
            self.receiver.on_data(pkt)

    def packet_payload(self, seq: int) -> int:
        """Payload bytes of packet ``seq`` (last one may be short)."""
        if seq == self.num_packets - 1:
            return self.size_bytes - self.mss * (self.num_packets - 1)
        return self.mss

    def complete(self) -> None:
        """Record completion (FCT endpoint)."""
        self.finish_time = self.network.sim.now

    # -- metrics --------------------------------------------------------------

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time, or None if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def ideal_fct(self, host_rate_bps: float) -> float:
        """FCT of the flow alone: probe RTT + line-rate transmission."""
        return self.probe_rtt + self.size_bytes * 8.0 / host_rate_bps

    def slowdown(self, host_rate_bps: float) -> Optional[float]:
        """The paper's slowdown: FCT over ideal FCT."""
        if self.fct is None:
            return None
        return self.fct / self.ideal_fct(host_rate_bps)

    @property
    def goodput_bps(self) -> Optional[float]:
        """Application bytes over completion time."""
        if self.fct is None or self.fct <= 0:
            return None
        return self.size_bytes * 8.0 / self.fct

"""End-to-end experiment drivers for the paper's simulation figures.

Scaled-down substitutes for the paper's NS3 runs (see DESIGN.md,
substitution 1): smaller fat-trees and link rates, identical mechanics.
Each driver builds topology + telemetry + workload, runs the DES, and
returns an :class:`~repro.sim.metrics.ExperimentResult`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.net.fattree import fat_tree
from repro.sim.events import Simulator
from repro.sim.metrics import ExperimentResult, FlowResult
from repro.sim.network import Network
from repro.sim.telemetry import INTTelemetry, NoTelemetry, PINTTelemetry
from repro.sim.transport import Flow
from repro.sim.workload import EmpiricalCDF, FlowSpec, poisson_flows


def build_telemetry(
    mode: str,
    base_rtt: float = 1e-3,
    int_values: int = 3,
    pint_frequency: float = 1.0,
    pint_bits: int = 8,
    seed: int = 0,
    collector=None,
):
    """Construct a telemetry stamp: 'none', 'int', or 'pint'.

    ``collector`` (a :class:`repro.collector.Collector`) attaches a
    streaming sink to the PINT stamp, so digests are ingested live at
    the receiving hosts instead of post-processed.  Only the 'pint'
    mode exports digests, so a collector with any other mode would
    silently stay empty -- that combination is rejected.
    """
    if collector is not None and mode != "pint":
        raise ValueError(
            f"collector requires telemetry mode 'pint', not {mode!r} "
            "(only PINT streams digests to a sink)"
        )
    if mode == "none":
        return NoTelemetry()
    if mode == "int":
        return INTTelemetry(num_values=int_values)
    if mode == "pint":
        return PINTTelemetry(
            base_rtt=base_rtt,
            bits=pint_bits,
            frequency=pint_frequency,
            seed=seed,
            collector=collector,
        )
    raise ValueError(f"unknown telemetry mode {mode!r}")


def run_workload(
    specs: Sequence[FlowSpec],
    network: Network,
    transport: str,
    mss: int = 1000,
    extra_overhead_bytes: int = 0,
    run_until: Optional[float] = None,
    **transport_kwargs,
) -> ExperimentResult:
    """Instantiate flows, run the event loop, collect completions."""
    host_rate = None
    flows: List[Flow] = []
    for idx, spec in enumerate(specs):
        flows.append(
            Flow(
                network,
                flow_id=idx + 1,
                src_host=spec.src_host,
                dst_host=spec.dst_host,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
                transport=transport,
                mss=mss,
                extra_overhead_bytes=extra_overhead_bytes,
                **transport_kwargs,
            )
        )
    network.sim.run(until=run_until)
    results = []
    for flow in flows:
        if flow.fct is None:
            continue
        uplink = network.link(
            flow.src_host,
            next(iter(network.topology.graph.neighbors(flow.src_host))),
        )
        results.append(
            FlowResult(
                flow_id=flow.flow_id,
                size_bytes=flow.size_bytes,
                fct=flow.fct,
                ideal_fct=flow.ideal_fct(uplink.rate_bps),
            )
        )
    return ExperimentResult(results)


def run_overhead_experiment(
    overhead_bytes: int,
    load: float,
    cdf: EmpiricalCDF,
    k: int = 4,
    link_rate_bps: float = 100e6,
    duration: float = 0.4,
    buffer_bytes: int = 150_000,
    seed: int = 0,
    max_flows: Optional[int] = 200,
    run_slack: float = 3.0,
) -> ExperimentResult:
    """Figs. 1-2: TCP Reno with a constant per-packet byte overhead.

    ``overhead_bytes`` models the INT stack (28B..108B in §2); results
    are normalised against an ``overhead_bytes = 0`` run by the bench.
    """
    topo = fat_tree(k)
    net = Network(
        topo,
        Simulator(),
        link_rate_bps=link_rate_bps,
        buffer_bytes=buffer_bytes,
        telemetry=NoTelemetry(),
        seed=seed,
    )
    rng = random.Random(seed)
    specs = poisson_flows(
        topo.hosts, cdf, load, link_rate_bps, duration, rng, max_flows
    )
    return run_workload(
        specs,
        net,
        transport="reno",
        extra_overhead_bytes=overhead_bytes,
        run_until=duration * (1 + run_slack),
    )


def run_hpcc_experiment(
    telemetry_mode: str,
    load: float,
    cdf: EmpiricalCDF,
    k: int = 4,
    link_rate_bps: float = 100e6,
    duration: float = 0.4,
    buffer_bytes: int = 150_000,
    pint_frequency: float = 1.0,
    seed: int = 0,
    max_flows: Optional[int] = 200,
    run_slack: float = 3.0,
    collector=None,
) -> ExperimentResult:
    """Figs. 7-8: HPCC fed by classic INT vs the PINT digest.

    The telemetry mode decides both the feedback channel and the bytes
    each packet carries (INT grows 12B/hop + 8B header; PINT is a fixed
    2-byte digest).  Passing a ``collector`` makes the run
    collector-backed: sinks stream every selected digest into it, and
    the caller can snapshot per-flow bottleneck state afterwards.
    """
    topo = fat_tree(k)
    probe = Network(topo, Simulator(), link_rate_bps=link_rate_bps, seed=seed)
    hosts = topo.hosts
    base_rtt = probe.base_rtt(hosts[0], hosts[-1])
    telemetry = build_telemetry(
        telemetry_mode,
        base_rtt=base_rtt,
        pint_frequency=pint_frequency,
        seed=seed,
        collector=collector,
    )
    net = Network(
        topo,
        Simulator(),
        link_rate_bps=link_rate_bps,
        buffer_bytes=buffer_bytes,
        telemetry=telemetry,
        seed=seed,
    )
    rng = random.Random(seed)
    specs = poisson_flows(
        hosts, cdf, load, link_rate_bps, duration, rng, max_flows
    )
    return run_workload(
        specs,
        net,
        transport="hpcc",
        run_until=duration * (1 + run_slack),
    )

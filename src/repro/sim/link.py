"""Store-and-forward links with drop-tail queues.

Each undirected topology edge becomes two :class:`Link` objects.  A
link serialises one packet at a time (wire_bytes * 8 / rate), applies
the telemetry stamp at dequeue, and delivers after the propagation
delay.  Queue state (bytes, drops, EWMA utilisation) is the raw
material of both INT and PINT telemetry.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.events import Simulator
from repro.sim.packet import SimPacket


class Link:
    """A unidirectional link feeding a device's ``receive``."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_device,
        rate_bps: float,
        prop_delay: float,
        buffer_bytes: int,
        telemetry=None,
    ) -> None:
        if rate_bps <= 0 or prop_delay < 0 or buffer_bytes <= 0:
            raise ValueError("invalid link parameters")
        self.sim = sim
        self.name = name
        self.dst_device = dst_device
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.buffer_bytes = buffer_bytes
        self.telemetry = telemetry
        self._queue: Deque[SimPacket] = deque()
        self.queued_bytes = 0
        self.busy = False
        # Counters (INT raw material + experiment accounting).
        self.tx_bytes = 0
        self.tx_packets = 0
        self.drops = 0
        # PINT EWMA state (telemetry.PINTTelemetry writes these).
        self.ewma_util = 0.0
        self.ewma_last_update = 0.0

    def enqueue(self, pkt: SimPacket) -> bool:
        """Admit a packet; False (and a drop) if the buffer is full."""
        if self.queued_bytes + pkt.wire_bytes > self.buffer_bytes:
            self.drops += 1
            return False
        self._queue.append(pkt)
        self.queued_bytes += pkt.wire_bytes
        if not self.busy:
            self._start_transmission()
        return True

    def _start_transmission(self) -> None:
        pkt = self._queue.popleft()
        self.queued_bytes -= pkt.wire_bytes
        self.busy = True
        # Telemetry stamps at dequeue: the egress pipeline point.
        if self.telemetry is not None:
            self.telemetry.on_dequeue(pkt, self)
        tx_time = pkt.wire_bytes * 8.0 / self.rate_bps
        self.tx_bytes += pkt.wire_bytes
        self.tx_packets += 1
        self.sim.schedule(tx_time, self._transmission_done)
        self.sim.schedule(tx_time + self.prop_delay, self.dst_device.receive, pkt)

    def _transmission_done(self) -> None:
        self.busy = False
        if self._queue:
            self._start_transmission()

    @property
    def utilization_hint(self) -> float:
        """Instantaneous rough utilisation: queue drain time over 1ms."""
        return min(1.0, self.queued_bytes * 8.0 / self.rate_bps / 1e-3)

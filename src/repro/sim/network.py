"""Devices and network assembly: topology -> switches, hosts, links.

Routing is hop-by-hop next-hop lookup over precomputed shortest-path
distance labels; equal-cost choices are broken by a flow hash (ECMP),
matching the paper's NS3 setup ("standard ECMP routing").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import SimulationError, TopologyError
from repro.hashing import GlobalHash
from repro.net.topology import HOST, KIND, Topology
from repro.sim.events import Simulator
from repro.sim.link import Link
from repro.sim.packet import SimPacket


class Device:
    """Anything a link can deliver to."""

    def __init__(self, network: "Network", node_id: int) -> None:
        self.network = network
        self.node_id = node_id

    def receive(self, pkt: SimPacket) -> None:
        """Handle an arriving packet."""
        raise NotImplementedError


class SwitchDevice(Device):
    """Forwards by destination-host next-hop lookup with hashed ECMP."""

    def receive(self, pkt: SimPacket) -> None:
        dst = self.network.packet_destination(pkt)
        if dst is None:
            # In-flight packet of a torn-down flow: drop, don't crash.
            self.network.orphan_drops += 1
            return
        options = self.network.next_hops(self.node_id, dst)
        choice = options[
            self.network.ecmp_hash.choice(len(options), pkt.flow_id, self.node_id)
        ]
        self.network.link(self.node_id, choice).enqueue(pkt)


class HostDevice(Device):
    """Terminates flows: hands packets to the transport endpoints."""

    def receive(self, pkt: SimPacket) -> None:
        flow = self.network.flows.get(pkt.flow_id)
        if flow is None:
            return  # flow already torn down
        if pkt.is_ack:
            flow.sender_on_ack(pkt)
        else:
            flow.receiver_on_data(pkt, self.node_id)


class Network:
    """A simulated network instantiated from a :class:`Topology`.

    Parameters
    ----------
    topology:
        Switch/host graph; every edge becomes two links.
    link_rate_bps / host_rate_bps:
        Switch-switch and host-switch rates (the paper's fabric has
        faster core links; pass the same value for a uniform fabric).
    prop_delay:
        Per-link propagation delay (1us in the paper's HPCC setup).
    buffer_bytes:
        Per-link drop-tail buffer.
    telemetry:
        Telemetry stamp applied at switch egress links (None / INT /
        PINT); host uplinks also stamp, matching first-hop behaviour.
    """

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        link_rate_bps: float = 1e9,
        host_rate_bps: Optional[float] = None,
        prop_delay: float = 1e-6,
        buffer_bytes: int = 200_000,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.sim = sim if sim is not None else Simulator()
        self.telemetry = telemetry
        self.ecmp_hash = GlobalHash(seed, "ecmp")
        self.flows: Dict[int, "object"] = {}
        #: Packets dropped mid-fabric because their flow was torn down.
        self.orphan_drops = 0
        self._pid_counter = 0
        host_rate = host_rate_bps if host_rate_bps is not None else link_rate_bps

        graph = topology.graph
        self.devices: Dict[int, Device] = {}
        for node, data in graph.nodes(data=True):
            if data.get(KIND) == HOST:
                self.devices[node] = HostDevice(self, node)
            else:
                self.devices[node] = SwitchDevice(self, node)

        self._links: Dict[Tuple[int, int], Link] = {}
        for a, b in graph.edges():
            for src, dst in ((a, b), (b, a)):
                is_host_side = (
                    graph.nodes[src].get(KIND) == HOST
                    or graph.nodes[dst].get(KIND) == HOST
                )
                rate = host_rate if is_host_side else link_rate_bps
                self._links[(src, dst)] = Link(
                    self.sim,
                    f"{src}->{dst}",
                    self.devices[dst],
                    rate,
                    prop_delay,
                    buffer_bytes,
                    telemetry=telemetry,
                )

        # Distance labels to every host for next-hop routing.
        self._dist: Dict[int, Dict[int, int]] = {}
        for host in topology.hosts:
            self._dist[host] = nx.single_source_shortest_path_length(graph, host)

    # -- wiring ------------------------------------------------------------

    def link(self, src: int, dst: int) -> Link:
        """The directed link src -> dst."""
        return self._links[(src, dst)]

    def all_links(self) -> List[Link]:
        """Every directed link (drop/throughput accounting)."""
        return list(self._links.values())

    def next_hops(self, node: int, dst_host: int) -> List[int]:
        """ECMP next-hop set: neighbours strictly closer to the host."""
        dist = self._dist[dst_host]
        here = dist[node]
        options = [
            nbr for nbr in self.topology.graph.neighbors(node)
            if dist.get(nbr, here) == here - 1
        ]
        if not options:
            raise SimulationError(f"no route from {node} to host {dst_host}")
        return sorted(options)

    def path_hops(self, src_host: int, dst_host: int) -> int:
        """Number of switches between two hosts (base-RTT arithmetic)."""
        return len(self.topology.switch_path(src_host, dst_host))

    def packet_destination(self, pkt: SimPacket) -> Optional[int]:
        """Destination host of a packet (ACKs flow to the sender).

        Returns None for in-flight packets of an already-torn-down
        flow; switches drop those (counted in ``orphan_drops``) the way
        :class:`HostDevice` already discards them at the edge.
        """
        flow = self.flows.get(pkt.flow_id)
        if flow is None:
            return None
        return flow.src_host if pkt.is_ack else flow.dst_host

    def new_pid(self) -> int:
        """A unique packet id (global-hash input)."""
        self._pid_counter += 1
        return self._pid_counter

    def inject(self, from_host: int, pkt: SimPacket) -> None:
        """Send a packet out of a host's uplink."""
        neighbors = list(self.topology.graph.neighbors(from_host))
        if len(neighbors) != 1:
            raise TopologyError(f"host {from_host} must have exactly one uplink")
        self.link(from_host, neighbors[0]).enqueue(pkt)

    def base_rtt(self, src_host: int, dst_host: int, mtu_bytes: int = 1040) -> float:
        """Unloaded RTT estimate: serialisation + propagation both ways.

        Used to set transports' T horizon and the ideal FCT denominator.
        """
        path = self.topology.shortest_path(src_host, dst_host)
        rtt = 0.0
        for a, b in zip(path, path[1:]):
            fwd, rev = self.link(a, b), self.link(b, a)
            rtt += mtu_bytes * 8.0 / fwd.rate_bps + fwd.prop_delay
            rtt += 64 * 8.0 / rev.rate_bps + rev.prop_delay
        return rtt

"""Packet-level discrete-event network simulator (the NS3 stand-in).

* :class:`Simulator` -- event loop.
* :class:`Link`, :class:`Network` -- store-and-forward fabric with
  drop-tail queues and ECMP routing.
* :class:`Flow` with :class:`RenoSender` / :class:`HPCCSender` --
  transports for the Figs. 1-2 and 7-8 experiments.
* :mod:`repro.sim.telemetry` -- None / classic INT / PINT stamping.
* :mod:`repro.sim.workload` -- web-search & Hadoop flow sizes, Poisson
  arrivals.
* :mod:`repro.sim.experiment` -- the figure-level drivers.
"""

from repro.sim.events import Simulator
from repro.sim.experiment import (
    build_telemetry,
    run_hpcc_experiment,
    run_overhead_experiment,
    run_workload,
)
from repro.sim.link import Link
from repro.sim.metrics import ExperimentResult, FlowResult, percentile
from repro.sim.network import Network
from repro.sim.packet import INTRecord, SimPacket
from repro.sim.telemetry import INTTelemetry, NoTelemetry, PINTTelemetry
from repro.sim.transport import Flow, HPCCSender, Receiver, RenoSender
from repro.sim.workload import (
    EmpiricalCDF,
    FlowSpec,
    HADOOP_DECILES,
    WEB_SEARCH_DECILES,
    hadoop_cdf,
    poisson_flows,
    web_search_cdf,
)

__all__ = [
    "Simulator",
    "Link",
    "Network",
    "SimPacket",
    "INTRecord",
    "Flow",
    "RenoSender",
    "HPCCSender",
    "Receiver",
    "NoTelemetry",
    "INTTelemetry",
    "PINTTelemetry",
    "EmpiricalCDF",
    "FlowSpec",
    "web_search_cdf",
    "hadoop_cdf",
    "WEB_SEARCH_DECILES",
    "HADOOP_DECILES",
    "poisson_flows",
    "percentile",
    "FlowResult",
    "ExperimentResult",
    "build_telemetry",
    "run_workload",
    "run_overhead_experiment",
    "run_hpcc_experiment",
]

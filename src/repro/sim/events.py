"""Discrete-event simulation core.

A minimal, fast event loop: events are (time, seq, callback) triples in
a binary heap; ``seq`` breaks ties FIFO so same-timestamp events run in
schedule order (determinism matters -- every experiment is seeded).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError


class Simulator:
    """The event loop shared by links, hosts, and switches."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def run(
        self, until: Optional[float] = None, max_events: int = 50_000_000
    ) -> None:
        """Drain the event queue, optionally stopping at time ``until``."""
        count = 0
        while self._queue:
            time, _, fn, args = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = time
            fn(*args)
            count += 1
            self.events_processed += 1
            if count > max_events:
                raise SimulationError(f"exceeded {max_events} events")

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

"""Near-linear-time decode variant via pseudo-random bit vectors (§4.2).

The straightforward decoder computes ``g(packet, i)`` for every hop
``i``, spending O(k) per packet and O(k^2 log log* k) overall.  The paper
observes that because the acting probability is a (power-of-two)
``p = 2^-t``, one can instead draw ``t`` pseudo-random k-bit vectors per
packet and AND them together: bit ``i`` of the AND survives with
probability exactly ``p``, and extracting set bits costs O(#set bits).
This module implements that trick; the expected number of set bits is
``k * p = O(1)`` for the XOR layers, giving O(log k) work per packet.
"""

from __future__ import annotations

from typing import List

from repro.hashing.global_hash import GlobalHash, Part


def random_bitvector(g: GlobalHash, packet_id: Part, round_idx: int, k: int) -> int:
    """Return a pseudo-random k-bit integer for (packet, round)."""
    if k < 1:
        raise ValueError("k must be positive")
    vec = 0
    # Draw 64 bits at a time until k bits are filled.
    for word_idx in range((k + 63) // 64):
        word = g.raw(round_idx, word_idx, packet_id)
        vec |= word << (64 * word_idx)
    return vec & ((1 << k) - 1)


def acting_mask(g: GlobalHash, packet_id: Part, k: int, log2_inv_p: int) -> int:
    """AND of ``log2_inv_p`` random k-bit vectors: bit i set w.p. 2^-t.

    Bit ``i`` (0-based) corresponds to hop ``i+1`` acting on the packet.
    """
    if log2_inv_p < 0:
        raise ValueError("log2_inv_p must be >= 0")
    mask = (1 << k) - 1
    for round_idx in range(log2_inv_p):
        mask &= random_bitvector(g, packet_id, round_idx, k)
    return mask


def set_bits(mask: int) -> List[int]:
    """Extract 0-based indices of set bits in time O(#set bits)."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def acting_hops_fast(
    g: GlobalHash, packet_id: Part, k: int, log2_inv_p: int
) -> List[int]:
    """1-based hops acting on the packet, via the bit-vector trick."""
    return [b + 1 for b in set_bits(acting_mask(g, packet_id, k, log2_inv_p))]

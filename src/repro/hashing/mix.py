"""Low-level deterministic 64-bit mixing primitives.

PINT coordinates switches *implicitly*: every switch evaluates the same
global hash function on the packet identifier and reaches the same
probabilistic decision without exchanging any bits (paper Section 4.1).
These primitives provide that global hash.  We use the splitmix64
finaliser, which passes standard avalanche tests, is cheap in pure
Python, and vectorises trivially with NumPy for bulk simulation.

Two call styles are provided throughout the package:

* scalar (`mix64`, `combine`) -- used by the readable, switch-semantics
  code paths;
* vectorised (`mix64_array`) -- used by benchmark harnesses that push
  hundreds of thousands of packets through the encoders.

Property tests assert that the two styles agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

#: Mask for 64-bit wrap-around arithmetic in pure Python.
MASK64 = (1 << 64) - 1

#: Multiplicative constants of the splitmix64 finaliser.
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
#: Golden-ratio increment used to derive per-purpose sub-keys.
GOLDEN = 0x9E3779B97F4A7C15

#: 2**-53 as a float; we keep the top 53 bits so the product is an
#: exact float strictly below 1.0 (multiplying the full 64 bits can
#: round up to exactly 1.0).
_INV53 = float(2.0 ** -53)


def mix64(x: int) -> int:
    """Apply the splitmix64 finaliser to a 64-bit integer.

    The result is a well-mixed 64-bit value; flipping any input bit
    flips each output bit with probability ~1/2.
    """
    x &= MASK64
    x = ((x ^ (x >> 30)) * _C1) & MASK64
    x = ((x ^ (x >> 27)) * _C2) & MASK64
    return x ^ (x >> 31)


def begin(seed: int) -> int:
    """Start a fold chain from a 64-bit seed."""
    return mix64((seed & MASK64) ^ GOLDEN)


def fold(acc: int, part: int) -> int:
    """Fold one integer part into an accumulated fold state."""
    return mix64((acc + GOLDEN) ^ (part & MASK64))


def combine(seed: int, *parts: int) -> int:
    """Fold integer ``parts`` into ``seed``, mixing after each fold.

    This is the scalar building block of :class:`~repro.hashing.GlobalHash`.
    The fold is order-sensitive: ``combine(s, a, b) != combine(s, b, a)``
    in general, which is what we want for (packet id, hop) style keys.
    """
    acc = begin(seed)
    for part in parts:
        acc = fold(acc, part)
    return acc


def to_unit(x: int) -> float:
    """Map a 64-bit hash to a float uniform on [0, 1)."""
    return ((x & MASK64) >> 11) * _INV53


def mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a ``uint64`` array."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= np.uint64(_C1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_C2)
        x ^= x >> np.uint64(31)
    return x


def fold_array(acc: int, parts: np.ndarray) -> np.ndarray:
    """Vectorised :func:`fold`: one part per lane, shared fold state.

    Bit-for-bit identical to the scalar path:
    ``fold_array(acc, parts)[i] == fold(acc, parts[i])``.
    """
    with np.errstate(over="ignore"):
        lanes = (np.uint64(acc & MASK64) + np.uint64(GOLDEN)) ^ parts.astype(
            np.uint64
        )
    return mix64_array(lanes)


def fold_lanes(accs: np.ndarray, part: int) -> np.ndarray:
    """Fold one scalar part into an *array* of fold states.

    Lane-for-lane identical to the scalar path:
    ``fold_lanes(accs, p)[i] == fold(accs[i], p)``.
    """
    with np.errstate(over="ignore"):
        lanes = (accs.astype(np.uint64) + np.uint64(GOLDEN)) ^ np.uint64(
            part & MASK64
        )
    return mix64_array(lanes)


def fold_zip(accs: np.ndarray, parts: np.ndarray) -> np.ndarray:
    """Fold per-lane parts into per-lane fold states, pairwise.

    Lane-for-lane identical to the scalar path:
    ``fold_zip(accs, parts)[i] == fold(accs[i], parts[i])`` -- the
    shape needed to hash many (packet, block) pairs at once when the
    block differs per lane (mixed-path batches).
    """
    with np.errstate(over="ignore"):
        lanes = (accs.astype(np.uint64) + np.uint64(GOLDEN)) ^ parts.astype(
            np.uint64
        )
    return mix64_array(lanes)


def combine_array(seed: int, parts: np.ndarray) -> np.ndarray:
    """Vectorised :func:`combine` for a single part per lane."""
    return fold_array(begin(seed), parts)


def to_unit_array(x: np.ndarray) -> np.ndarray:
    """Vectorised map of 64-bit hashes onto [0, 1)."""
    return (x.astype(np.uint64) >> np.uint64(11)) * _INV53


def string_to_int(text: str) -> int:
    """Deterministically fold a string into a 64-bit integer.

    Used so that hash *names* ("layer-select", "xor-0", ...) derive
    independent sub-keys in a platform-stable way (``hash()`` is salted
    per process and therefore unusable).
    """
    acc = 0
    for byte in text.encode("utf-8"):
        acc = mix64((acc + GOLDEN) ^ byte)
    return acc

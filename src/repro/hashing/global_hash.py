"""Global hash functions for implicit switch coordination (paper §4.1).

A :class:`GlobalHash` is a keyed hash known to every switch and to the
Inference Module.  Applying it to a packet identifier (and optionally a
hop number) lets all parties agree on probabilistic outcomes -- which
query set a packet serves, whether hop ``i`` samples the packet, which
fragment a packet carries -- without spending a single header bit on
coordination.

Three named hashes from the paper map onto instances of this class:

* ``q`` -- query-selection hash on packet ids (§4.1);
* ``g`` -- per-(packet, hop) action hash used by reservoir sampling and
  the XOR layers (§4.1, §4.2);
* ``h`` -- (value, packet id) compression hash used to squeeze wide
  values into ``q``-bit digests (§4.2, "Reducing the Bit-overhead using
  Hashing").
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.hashing import mix

#: Accepted key-part types; strings are folded via :func:`mix.string_to_int`.
Part = Union[int, str, bytes]


def _as_int(part: Part) -> int:
    """Normalise a key part to a 64-bit integer."""
    if isinstance(part, int):
        return part & mix.MASK64
    if isinstance(part, str):
        return mix.string_to_int(part)
    if isinstance(part, bytes):
        return mix.string_to_int(part.decode("latin-1"))
    raise TypeError(f"unsupported hash part type: {type(part)!r}")


class GlobalHash:
    """A deterministic, seedable hash function shared network-wide.

    Parameters
    ----------
    seed:
        Integer key.  Two instances with the same seed and name are the
        same function on every machine and in every process.
    name:
        Optional purpose label ("g", "h", "query-select", ...) folded
        into the key, so independent hashes can be derived from one seed.
    """

    __slots__ = ("seed", "name", "_key")

    def __init__(self, seed: int = 0, name: str = "") -> None:
        self.seed = seed
        self.name = name
        self._key = mix.combine(seed, mix.string_to_int(name))

    def derive(self, name: str) -> "GlobalHash":
        """Return an independent hash derived from this one.

        Used, e.g., to derive per-layer XOR hashes or the two
        independent hashes of the ``2x(b=8)`` path-tracing variant.
        """
        return GlobalHash(self._key, name)

    # -- scalar API ------------------------------------------------------

    def raw(self, *parts: Part) -> int:
        """Return the 64-bit hash of the given key parts."""
        return mix.combine(self._key, *[_as_int(p) for p in parts])

    def uniform(self, *parts: Part) -> float:
        """Return a float uniform on [0, 1), determined by ``parts``."""
        return mix.to_unit(self.raw(*parts))

    def bits(self, width: int, *parts: Part) -> int:
        """Return a ``width``-bit digest value (an int in [0, 2**width))."""
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        return self.raw(*parts) >> (64 - width)

    def bernoulli(self, p: float, *parts: Part) -> bool:
        """Return True with probability ``p``, determined by ``parts``.

        This is the paper's ``g(p_j, i) < p`` test: every switch
        evaluating the same parts reaches the same verdict.
        """
        return self.uniform(*parts) < p

    def choice(self, n: int, *parts: Part) -> int:
        """Return an index uniform on {0, ..., n-1}."""
        if n <= 0:
            raise ValueError("n must be positive")
        return int(self.uniform(*parts) * n)

    def weighted_choice(self, weights: Sequence[float], *parts: Part) -> int:
        """Return index i with probability weights[i] / sum(weights).

        Used by the Query Engine to pick which query set a packet
        serves, per the execution-plan distribution (§3.4).
        """
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have positive sum")
        u = self.uniform(*parts) * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u < acc:
                return i
        return len(weights) - 1

    # -- vectorised API --------------------------------------------------

    def raw_array(self, parts: np.ndarray, *salts: Part) -> np.ndarray:
        """Vectorised :meth:`raw` over one integer part per lane.

        ``salts`` are folded first, so ``raw_array(pids, hop)`` equals
        ``[raw(hop, pid) for pid in pids]`` bit-for-bit.
        """
        acc = mix.begin(self._key)
        for salt in salts:
            acc = mix.fold(acc, _as_int(salt))
        return mix.fold_array(acc, np.asarray(parts))

    def uniform_array(self, parts: np.ndarray, *salts: Part) -> np.ndarray:
        """Vectorised :meth:`uniform`."""
        return mix.to_unit_array(self.raw_array(parts, *salts))

    def bits_array(self, width: int, parts: np.ndarray, *salts: Part) -> np.ndarray:
        """Vectorised :meth:`bits`."""
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        return self.raw_array(parts, *salts) >> np.uint64(64 - width)

    def bits_lanes(
        self, width: int, lane_parts: np.ndarray, part: Part
    ) -> np.ndarray:
        """Per-lane first part, shared second part: h(lane_i, part).

        Lane-for-lane equal to ``[bits(width, lane, part) for lane in
        lane_parts]`` -- the shape needed to hash one block value
        against many packet ids at once.
        """
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        accs = mix.fold_array(mix.begin(self._key), np.asarray(lane_parts))
        return mix.fold_lanes(accs, _as_int(part)) >> np.uint64(64 - width)

    def bits_zip(
        self, width: int, first_parts: np.ndarray, second_parts: np.ndarray
    ) -> np.ndarray:
        """Per-lane (first, second) key pairs: h(first_i, second_i).

        Lane-for-lane equal to ``[bits(width, f, s) for f, s in
        zip(first_parts, second_parts)]`` -- the shape needed to hash
        many packets each against its *own* block value, as a batch
        mixing several paths requires.
        """
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        accs = mix.fold_array(mix.begin(self._key), np.asarray(first_parts))
        return mix.fold_zip(accs, np.asarray(second_parts)) >> np.uint64(
            64 - width
        )

    def uniform_lanes(self, lane_parts: np.ndarray, part: Part) -> np.ndarray:
        """Per-lane first part, shared second part, mapped onto [0, 1).

        Lane-for-lane equal to ``[uniform(lane, part) for lane in
        lane_parts]`` -- the shape of the ``(packet, hop)`` keyed coins
        the randomized-rounding compressors draw in bulk.
        """
        accs = mix.fold_array(mix.begin(self._key), np.asarray(lane_parts))
        return mix.to_unit_array(mix.fold_lanes(accs, _as_int(part)))

    def choice_array(self, n: int, parts: np.ndarray, *salts: Part) -> np.ndarray:
        """Vectorised :meth:`choice`: uniform indices on {0, ..., n-1}.

        Lane-for-lane identical to the scalar uniform->index mapping
        ``int(uniform(*salts, part) * n)``; the shared scale-and-floor
        used by shard routing and fragment selection, kept here so no
        caller hand-rolls (and drifts from) the mapping.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        return (self.uniform_array(parts, *salts) * n).astype(np.int64)


def cumulative_select_array(
    uniforms: np.ndarray, probs: Sequence[float]
) -> np.ndarray:
    """First index i with ``u < probs[0] + ... + probs[i]``, per lane.

    The one vectorised cumulative-probability walk behind every
    distribution-over-options selection (execution-plan entries, coding
    layers): same left-to-right float accumulation, same strict
    ``u < acc`` boundary as the scalar loops, so lane i equals the
    scalar walk on ``uniforms[i]`` exactly.  Lanes past the total mass
    get -1 ("no option selected"); callers with a saturating scalar
    fallback map -1 to their last index.
    """
    idx = np.full(np.asarray(uniforms).shape, -1, dtype=np.int64)
    acc = 0.0
    for i, p in enumerate(probs):
        acc += p
        idx[(idx == -1) & (uniforms < acc)] = i
    return idx


def reservoir_write(g: GlobalHash, packet_id: Part, hop: int) -> bool:
    """Does hop ``hop`` (1-based) overwrite the digest of this packet?

    Implements the distributed Reservoir Sampling rule of §4.1: hop ``i``
    writes iff ``g(packet, i) < 1/i``.  Hop 1 always writes, so a packet
    that traversed at least one hop always carries a sample.
    """
    if hop < 1:
        raise ValueError("hop numbers are 1-based")
    return g.uniform(hop, packet_id) < 1.0 / hop


def reservoir_carrier(g: GlobalHash, packet_id: Part, path_len: int) -> int:
    """Which hop's value does the packet carry after ``path_len`` hops?

    The carrier is the *last* hop that wrote, i.e.
    ``max{ i : g(packet, i) < 1/i }``.  The Recording Module runs exactly
    this computation to attribute each digest to a hop (§4.1), which is
    the implicit switch/collector coordination trick of the paper.
    Returns a 1-based hop index; uniform on {1..path_len}.
    """
    carrier = 1
    for hop in range(2, path_len + 1):
        if reservoir_write(g, packet_id, hop):
            carrier = hop
    return carrier


def reservoir_carrier_array(
    g: GlobalHash, packet_ids: np.ndarray, path_len: int
) -> np.ndarray:
    """Vectorised :func:`reservoir_carrier` over many packet ids."""
    pids = np.asarray(packet_ids)
    carriers = np.ones(len(pids), dtype=np.int64)
    for hop in range(2, path_len + 1):
        wrote = g.uniform_array(pids, hop) < 1.0 / hop
        carriers[wrote] = hop
    return carriers


def reservoir_carrier_zip(
    g: GlobalHash, packet_ids: np.ndarray, path_lens: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`reservoir_carrier` with per-lane path lengths.

    Lane-for-lane equal to ``reservoir_carrier(g, pid, path_len)`` --
    the shape a mixed column of flows needs (each record carries its
    own hop count).  One pass per hop up to the column's maximum
    length; lanes shorter than the hop are masked out of that round.
    """
    pids = np.asarray(packet_ids)
    lens = np.asarray(path_lens)
    carriers = np.ones(len(pids), dtype=np.int64)
    top = int(lens.max()) if lens.size else 0
    for hop in range(2, top + 1):
        wrote = (g.uniform_array(pids, hop) < 1.0 / hop) & (lens >= hop)
        carriers[wrote] = hop
    return carriers


def xor_acting_hops(
    g: GlobalHash, packet_id: Part, path_len: int, p: float
) -> list:
    """Hops (1-based) that xor this packet under XOR probability ``p``.

    Each hop acts independently iff ``g(packet, i) < p`` (§4.2); the
    Recording Module recomputes this set to drive the peeling decoder.
    """
    return [i for i in range(1, path_len + 1) if g.uniform(i, packet_id) < p]


def xor_acting_matrix(
    g: GlobalHash, packet_ids: np.ndarray, path_len: int, p: float
) -> np.ndarray:
    """Vectorised :func:`xor_acting_hops` over many packet ids.

    Returns a ``(n, path_len)`` boolean matrix whose column ``i - 1``
    says whether hop ``i`` acts; row ``j``'s set bits are exactly
    ``xor_acting_hops(g, packet_ids[j], path_len, p)``, so the batch
    decoders replay the scalar acting sets bit-for-bit.
    """
    pids = np.asarray(packet_ids)
    out = np.empty((len(pids), path_len), dtype=bool)
    for hop in range(1, path_len + 1):
        out[:, hop - 1] = g.uniform_array(pids, hop) < p
    return out

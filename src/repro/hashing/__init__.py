"""Global hash functions and implicit-coordination helpers (paper §4.1).

Public surface:

* :class:`GlobalHash` -- seedable network-wide hash with scalar and
  vectorised APIs.
* :func:`reservoir_write` / :func:`reservoir_carrier` -- the distributed
  Reservoir Sampling rule and its collector-side inverse.
* :func:`xor_acting_hops` -- which hops xor a given packet.
* :mod:`repro.hashing.bitvector` -- the O(log k)/packet decode variant.
"""

from repro.hashing.global_hash import (
    GlobalHash,
    cumulative_select_array,
    reservoir_carrier,
    reservoir_carrier_array,
    reservoir_carrier_zip,
    reservoir_write,
    xor_acting_hops,
    xor_acting_matrix,
)
from repro.hashing.bitvector import (
    acting_hops_fast,
    acting_mask,
    random_bitvector,
    set_bits,
)
from repro.hashing import mix

__all__ = [
    "GlobalHash",
    "cumulative_select_array",
    "reservoir_write",
    "reservoir_carrier",
    "reservoir_carrier_array",
    "reservoir_carrier_zip",
    "xor_acting_hops",
    "xor_acting_matrix",
    "acting_hops_fast",
    "acting_mask",
    "random_bitvector",
    "set_bits",
    "mix",
]

"""Synthetic ISP topologies standing in for Topology Zoo (paper §6.3).

The paper's path-tracing evaluation uses two large-diameter ISP maps:
Kentucky Datalink (753 switches, diameter 59) and US Carrier (157
switches, diameter 36).  The Topology Zoo files are not available
offline, so we synthesise trees with the same switch count and a long
backbone of exactly the advertised diameter; what Fig. 10 measures --
packets to decode as a function of *path length* and the size of the
switch-ID universe -- depends only on those two parameters, which we
match exactly (documented in DESIGN.md, substitution 3).
"""

from __future__ import annotations

import random

import networkx as nx

from repro.exceptions import TopologyError
from repro.net.topology import KIND, SWITCH, Topology


def synthetic_isp(
    num_switches: int,
    diameter: int,
    seed: int = 0,
    name: str = "synthetic-isp",
) -> Topology:
    """A tree ISP: a backbone path of ``diameter + 1`` switches with the
    remaining switches attached near the backbone.

    Attachment keeps every non-backbone switch within one hop of a
    backbone node, so the tree diameter stays in
    [diameter, diameter + 2]; we then verify and, if the bound is
    exceeded, fail loudly (it cannot, by construction).
    """
    if num_switches < diameter + 1:
        raise TopologyError("need at least diameter+1 switches")
    if diameter < 1:
        raise TopologyError("diameter must be >= 1")
    rng = random.Random(seed)
    graph = nx.path_graph(diameter + 1)
    # Attach remaining switches directly to interior backbone nodes so
    # endpoints keep defining the diameter.
    interior = list(range(1, diameter))
    for node in range(diameter + 1, num_switches):
        anchor = rng.choice(interior) if interior else 0
        graph.add_node(node)
        graph.add_edge(node, anchor)
    nx.set_node_attributes(graph, SWITCH, KIND)
    topo = Topology(graph, name=name)
    actual = topo.diameter()
    if not diameter <= actual <= diameter + 2:
        raise TopologyError(
            f"construction bug: diameter {actual} != target {diameter}"
        )
    return topo


def kentucky_datalink(seed: int = 0) -> Topology:
    """Kentucky Datalink stand-in: 753 switches, diameter 59."""
    return synthetic_isp(753, 59, seed=seed, name="kentucky-datalink")


def us_carrier(seed: int = 0) -> Topology:
    """US Carrier stand-in: 157 switches, diameter 36."""
    return synthetic_isp(157, 36, seed=seed, name="us-carrier")

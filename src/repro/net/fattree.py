"""K-ary fat-tree builder (Al-Fares et al.), the paper's DC topology.

A K-ary fat-tree has K pods, each with K/2 edge and K/2 aggregation
switches, plus (K/2)^2 core switches; each edge switch serves K/2
hosts.  Host-to-host switch paths have length 1 (same edge), 3 (same
pod) or 5 (inter-pod) -- the D=5 of the paper's Fig. 10(c) and the
5-hop overhead arithmetic of §2.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import TopologyError
from repro.net.topology import HOST, KIND, SWITCH, Topology


def fat_tree(k: int = 4, with_hosts: bool = True) -> Topology:
    """Build a K-ary fat-tree (K even, >= 2).

    Node ids: cores first, then per-pod aggregation and edge switches,
    then hosts.  Switch IDs double as path-tracing values.
    """
    if k < 2 or k % 2:
        raise TopologyError("fat-tree parameter k must be even and >= 2")
    half = k // 2
    graph = nx.Graph()
    next_id = 0

    cores = []
    for _ in range(half * half):
        graph.add_node(next_id, **{KIND: SWITCH, "role": "core"})
        cores.append(next_id)
        next_id += 1

    aggs_by_pod = []
    edges_by_pod = []
    for pod in range(k):
        aggs = []
        for _ in range(half):
            graph.add_node(next_id, **{KIND: SWITCH, "role": "agg", "pod": pod})
            aggs.append(next_id)
            next_id += 1
        edges = []
        for _ in range(half):
            graph.add_node(next_id, **{KIND: SWITCH, "role": "edge", "pod": pod})
            edges.append(next_id)
            next_id += 1
        aggs_by_pod.append(aggs)
        edges_by_pod.append(edges)
        for agg in aggs:
            for edge in edges:
                graph.add_edge(agg, edge)

    # Core i*half + j connects to aggregation switch i of every pod.
    for i in range(half):
        for j in range(half):
            core = cores[i * half + j]
            for pod in range(k):
                graph.add_edge(core, aggs_by_pod[pod][i])

    if with_hosts:
        for pod in range(k):
            for edge in edges_by_pod[pod]:
                for _ in range(half):
                    graph.add_node(next_id, **{KIND: HOST, "pod": pod})
                    graph.add_edge(edge, next_id)
                    next_id += 1

    return Topology(graph, name=f"fattree-k{k}")

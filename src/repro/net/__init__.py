"""Network substrate: topologies, paths, routing.

* :class:`Topology` -- switch/host graph with path queries.
* :func:`fat_tree` -- the paper's data-center topology (D = 5).
* :func:`kentucky_datalink` / :func:`us_carrier` -- synthetic ISP
  stand-ins for the Topology Zoo maps of §6.3 (same switch counts and
  diameters).
* :func:`linear_topology` -- minimal chain fixture.
"""

from repro.net.fattree import fat_tree
from repro.net.isp import kentucky_datalink, synthetic_isp, us_carrier
from repro.net.topology import HOST, KIND, SWITCH, Topology, linear_topology

__all__ = [
    "Topology",
    "linear_topology",
    "fat_tree",
    "synthetic_isp",
    "kentucky_datalink",
    "us_carrier",
    "SWITCH",
    "HOST",
    "KIND",
]

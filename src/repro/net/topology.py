"""Topology model: switches, hosts, and paths.

A thin, typed wrapper over a :mod:`networkx` graph.  Switch nodes carry
integer switch IDs (the value universe V for path tracing); host nodes
hang off edge switches.  Path queries return the *switch* sequence a
packet traverses, which is what PINT encodes.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import TopologyError

#: Node-attribute key for the node kind ("switch" or "host").
KIND = "kind"
SWITCH = "switch"
HOST = "host"


class Topology:
    """A network of switches (and optionally hosts) with unit-cost links."""

    def __init__(self, graph: nx.Graph, name: str = "topology") -> None:
        self.graph = graph
        self.name = name
        self._sp_cache: Dict[int, Dict[int, List[int]]] = {}

    # -- structure ---------------------------------------------------------

    @property
    def switches(self) -> List[int]:
        """All switch node ids, sorted (the path-tracing universe V)."""
        return sorted(
            n for n, data in self.graph.nodes(data=True)
            if data.get(KIND, SWITCH) == SWITCH
        )

    @property
    def hosts(self) -> List[int]:
        """All host node ids, sorted."""
        return sorted(
            n for n, data in self.graph.nodes(data=True)
            if data.get(KIND) == HOST
        )

    @property
    def num_switches(self) -> int:
        """Switch count."""
        return len(self.switches)

    def switch_universe(self) -> Tuple[int, ...]:
        """The value universe for hash-compressed path tracing."""
        return tuple(self.switches)

    def switch_adjacency(self) -> Dict[int, set]:
        """Switch-graph adjacency: switch ID -> neighbouring switch IDs.

        Feeds the topology-aware Inference Module: consecutive hops of
        a path must be graph neighbours, which lets the decoder narrow
        candidate sets without spending packets.
        """
        switches = set(self.switches)
        return {
            s: {n for n in self.graph.neighbors(s) if n in switches}
            for s in switches
        }

    def diameter(self) -> int:
        """Switch-graph diameter in hops."""
        sub = self.graph.subgraph(self.switches)
        return nx.diameter(sub)

    # -- paths -------------------------------------------------------------

    def shortest_path(self, src: int, dst: int) -> List[int]:
        """One shortest path (node sequence, inclusive of endpoints)."""
        if src not in self.graph or dst not in self.graph:
            raise TopologyError(f"unknown endpoint {src} or {dst}")
        try:
            return nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no path {src} -> {dst}") from exc

    def switch_path(self, src: int, dst: int) -> List[int]:
        """Switch IDs traversed between two nodes (hosts excluded)."""
        return [
            n for n in self.shortest_path(src, dst)
            if self.graph.nodes[n].get(KIND, SWITCH) == SWITCH
        ]

    def ecmp_paths(self, src: int, dst: int, limit: int = 16) -> List[List[int]]:
        """All equal-cost shortest paths, up to ``limit``."""
        gen = nx.all_shortest_paths(self.graph, src, dst)
        return list(itertools.islice(gen, limit))

    def pair_at_distance(
        self, hops: int, rng: Optional[random.Random] = None
    ) -> Tuple[int, int]:
        """A random switch pair whose shortest path has ``hops`` switches.

        ``hops`` counts switches on the path (path length in the paper's
        Fig. 10 sense), i.e. graph distance ``hops - 1``.
        """
        rng = rng if rng is not None else random.Random(0)
        switches = self.switches
        rng.shuffle(switches)
        for src in switches:
            lengths = nx.single_source_shortest_path_length(
                self.graph.subgraph(self.switches), src
            )
            matches = [n for n, dist in lengths.items() if dist == hops - 1]
            if matches:
                return src, rng.choice(matches)
        raise TopologyError(f"no switch pair at {hops} hops in {self.name}")

    def random_host_pair(self, rng: random.Random) -> Tuple[int, int]:
        """Two distinct random hosts (traffic endpoints)."""
        hosts = self.hosts
        if len(hosts) < 2:
            raise TopologyError("need at least two hosts")
        src, dst = rng.sample(hosts, 2)
        return src, dst


def linear_topology(num_switches: int) -> Topology:
    """A chain of switches: the minimal path-tracing test fixture."""
    if num_switches < 1:
        raise TopologyError("need at least one switch")
    graph = nx.path_graph(num_switches)
    nx.set_node_attributes(graph, SWITCH, KIND)
    return Topology(graph, name=f"line-{num_switches}")

"""Exception hierarchy for the PINT reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a query, plan, or component is mis-configured."""


class BudgetError(ConfigurationError):
    """Raised when a set of queries cannot fit a global bit budget."""


class DecodingError(ReproError):
    """Raised when an inference module cannot decode the collected digests."""


class SimulationError(ReproError):
    """Raised on inconsistent simulator state (a bug, not user error)."""


class TopologyError(ReproError):
    """Raised for invalid topologies or unroutable node pairs."""

"""Exception hierarchy for the PINT reproduction library."""

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a query, plan, or component is mis-configured."""


class BudgetError(ConfigurationError):
    """Raised when a set of queries cannot fit a global bit budget."""


class DecodingError(ReproError):
    """Raised when an inference module cannot decode the collected digests."""


class DecodeTimeoutError(DecodingError, RuntimeError):
    """Decoding did not converge within its packet/iteration budget.

    Raised by the traceback baselines (PPM, AMS) and the coding
    simulator when the inference loop exhausts ``max_packets`` without
    a complete answer.  Subclasses ``RuntimeError`` so callers that
    predate the typed error keep working; new code should catch
    :class:`DecodingError`.
    """


class SimulationError(ReproError):
    """Raised on inconsistent simulator state (a bug, not user error)."""


class CollectorClosedError(ReproError, RuntimeError):
    """Raised when ingesting into (or querying) a closed collector.

    Subclasses ``RuntimeError`` so callers that predate the typed
    error (and code treating a closed parallel collector as a generic
    runtime failure) keep working; new code should catch this class.
    Serial and parallel collectors raise the *same* type, so the
    drop-in parity DESIGN.md section 5 claims holds for the post-close
    contract too.
    """


class TopologyError(ReproError):
    """Raised for invalid topologies or unroutable node pairs."""


class RecoveryError(ReproError):
    """Raised when worker supervision cannot restore a failed worker.

    Carries the failing ``worker`` (and, where one is implicated, the
    ``shard``) so operators can tell *which* partition's state is at
    risk without parsing the message -- every recovery-surface error
    in :mod:`repro.collector.recovery` and :mod:`repro.collector.
    parallel` subclasses this.
    """

    def __init__(
        self,
        message: str,
        worker: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.shard = shard


class WorkerFailedError(RecoveryError, RuntimeError):
    """A collector worker process (or the service ingest thread) died
    or reported an unrecoverable error.

    Subclasses ``RuntimeError`` because the parallel collector raised
    plain ``RuntimeError`` for worker death before the typed hierarchy
    existed and callers catch it that way; new code should catch
    :class:`RecoveryError`.
    """


class CheckpointError(RecoveryError):
    """A checkpoint could not be decoded: truncated bytes, a bad
    magic, or a CRC mismatch (e.g. a worker died mid-write)."""


class CheckpointVersionError(CheckpointError):
    """A structurally valid checkpoint from a format version this
    build does not speak; ``version`` carries what was found."""

    def __init__(
        self,
        message: str,
        version: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> None:
        super().__init__(message, worker=worker)
        self.version = version


class JournalOverflowError(RecoveryError):
    """A bounded replay journal had to drop entries while loss was
    configured as fatal (``on_data_loss="raise"``)."""


class RestoreError(RecoveryError):
    """A checkpoint decoded fine but could not be installed into a
    live collector (layout mismatch: shard count, clock mode, ...)."""

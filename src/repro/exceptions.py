"""Exception hierarchy for the PINT reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a query, plan, or component is mis-configured."""


class BudgetError(ConfigurationError):
    """Raised when a set of queries cannot fit a global bit budget."""


class DecodingError(ReproError):
    """Raised when an inference module cannot decode the collected digests."""


class SimulationError(ReproError):
    """Raised on inconsistent simulator state (a bug, not user error)."""


class CollectorClosedError(ReproError, RuntimeError):
    """Raised when ingesting into (or querying) a closed collector.

    Subclasses ``RuntimeError`` so callers that predate the typed
    error (and code treating a closed parallel collector as a generic
    runtime failure) keep working; new code should catch this class.
    Serial and parallel collectors raise the *same* type, so the
    drop-in parity DESIGN.md section 5 claims holds for the post-close
    contract too.
    """


class TopologyError(ReproError):
    """Raised for invalid topologies or unroutable node pairs."""

"""Edge-case tests for PINTTelemetry's in-switch EWMA (paper §4.3)."""

import pytest

from repro.sim import Link, PINTTelemetry, SimPacket, Simulator


class _Sink:
    def receive(self, pkt):
        pass


def _pkt(pid=1, payload=1000, **kwargs):
    return SimPacket(pid=pid, flow_id=1, seq=0, payload_bytes=payload, **kwargs)


def _idle_link(sim, rate_bps=1e6, telemetry=None):
    return Link(sim, "l", _Sink(), rate_bps, 0.0, 1_000_000, telemetry=telemetry)


class TestUpdateEwma:
    def test_tau_clamped_to_horizon(self):
        """After idling longer than T, the old EWMA fully decays."""
        t_horizon = 1e-3
        telem = PINTTelemetry(base_rtt=t_horizon)
        sim = Simulator()
        link = _idle_link(sim)
        link.ewma_util = 5.0
        link.ewma_last_update = 0.0
        sim.at(50 * t_horizon, lambda: None)  # tau = 50T, must clamp to T
        sim.run()
        byte = 1000
        b_rate = link.rate_bps / 8.0
        telem._update_ewma(link, byte)
        # (T - tau)/T == 0 once tau clamps, so only the fresh terms remain.
        expected = byte / (b_rate * t_horizon)
        assert link.ewma_util == pytest.approx(expected)
        assert link.ewma_last_update == sim.now

    def test_partial_decay_below_horizon(self):
        """tau < T: old EWMA survives with weight (T - tau)/T."""
        t_horizon = 1e-3
        telem = PINTTelemetry(base_rtt=t_horizon)
        sim = Simulator()
        link = _idle_link(sim)
        link.ewma_util = 2.0
        link.ewma_last_update = 0.0
        tau = t_horizon / 4
        sim.at(tau, lambda: None)
        sim.run()
        b_rate = link.rate_bps / 8.0
        telem._update_ewma(link, 0)
        expected = (t_horizon - tau) / t_horizon * 2.0
        assert link.ewma_util == pytest.approx(expected)

    def test_queue_term_contributes(self):
        """Standing queue adds qlen * tau / (B * T^2)."""
        t_horizon = 1e-3
        telem = PINTTelemetry(base_rtt=t_horizon)
        sim = Simulator()
        link = _idle_link(sim)
        link.queued_bytes = 4000
        tau = t_horizon / 2
        sim.at(tau, lambda: None)
        sim.run()
        b_rate = link.rate_bps / 8.0
        telem._update_ewma(link, 0)
        expected = 4000 * tau / (b_rate * t_horizon * t_horizon)
        assert link.ewma_util == pytest.approx(expected)

    def test_zero_rate_guard(self):
        """A zero-rate link is rejected before the EWMA can divide by it."""
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "l", _Sink(), 0.0, 0.0, 1_000_000)
        with pytest.raises(ValueError):
            Link(sim, "l", _Sink(), -1e6, 0.0, 1_000_000)

    def test_ack_skips_ewma_and_hop_count(self):
        """ACKs neither update the EWMA nor count as a hop."""
        telem = PINTTelemetry(base_rtt=1e-3)
        sim = Simulator()
        link = _idle_link(sim, telemetry=telem)
        link.ewma_util = 0.0
        ack = _pkt(payload=0, is_ack=True)
        link.enqueue(ack)
        sim.run()
        assert ack.hop_count == 0
        assert ack.digest == 0
        assert link.ewma_util == 0.0
        assert link.ewma_last_update == 0.0

    def test_data_packet_advances_clock_and_hops(self):
        """Data packets do update the EWMA bookkeeping."""
        telem = PINTTelemetry(base_rtt=1e-3)
        sim = Simulator()
        link = _idle_link(sim, telemetry=telem)
        pkt = _pkt()
        link.enqueue(pkt)
        sim.run()
        assert pkt.hop_count == 1
        assert link.ewma_util > 0.0

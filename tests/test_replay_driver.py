"""End-to-end replay: scenarios -> dataplane -> Collector -> report."""

import math

import pytest

from repro.replay import (
    ReplayDriver,
    ScenarioReport,
    build_trace,
    scenario_names,
)


class TestReplayDriver:
    def test_incast_end_to_end(self):
        drv = ReplayDriver(batch_size=512, seed=1)
        report = drv.run_scenario("incast", packets=3000, seed=1)
        assert report.records == 3000
        assert report.batches == 6
        assert report.path_records + report.congestion_records <= 3000
        # Long-lived incast flows decode fully and correctly.
        assert report.path_decoded == report.path_flows
        assert report.path_accuracy == 1.0
        assert report.records_per_sec > 0
        # Congestion decode within a few grid steps of the true max.
        assert report.congestion_median_rel_err < 0.1

    def test_churn_decodes_mostly_real_paths(self):
        drv = ReplayDriver(batch_size=1024, seed=0)
        report = drv.run_scenario("path-churn", packets=4000, seed=2)
        assert report.path_decoded > 0
        # Reroutes surface as decoder resets...
        assert report.path_resets > 0
        # ...and most decoded answers are paths the flow actually
        # traversed.  A decoder fed digests straddling a reroute can
        # converge on a hop mix of old and new path (the §7 multipath
        # caveat), so churn accuracy is high but not guaranteed 100%.
        assert report.path_accuracy >= 0.9

    def test_congestion_disabled(self):
        drv = ReplayDriver(batch_size=1024, path_share=1.0,
                           congestion_share=0.0)
        report = drv.run_scenario("incast", packets=1000, seed=0)
        assert report.congestion_records == 0
        assert math.isnan(report.congestion_median_rel_err)
        assert report.path_records == 1000

    def test_run_all_covers_registry(self):
        drv = ReplayDriver(batch_size=2048)
        reports = drv.run_all(packets=600, seed=3)
        assert [r.scenario for r in reports] == scenario_names()
        for r in reports:
            assert r.records > 0
            assert r.path_flows > 0
            assert "rec/s" in r.summary()

    def test_replay_prebuilt_trace(self):
        trace = build_trace("hadoop", packets=800, seed=4)
        report = ReplayDriver(batch_size=256).replay(trace)
        assert report.scenario == "hadoop"
        assert report.records == len(trace)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ReplayDriver(batch_size=0)
        with pytest.raises(ValueError):
            ReplayDriver(path_share=0.0)


class TestReportFiniteness:
    def test_records_per_sec_clamped_on_zero_seconds(self):
        import json

        report = ScenarioReport(
            scenario="degenerate", records=10, flows=1, batches=1,
            seconds=0.0, path_records=10, path_flows=1, path_decoded=0,
            path_correct=0, path_resets=0, congestion_records=0,
            congestion_flows=0, congestion_median_rel_err=float("nan"),
        )
        assert report.records_per_sec == 0.0
        # The clamped rate is strict-JSON safe (the bench writers
        # additionally sanitise the NaN error field to null).
        json.dumps(report.records_per_sec, allow_nan=False)
        assert "rec/s" in report.summary()


class TestParallelReplay:
    def test_workers_knob_matches_serial_decode(self):
        trace = build_trace("incast", packets=2500, seed=0)
        serial = ReplayDriver(batch_size=1024, seed=0).replay(trace)
        par = ReplayDriver(batch_size=1024, seed=0, workers=2).replay(trace)
        for field in (
            "records", "flows", "batches", "path_records", "path_flows",
            "path_decoded", "path_correct", "path_resets",
            "congestion_records", "congestion_flows",
        ):
            assert getattr(serial, field) == getattr(par, field), field
        s_err = serial.congestion_median_rel_err
        p_err = par.congestion_median_rel_err
        assert s_err == p_err or (s_err != s_err and p_err != p_err)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ReplayDriver(workers=0)
        with pytest.raises(ValueError):
            # The driver honors num_shards rather than silently
            # widening it; more workers than shards cannot be served.
            ReplayDriver(num_shards=2, workers=4)

    def test_pipe_transport_matches_shm_default(self):
        trace = build_trace("incast", packets=2000, seed=0)
        shm = ReplayDriver(batch_size=1024, seed=0, workers=2).replay(trace)
        pipe = ReplayDriver(batch_size=1024, seed=0, workers=2,
                            worker_transport="pipe").replay(trace)
        for field in DECODE_FIELDS:
            assert getattr(shm, field) == getattr(pipe, field), field


DECODE_FIELDS = (
    "records", "flows", "batches", "path_records", "path_flows",
    "path_decoded", "path_correct", "path_resets",
    "congestion_records", "congestion_flows",
)


class TestOverlappedReplay:
    def test_overlap_bit_identical_to_sequential(self):
        trace = build_trace("path-churn", packets=2500, seed=1)
        seq = ReplayDriver(batch_size=512, seed=1).replay(trace)
        lap = ReplayDriver(batch_size=512, seed=1, overlap=True).replay(trace)
        assert not seq.overlapped
        assert lap.overlapped
        for field in DECODE_FIELDS:
            assert getattr(seq, field) == getattr(lap, field), field
        s_err = seq.congestion_median_rel_err
        l_err = lap.congestion_median_rel_err
        assert s_err == l_err or (s_err != s_err and l_err != l_err)

    def test_overlap_report_carries_handoff_stage(self):
        report = ReplayDriver(batch_size=512, seed=0, overlap=True) \
            .run_scenario("incast", packets=2000, seed=0)
        stages = dict(report.stage_seconds)
        assert "handoff" in stages
        assert "ingest" in stages
        assert report.stage_summary()  # renders without error

    def test_overlap_with_parallel_sink(self):
        trace = build_trace("incast", packets=2500, seed=0)
        seq = ReplayDriver(batch_size=1024, seed=0).replay(trace)
        lap = ReplayDriver(batch_size=1024, seed=0, workers=2,
                           overlap=True).replay(trace)
        for field in DECODE_FIELDS:
            assert getattr(seq, field) == getattr(lap, field), field

    def test_pipeline_error_surfaces_in_producer(self):
        from repro.obs.metrics import StageTimes
        from repro.replay.driver import _IngestPipeline

        pipe = _IngestPipeline(StageTimes(), depth=2)

        def boom():
            raise RuntimeError("ingest exploded")

        pipe.submit(boom)
        with pytest.raises(RuntimeError, match="ingest exploded"):
            # The error is parked by the consumer; a later submit (or
            # the end-of-replay result()) re-raises it producer-side.
            for _ in range(16):
                pipe.submit(lambda: None)
        pipe.close()

    def test_invalid_overlap_config_rejected(self):
        with pytest.raises(ValueError):
            ReplayDriver(overlap_depth=0)
        with pytest.raises(ValueError):
            ReplayDriver(worker_transport="carrier-pigeon")

"""Tests for KLL, SpaceSaving, and reservoir samplers."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch import (
    CountingWindow,
    KLLSketch,
    ReservoirSample,
    SlidingWindowSample,
    SpaceSaving,
    all_quantiles_sample_size,
    exact_quantile,
    quantile_sample_size,
    quantiles_summary,
    rank_error,
    relative_value_error,
)


class TestKLL:
    def test_small_stream_exact(self):
        sk = KLLSketch(k_param=64)
        sk.extend(range(10))
        assert sk.quantile(0.0) == 0
        assert sk.quantile(1.0) == 9

    def test_median_rank_error(self):
        rng = random.Random(1)
        values = [rng.gauss(100, 15) for _ in range(20000)]
        sk = KLLSketch(k_param=128, rng=random.Random(2))
        sk.extend(values)
        est = sk.quantile(0.5)
        assert rank_error(values, est, 0.5) < 0.05

    def test_tail_rank_error(self):
        rng = random.Random(3)
        values = [rng.expovariate(0.01) for _ in range(20000)]
        sk = KLLSketch(k_param=128, rng=random.Random(4))
        sk.extend(values)
        est = sk.quantile(0.99)
        assert rank_error(values, est, 0.99) < 0.03

    def test_space_bounded(self):
        sk = KLLSketch(k_param=64)
        sk.extend(range(100000))
        # Space must stay O(k_param), far below the stream length.
        assert sk.size < 64 * 8
        assert sk.count == 100000

    def test_scalar_quantiles_golden(self):
        """Pin the scalar path's outputs so existing seeds never drift.

        These values were produced by the scalar ``update`` pipeline
        (default compaction RNG) before ``extend_array`` landed; the
        batch path must not perturb them.
        """
        values = [((i * 2654435761) % 1000003) / 1000.0 for i in range(5000)]
        probes = (0.01, 0.1, 0.5, 0.9, 0.99)
        sk64 = KLLSketch(k_param=64)
        for v in values:
            sk64.update(v)
        assert [sk64.quantile(p) for p in probes] == [
            5.026, 99.055, 490.834, 907.671, 994.522
        ]
        sk128 = KLLSketch(k_param=128)
        for v in values:
            sk128.update(v)
        assert [sk128.quantile(p) for p in probes] == [
            12.204, 102.384, 496.315, 893.185, 990.738
        ]

    def test_extend_array_counts_and_space(self):
        sk = KLLSketch(k_param=64)
        sk.extend_array(np.arange(100000, dtype=np.float64))
        assert sk.count == 100000
        assert sk.size < 64 * 8

    def test_extend_array_rank_error(self):
        rng = np.random.default_rng(7)
        values = rng.normal(100, 15, size=20000)
        sk = KLLSketch(k_param=128, rng=random.Random(2))
        # Mixed bulk sizes: one large insert plus trickle tails.
        sk.extend_array(values[:15000])
        for lo in range(15000, 20000, 170):
            sk.extend_array(values[lo:lo + 170])
        for phi in (0.1, 0.5, 0.99):
            est = sk.quantile(phi)
            assert rank_error(values.tolist(), est, phi) < 0.05

    def test_extend_array_matches_extend_distribution(self):
        """Both paths answer within the same rank-error envelope."""
        rng = np.random.default_rng(11)
        values = rng.exponential(50.0, size=12000)
        scalar = KLLSketch(k_param=128, rng=random.Random(1))
        batch = KLLSketch(k_param=128, rng=random.Random(1))
        scalar.extend(values.tolist())
        batch.extend_array(values)
        assert scalar.count == batch.count
        for phi in (0.25, 0.5, 0.9):
            assert rank_error(values.tolist(), batch.quantile(phi), phi) < 0.05
            assert abs(
                rank_error(values.tolist(), scalar.quantile(phi), phi)
            ) < 0.05

    def test_extend_array_empty_and_bad_shape(self):
        sk = KLLSketch(k_param=64)
        sk.extend_array(np.empty(0))
        assert sk.count == 0
        with pytest.raises(ValueError):
            sk.extend_array(np.zeros((3, 2)))

    def test_merge_matches_union(self):
        rng = random.Random(5)
        a_vals = [rng.random() for _ in range(5000)]
        b_vals = [rng.random() + 0.5 for _ in range(5000)]
        a = KLLSketch(k_param=128, rng=random.Random(6))
        b = KLLSketch(k_param=128, rng=random.Random(7))
        a.extend(a_vals)
        b.extend(b_vals)
        a.merge(b)
        assert a.count == 10000
        est = a.quantile(0.5)
        assert rank_error(a_vals + b_vals, est, 0.5) < 0.06

    def test_rank_monotone(self):
        sk = KLLSketch(k_param=64)
        sk.extend(range(1000))
        assert sk.rank(100) <= sk.rank(500) <= sk.rank(900)

    def test_errors_shrink_with_k(self):
        rng = random.Random(8)
        values = [rng.random() for _ in range(30000)]
        errs = []
        for k_param in (16, 256):
            sk = KLLSketch(k_param=k_param, rng=random.Random(9))
            sk.extend(values)
            errs.append(rank_error(values, sk.quantile(0.5), 0.5))
        assert errs[1] <= errs[0] + 0.01

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            KLLSketch().quantile(0.5)

    def test_bad_phi(self):
        sk = KLLSketch()
        sk.update(1.0)
        with pytest.raises(ValueError):
            sk.quantile(1.5)

    def test_stored_bytes(self):
        sk = KLLSketch(k_param=32)
        sk.extend(range(1000))
        assert sk.stored_bytes(4) == sk.size * 4


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        ss = SpaceSaving(capacity=10)
        ss.extend([1, 1, 2, 3, 1])
        assert ss.estimate(1) == 3
        assert ss.guaranteed(1) == 3

    def test_overestimate_bound(self):
        rng = random.Random(10)
        stream = [rng.randint(0, 99) for _ in range(10000)]
        ss = SpaceSaving(capacity=20)
        ss.extend(stream)
        bound = ss.n / 20
        for item in range(100):
            true = stream.count(item)
            est = ss.estimate(item)
            if est:
                assert est <= true + bound

    def test_heavy_hitter_found(self):
        # An item at 30% frequency must survive capacity 10 (eps = 10%).
        rng = random.Random(11)
        stream = [7] * 3000 + [rng.randint(100, 10000) for _ in range(7000)]
        rng.shuffle(stream)
        ss = SpaceSaving(capacity=10)
        ss.extend(stream)
        hh = dict(ss.heavy_hitters(0.2))
        assert 7 in hh

    def test_theta_cut(self):
        ss = SpaceSaving(capacity=5)
        ss.extend([1] * 80 + [2] * 20)
        assert [item for item, _ in ss.heavy_hitters(0.5)] == [1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            SpaceSaving(5).heavy_hitters(0.0)
        with pytest.raises(ValueError):
            SpaceSaving(5).update("x", weight=0)


class TestReservoir:
    def test_under_capacity_keeps_all(self):
        rs = ReservoirSample(10, rng=random.Random(0))
        for i in range(5):
            rs.update(i)
        assert sorted(rs.sample()) == list(range(5))

    def test_uniformity(self):
        hits = [0] * 20
        for seed in range(2000):
            rs = ReservoirSample(1, rng=random.Random(seed))
            for i in range(20):
                rs.update(i)
            hits[rs.sample()[0]] += 1
        for h in hits:
            assert 50 < h < 150

    def test_seen_counter(self):
        rs = ReservoirSample(2, rng=random.Random(0))
        for i in range(100):
            rs.update(i)
        assert rs.seen == 100
        assert len(rs.sample()) == 2


class TestSlidingWindow:
    def test_sample_from_window_only(self):
        sw = SlidingWindowSample(capacity=5, window=50, rng=random.Random(1))
        for i in range(500):
            sw.update(i)
        assert all(v >= 450 for v in sw.sample())

    def test_sample_size(self):
        sw = SlidingWindowSample(capacity=8, window=100, rng=random.Random(2))
        for i in range(1000):
            sw.update(i)
        assert 1 <= len(sw.sample()) <= 8

    def test_counting_window(self):
        cw = CountingWindow(3)
        for i in range(10):
            cw.update(i)
        assert cw.contents() == [7, 8, 9]


class TestQuantileHelpers:
    def test_exact_quantile_median(self):
        assert exact_quantile([1, 2, 3, 4, 5], 0.5) == 3

    def test_exact_quantile_bounds(self):
        assert exact_quantile([5, 1, 9], 0.0) == 1
        assert exact_quantile([5, 1, 9], 1.0) == 9

    def test_rank_error_zero_for_truth(self):
        vals = list(range(100))
        assert rank_error(vals, 49, 0.5) < 0.01

    def test_relative_value_error(self):
        assert relative_value_error(100.0, 110.0) == pytest.approx(0.1)
        assert relative_value_error(0.0, 2.0) == 2.0

    def test_sample_sizes_monotone(self):
        assert quantile_sample_size(0.05) > quantile_sample_size(0.2)
        assert all_quantiles_sample_size(0.1) >= quantile_sample_size(0.1)

    def test_quantiles_summary(self):
        vals = list(range(1, 101))
        med, p99 = quantiles_summary(vals, [0.5, 0.99])
        assert med == 50
        assert p99 == 99

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1), st.floats(0, 1))
    @settings(max_examples=100)
    def test_quantile_is_element(self, vals, phi):
        assert exact_quantile(vals, phi) in vals
